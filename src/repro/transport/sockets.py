"""Server-side socket transport: links, RPC retry loop, remote proxies.

The server (engine process) listens on one TCP or Unix-domain address;
each of K worker processes dials in, handshakes, and then serves
requests for the client ids it owns (``cid % num_workers``).  Every
request/reply is a sealed wire frame (see
:mod:`repro.transport.messages`); replies to long-running operations
are kept alive by worker heartbeats, so the per-leg deadline
(:attr:`TransportConfig.deadline_s`) detects a dead or partitioned
peer rather than a slow one.

Failure discipline (the robustness contract):

* any stream error — timeout, reset, CRC failure, truncation — poisons
  the connection: the socket is closed and the worker re-dials, which
  resynchronises framing (a corrupted stream can never be re-aligned
  in place);
* the request is then retried on the fresh connection under the
  deterministic :class:`~repro.sim.RetryPolicy`, with jitter drawn
  from the kernel's ``("transport", cid)`` stream so snapshot/resume
  replays the schedule byte-identically;
* the worker's reply cache makes retries exactly-once: a re-sent
  serial returns the recorded reply without re-executing (re-running
  local training would advance the client RNG and fork the
  trajectory);
* exhausting the schedule raises :class:`~repro.transport.base.PeerGone`
  — the engine's signal to emit the terminal ``DROPPED`` event and
  proceed at quorum.

The remote proxies (:class:`RemoteClientPopulation`,
:class:`RemoteClient`, :class:`RemoteCompressor`) give the engines and
strategies the exact object surface of their in-process counterparts,
so AdaFL's probe/score/compress protocol runs unchanged — every client
access simply crosses the wire to the worker that owns the real
client.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Iterable, Mapping

import numpy as np

from repro.compression.base import CompressedGradient
from repro.sim.trace import DROPPED
from repro.transport.base import (
    PeerGone,
    TransportConfig,
    TransportError,
    TransportTimeout,
    WorkerError,
    WorkerSetup,
)
from repro.transport.messages import (
    pack_message,
    unpack_message,
    vector_from_frame_bytes,
    vector_to_frame_bytes,
)
from repro.wire.frame import (
    Frame,
    FrameCorruptionError,
    FrameError,
    read_frame,
)

__all__ = [
    "parse_address",
    "open_listener",
    "dial",
    "close_quietly",
    "send_message",
    "recv_message",
    "SocketTransport",
    "RemoteClientPopulation",
    "RemoteClient",
    "RemoteCompressor",
]


# ----------------------------------------------------------------------
# Address and stream plumbing (shared with the worker side)
# ----------------------------------------------------------------------
def parse_address(address: str) -> tuple[int, Any]:
    """``"host:port"`` -> TCP, ``"unix:/path"`` -> Unix-domain."""
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(f"address {address!r} is neither host:port nor unix:/path")
    return socket.AF_INET, (host or "127.0.0.1", int(port))


def open_listener(address: str, backlog: int = 16) -> tuple[socket.socket, str]:
    """Bind and listen; returns ``(socket, resolved_address)``.

    TCP port 0 resolves to the kernel-assigned ephemeral port, so
    tests can listen collision-free and hand workers the real address.
    """
    family, target = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        if family == socket.AF_INET:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(target)
        sock.listen(backlog)
        if family == socket.AF_INET:
            host, port = sock.getsockname()[:2]
            resolved = f"{host}:{port}"
        else:
            resolved = f"unix:{target}"
    except OSError:
        close_quietly(sock)
        raise
    return sock, resolved


def dial(address: str, timeout_s: float) -> socket.socket:
    """Connect to a transport address with a bounded handshake budget."""
    family, target = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout_s)
        sock.connect(target)
        if family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        close_quietly(sock)
        raise
    return sock


def send_message(
    sock: socket.socket, obj: Mapping[str, Any], lock: threading.Lock | None = None
) -> None:
    """Seal and send one message (atomic under ``lock`` if given)."""
    buf = pack_message(dict(obj))
    if lock is not None:
        with lock:
            sock.sendall(buf)
    else:
        sock.sendall(buf)


def recv_message(
    sock: socket.socket,
    deadline_s: float | None,
    max_payload_nbytes: int,
) -> dict[str, Any]:
    """Read one sealed message off the stream.

    ``deadline_s`` bounds every individual ``recv`` — the liveness
    window since the last byte, not a total-transfer cap (heartbeats
    and payload bytes both reset it).  Raises
    :class:`TransportTimeout` on silence, :class:`FrameError` (or a
    subclass) on a damaged or truncated stream.
    """
    sock.settimeout(deadline_s)
    try:
        frame = read_frame(sock.recv, max_payload_nbytes=max_payload_nbytes)
    except socket.timeout as exc:  # noqa: UP041 - socket.timeout is the raised type
        raise TransportTimeout(f"no bytes within {deadline_s}s") from exc
    return unpack_message(frame.to_bytes())


# ----------------------------------------------------------------------
# Per-worker connection state
# ----------------------------------------------------------------------
class _WorkerLink:
    """One worker's connection slot: socket, serials, buffered replies."""

    def __init__(self, wid: int, own: tuple[int, ...]):
        self.wid = wid
        self.own = own
        self.sock: socket.socket | None = None
        self.epoch = 0  # bumped on every (re)attach
        self.attached = threading.Event()
        self.down = False
        self._serial = 0
        self._replies: dict[int, dict[str, Any]] = {}
        self._lock = threading.Lock()

    def next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def attach(self, sock: socket.socket) -> None:
        with self._lock:
            old = self.sock
            self.sock = sock
            self.epoch += 1
            self._replies.clear()
        if old is not None:
            close_quietly(old)
        self.attached.set()

    def poison(self) -> None:
        """Drop the connection; the worker notices EOF and re-dials."""
        with self._lock:
            sock, self.sock = self.sock, None
            self._replies.clear()
        self.attached.clear()
        if sock is not None:
            close_quietly(sock)

    def require_sock(self) -> socket.socket:
        sock = self.sock
        if sock is None:
            raise TransportError(f"worker {self.wid} is not connected")
        return sock

    def await_reply(
        self, serial: int, deadline_s: float, max_payload_nbytes: int
    ) -> dict[str, Any]:
        """Read messages until ``serial``'s reply arrives.

        Heartbeats reset the liveness window; replies to other
        (pipelined) serials are buffered for their own awaiters.
        """
        while True:
            reply = self._replies.pop(serial, None)
            if reply is not None:
                return reply
            msg = recv_message(self.require_sock(), deadline_s, max_payload_nbytes)
            if msg.get("hb"):
                continue
            got = msg.get("serial")
            if not isinstance(got, int):
                raise FrameError(f"reply without a serial: {sorted(msg)}")
            if got == serial:
                return msg
            self._replies[got] = msg


def close_quietly(*socks: socket.socket) -> None:
    """Close socket(s), swallowing the OSError of an already-dead fd."""
    for sock in socks:
        try:
            sock.close()
        except OSError:
            pass


class _PendingTrain:
    """A pipelined train request awaiting its consume-time reply."""

    def __init__(self, wid: int, request: dict[str, Any], epoch: int, sent: bool):
        self.wid = wid
        self.request = request
        self.epoch = epoch
        self.sent = sent


# ----------------------------------------------------------------------
# The server-side transport
# ----------------------------------------------------------------------
class SocketTransport:
    """Length-prefixed frame RPC over TCP/Unix sockets, server side.

    Construction opens the listener and a daemon accept thread; workers
    dial in (directly or through the chaos proxy), handshake, and are
    bound to their :class:`_WorkerLink` slot.  ``wait_ready`` blocks
    until every slot is attached.  Client ownership is round-robin:
    worker ``w`` of ``W`` serves every ``cid`` with ``cid % W == w``.
    """

    remote = True

    def __init__(
        self,
        address: str,
        num_workers: int,
        num_clients: int,
        setup: WorkerSetup,
        config: TransportConfig | None = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.config = config or TransportConfig()
        self.num_workers = num_workers
        self.num_clients = num_clients
        self._setup_bytes = setup.to_bytes()
        self._links = [
            _WorkerLink(w, tuple(range(w, num_clients, num_workers)))
            for w in range(num_workers)
        ]
        self._pending_train: dict[int, _PendingTrain] = {}
        self._kernel = None
        self._trace = None
        self._population: RemoteClientPopulation | None = None
        self._closed = False
        self._listener, self.address = open_listener(address)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-transport-accept", daemon=True
        )
        self._accept_thread.start()

    # -- lifecycle -----------------------------------------------------
    def bind_kernel(self, kernel, trace) -> None:
        """Adopt the engine's kernel (jitter streams) and trace bus."""
        self._kernel = kernel
        self._trace = trace

    def wait_ready(self, timeout_s: float | None = None) -> None:
        """Block until every worker slot has handshaken."""
        budget = timeout_s if timeout_s is not None else self.config.connect_timeout_s
        deadline = time.monotonic() + budget
        for link in self._links:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not link.attached.wait(remaining):
                raise TransportTimeout(
                    f"worker {link.wid} did not connect within {budget}s"
                )

    def close(self) -> None:
        """Shut down workers (best effort) and release the listener."""
        if self._closed:
            return
        self._closed = True
        for link in self._links:
            sock = link.sock
            if sock is None or link.down:
                continue
            try:
                serial = link.next_serial()
                send_message(sock, {"op": "shutdown", "serial": serial})
                link.await_reply(
                    serial, self.config.deadline_s, self.config.max_payload_nbytes
                )
            except (OSError, TransportError, FrameError):
                pass
            link.poison()
        close_quietly(self._listener)

    def __enter__(self) -> "SocketTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- population / topology -----------------------------------------
    def population(self) -> "RemoteClientPopulation":
        if self._population is None:
            self._population = RemoteClientPopulation(self, self.num_clients)
        return self._population

    def owner_of(self, cid: int) -> int:
        if not 0 <= cid < self.num_clients:
            raise KeyError(f"client id {cid} out of range")
        return cid % self.num_workers

    def down_cids(self) -> frozenset[int]:
        """Client ids owned by workers currently marked dead."""
        dead: set[int] = set()
        for link in self._links:
            if link.down:
                dead.update(link.own)
        return frozenset(dead)

    def heartbeat(self) -> list[int]:
        """Ping every live worker; returns wids that just went dark.

        Called at round start so a dead worker is discovered *before*
        its clients are selected, not mid-round after a full retry
        schedule per client.
        """
        lost = []
        for link in self._links:
            if link.down:
                continue
            try:
                request = {"op": "ping", "serial": link.next_serial()}
                self._call(link.wid, request, cid=None)
            except PeerGone:
                lost.append(link.wid)
        return lost

    # -- RPC surface used by the remote proxies ------------------------
    def prefetch_train(
        self,
        cids: Iterable[int],
        params: np.ndarray,
        round_index: int,
        kwargs_by_cid: Mapping[int, dict[str, Any]],
    ) -> None:
        """Pipeline train requests to every owning worker up front.

        Workers start training immediately and in parallel across
        processes — the multi-core payoff of real federation — while
        the engine's per-client loop consumes replies in its original
        deterministic order.  Send failures are absorbed: the
        consume-time call re-sends on the reconnected link.
        """
        params_frame = vector_to_frame_bytes(params)
        for cid in cids:
            if cid in self._pending_train:
                continue
            wid = self.owner_of(cid)
            link = self._links[wid]
            if link.down:
                continue
            request = {
                "op": "train",
                "serial": link.next_serial(),
                "cid": cid,
                "round_index": round_index,
                "params": params_frame,
                "kwargs": dict(kwargs_by_cid.get(cid, ())),
            }
            sent = False
            sock = link.sock
            if sock is not None:
                try:
                    send_message(sock, request)
                    sent = True
                except OSError:
                    link.poison()
            self._pending_train[cid] = _PendingTrain(wid, request, link.epoch, sent)

    def train(
        self,
        cid: int,
        params: np.ndarray,
        round_index: int,
        kwargs: Mapping[str, Any],
    ) -> Any:
        """Run one local training step on the owning worker."""
        pending = self._pending_train.pop(cid, None)
        wid = self.owner_of(cid)
        link = self._links[wid]
        if pending is not None:
            already_sent = pending.sent and pending.epoch == link.epoch
            value = self._call(
                wid, pending.request, cid=cid, already_sent=already_sent
            )
        else:
            request = {
                "op": "train",
                "serial": link.next_serial(),
                "cid": cid,
                "round_index": round_index,
                "params": vector_to_frame_bytes(params),
                "kwargs": dict(kwargs),
            }
            value = self._call(wid, request, cid=cid)
        update = value["update"]
        delta, _ = vector_from_frame_bytes(
            value["delta"], self.config.max_payload_nbytes
        )
        update.delta = delta
        return update

    def probe(self, cid: int, params: np.ndarray) -> np.ndarray:
        """One-minibatch utility probe on the owning worker."""
        wid = self.owner_of(cid)
        request = {
            "op": "probe",
            "serial": self._links[wid].next_serial(),
            "cid": cid,
            "params": vector_to_frame_bytes(params),
        }
        value = self._call(wid, request, cid=cid)
        probe, _ = vector_from_frame_bytes(
            value["probe"], self.config.max_payload_nbytes
        )
        return probe

    def compress(self, cid: int, grad: np.ndarray, ratio: float | None) -> bytes:
        """Compress ``grad`` on the worker's stateful compressor.

        Returns the codec frame bytes — the exact artifact the worker
        would put on the uplink, CRC and all.
        """
        wid = self.owner_of(cid)
        request = {
            "op": "compress",
            "serial": self._links[wid].next_serial(),
            "cid": cid,
            "ratio": ratio,
            "grad": vector_to_frame_bytes(grad),
        }
        value = self._call(wid, request, cid=cid)
        return value["payload"]

    def restore(self, cid: int, payload_frame: bytes) -> None:
        """Return a NACKed payload's values to the worker's residual."""
        wid = self.owner_of(cid)
        request = {
            "op": "restore",
            "serial": self._links[wid].next_serial(),
            "cid": cid,
            "payload": payload_frame,
        }
        self._call(wid, request, cid=cid)

    # -- the retry loop ------------------------------------------------
    def _jitter_rng(self, cid: int | None, wid: int):
        if self._kernel is None or self.config.retry.jitter_frac <= 0.0:
            return None
        if cid is not None:
            return self._kernel.stream("transport", cid)
        return self._kernel.stream("transport", "worker", wid)

    def _emit_corrupt(self, cid: int | None, attempt: int) -> None:
        if self._trace is None or cid is None or self._kernel is None:
            return
        # A damaged reply stream is the socket-era twin of the
        # simulator's bitflip fault: same taxonomy bucket, observed on
        # real bytes.  Non-terminal — the connection is re-established
        # and the request retried.
        self._trace.emit(
            DROPPED,
            self._kernel.now,
            cid,
            reason="corrupt_frame",
            attempt=attempt,
            cause="transport",
        )

    def _call(
        self,
        wid: int,
        request: dict[str, Any],
        cid: int | None,
        already_sent: bool = False,
    ) -> Any:
        """Send (or resume) one request and return its reply value.

        Any stream failure poisons the connection and retries on the
        worker's reconnect under the deterministic schedule;
        exhaustion marks the worker down and raises
        :class:`PeerGone`.
        """
        link = self._links[wid]
        if link.down:
            raise PeerGone(wid=wid, cid=cid, attempts=0)
        policy = self.config.retry
        attempt = 1
        while True:
            try:
                if not link.attached.wait(self.config.connect_timeout_s):
                    raise TransportTimeout(
                        f"worker {wid} not connected within "
                        f"{self.config.connect_timeout_s}s"
                    )
                if not already_sent:
                    send_message(link.require_sock(), request)
                already_sent = False
                reply = link.await_reply(
                    request["serial"],
                    self.config.deadline_s,
                    self.config.max_payload_nbytes,
                )
            except WorkerError:
                raise
            except (OSError, FrameError, TransportError) as exc:
                if isinstance(exc, (FrameError, FrameCorruptionError)):
                    self._emit_corrupt(cid, attempt)
                link.poison()
                if policy.exhausted(attempt):
                    link.down = True
                    raise PeerGone(wid=wid, cid=cid, attempts=attempt) from exc
                wait_s = policy.backoff_s(
                    attempt, self.config.backoff_base_s, self._jitter_rng(cid, wid)
                )
                # Give the worker the backoff window to re-dial; the
                # next loop iteration re-waits on attachment anyway.
                link.attached.wait(wait_s)
                attempt += 1
                continue
            if not reply.get("ok", False):
                raise WorkerError(
                    f"worker {wid} failed {request.get('op')!r}: "
                    f"{reply.get('error', 'unknown error')}"
                )
            return reply.get("value")

    # -- handshake -----------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                self._handshake(sock)
            except (OSError, FrameError, TransportError):
                close_quietly(sock)

    def _handshake(self, sock: socket.socket) -> None:
        if isinstance(sock, socket.socket) and sock.family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = recv_message(
            sock, self.config.connect_timeout_s, self.config.max_payload_nbytes
        )
        if hello.get("op") != "hello":
            raise TransportError(f"expected hello, got {hello.get('op')!r}")
        wid = hello.get("wid")
        if wid is None:
            # Fresh worker: claim the requested slot, or the first
            # never-attached one.
            index = hello.get("index")
            if index is None:
                candidates = [
                    link.wid for link in self._links if not link.attached.is_set()
                ]
                if not candidates:
                    raise TransportError("all worker slots are taken")
                wid = candidates[0]
            else:
                wid = int(index)
            if not 0 <= wid < self.num_workers:
                raise TransportError(f"worker index {wid} out of range")
            link = self._links[wid]
            send_message(
                sock,
                {
                    "op": "welcome",
                    "wid": wid,
                    "own": list(link.own),
                    "num_clients": self.num_clients,
                    "setup": self._setup_bytes,
                    "heartbeat_interval_s": self.config.heartbeat_interval_s,
                },
            )
        else:
            # Reconnect: the worker kept its state; just re-bind.
            wid = int(wid)
            if not 0 <= wid < self.num_workers:
                raise TransportError(f"worker id {wid} out of range")
            link = self._links[wid]
            send_message(sock, {"op": "welcome_back", "wid": wid})
        sock.settimeout(None)
        link.down = False
        link.attach(sock)


# ----------------------------------------------------------------------
# Remote proxies: the in-process object surface, backed by RPC
# ----------------------------------------------------------------------
class RemoteClientPopulation:
    """Registry facade over clients that live in worker processes.

    Descriptor metadata (scores, upload/seen rounds) is real and
    server-local — strategies read and write the same numpy arrays the
    in-process registry provides — while heavy client state lives with
    the owning worker.  Materialization hooks and eviction are no-ops:
    lifecycle is the workers' concern (each owns its clients for the
    whole session).
    """

    is_population = True
    always_live = True

    def __init__(self, transport: SocketTransport, num_clients: int):
        self._transport = transport
        self._num = num_clients
        self.scores = np.full(num_clients, np.nan, dtype=np.float64)
        self.last_upload_round = np.full(num_clients, -1, dtype=np.int64)
        self.last_seen_round = np.full(num_clients, -1, dtype=np.int64)
        self._proxies: dict[int, RemoteClient] = {}
        self._all_ids: list[int] | None = None
        self._all_ids_arr: np.ndarray | None = None

    def __len__(self) -> int:
        return self._num

    def ids(self) -> range:
        return range(self._num)

    def all_ids(self) -> list[int]:
        if self._all_ids is None:
            self._all_ids = list(range(self._num))
        return self._all_ids

    def all_ids_array(self) -> np.ndarray:
        if self._all_ids_arr is None:
            self._all_ids_arr = np.arange(self._num, dtype=np.int64)
        return self._all_ids_arr

    def initial_ids(self, limit: int | None) -> range:
        if limit is None:
            return range(self._num)
        return range(min(int(limit), self._num))

    def __getitem__(self, cid: int) -> "RemoteClient":
        return self.client(cid)

    def client(self, cid: int) -> "RemoteClient":
        proxy = self._proxies.get(cid)
        if proxy is None:
            if not 0 <= cid < self._num:
                raise KeyError(f"client id {cid} out of range")
            proxy = RemoteClient(self._transport, cid)
            self._proxies[cid] = proxy
        return proxy

    def note_seen(self, ids, round_index: int) -> None:
        if len(ids):
            self.last_seen_round[np.asarray(ids, dtype=np.int64)] = round_index

    def evict_to_cap(self) -> None:
        """Client state lives with its worker; nothing to trim here."""

    def release(self, cid: int) -> None:
        """No server-side heavy state to release."""

    def on_materialize(self, hook) -> None:
        """No-op: workers attach per-client machinery themselves."""

    def on_evict(self, watcher) -> None:
        """No-op: remote clients are never evicted server-side."""


class RemoteClient:
    """Proxy for one client living in a worker process.

    Presents the :class:`~repro.fl.client.Client` surface the engines
    and strategies touch — ``local_train``, ``probe_delta``,
    ``last_delta``, ``halted``, ``compressor`` — and routes the heavy
    calls to the owning worker.  ``last_delta`` mirrors the worker's
    cache from probe/train replies, so AdaFL's scorer reads the same
    vector it would in-process.
    """

    def __init__(self, transport: SocketTransport, cid: int):
        self.client_id = cid
        self.halted = False
        self.compressor = RemoteCompressor(transport, cid)
        self._transport = transport
        self._last_delta: np.ndarray | None = None

    @property
    def last_delta(self) -> np.ndarray | None:
        return self._last_delta

    def local_train(
        self, global_params: np.ndarray, config, round_index: int = 0, **kwargs
    ):
        del config  # the worker trains with its identical local config
        update = self._transport.train(
            self.client_id, global_params, round_index, kwargs
        )
        self._last_delta = update.delta
        return update

    def probe_delta(self, global_params: np.ndarray, config) -> np.ndarray:
        del config
        probe = self._transport.probe(self.client_id, global_params)
        self._last_delta = probe
        return probe


class RemoteCompressor:
    """Proxy for the worker-resident stateful compressor.

    ``compress`` ships the gradient down as a dense64 frame and gets
    the real codec frame back — reconstructing a
    :class:`~repro.compression.base.CompressedGradient` bit-identical
    to the worker's, header CRC and all.  ``decompress`` is the
    stateless sparse scatter, run locally; ``restore`` ships the
    payload frame back so NACKed values rejoin the worker's residual.
    """

    name = "remote"

    def __init__(self, transport: SocketTransport, cid: int):
        self._transport = transport
        self._cid = cid

    def compress(
        self, grad: np.ndarray, ratio: float | None = None
    ) -> CompressedGradient:
        frame_bytes = self._transport.compress(self._cid, grad, ratio)
        frame = Frame.from_bytes(
            frame_bytes,
            max_payload_nbytes=self._transport.config.max_payload_nbytes,
        )
        return CompressedGradient.from_frame(frame)

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        data = payload.data
        if "indices" not in data or "values" not in data:
            raise TransportError(
                f"remote decompress supports sparse payloads, got {payload.method!r}"
            )
        dense = np.zeros(payload.dim, dtype=np.float64)
        dense[np.asarray(data["indices"], dtype=np.int64)] = data["values"]
        return dense

    def restore(self, payload: CompressedGradient) -> None:
        self._transport.restore(self._cid, payload.to_frame(0).to_bytes())
