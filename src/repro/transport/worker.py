"""Client worker process: owns real clients, serves the server's RPCs.

Run as ``python -m repro.transport.worker --connect HOST:PORT``.  The
worker dials the server, handshakes, and receives a pickled
:class:`~repro.transport.base.WorkerSetup`; it then builds its own
replica of the federation (same builder, same spec, same seeds — so
client ``cid`` holds exactly the data shards and RNG state the
in-memory run would give it) and serves ``train`` / ``probe`` /
``compress`` / ``restore`` requests for the client ids the server
assigned it.

Robustness mechanics:

* a daemon thread heartbeats while connected, so the server's per-leg
  deadline measures *liveness*, not training speed — a worker mid-way
  through a slow local epoch never reads as dead;
* every reply is recorded in a :class:`~repro.transport.messages.ReplyCache`
  before it is sent; a request whose serial was already served (the
  server retrying across a reconnect) returns the cached reply without
  re-executing, so retries are exactly-once and client RNG streams
  never advance twice for one logical request;
* a lost connection triggers a fixed redial schedule
  (``reconnect_attempts`` x ``reconnect_wait_s`` — deterministic, no
  wall-clock entropy) with a resume hello carrying the worker id, so
  the server re-binds the same slot;
* an idle-exit timer reaps orphaned workers whose server died without
  a shutdown message.

This module never imports engine or experiment code statically —
everything above the transport arrives through the pickled setup
bundle, keeping the dependency arrow pointed downward.
"""

from __future__ import annotations

import argparse
import copy
import threading
import time
from typing import Any

from repro.transport.base import TransportError, TransportTimeout, WorkerSetup
from repro.transport.messages import (
    HEARTBEAT,
    ReplyCache,
    vector_from_frame_bytes,
    vector_to_frame_bytes,
)
from repro.transport.sockets import close_quietly, dial, recv_message, send_message
from repro.compression.base import CompressedGradient
from repro.wire.frame import MAX_PAYLOAD_NBYTES, Frame, FrameError

__all__ = ["Worker", "main"]


class Worker:
    """One worker process's lifecycle: connect, build, serve, redial."""

    def __init__(
        self,
        address: str,
        index: int | None = None,
        connect_timeout_s: float = 10.0,
        recv_poll_s: float = 5.0,
        idle_exit_s: float = 600.0,
        reconnect_attempts: int = 20,
        reconnect_wait_s: float = 0.25,
        max_payload_nbytes: int = MAX_PAYLOAD_NBYTES,
    ):
        self.address = address
        self.index = index
        self.connect_timeout_s = connect_timeout_s
        self.recv_poll_s = recv_poll_s
        self.idle_exit_s = idle_exit_s
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_wait_s = reconnect_wait_s
        self.max_payload_nbytes = max_payload_nbytes

        self.wid: int | None = None
        self.own: tuple[int, ...] = ()
        self._clients = None
        self._local_cfg = None
        self._replies = ReplyCache()
        self._sock = None
        self._send_lock = threading.Lock()
        self._connected = threading.Event()
        self._heartbeat_interval_s = 1.0
        self._stop = False

    # -- lifecycle -----------------------------------------------------
    def run(self) -> int:
        """Serve until shutdown (0), idle-exit (0), or redial exhaustion (1)."""
        # The initial handshake runs under the same redial schedule as
        # reconnects: a hello or welcome damaged in flight (chaos does
        # corrupt handshakes too) must not kill the worker outright.
        if not self._redial():
            return 1
        hb = threading.Thread(
            target=self._heartbeat_loop, name="repro-worker-heartbeat", daemon=True
        )
        hb.start()
        while not self._stop:
            try:
                self._serve()
            except (OSError, FrameError, TransportError):
                self._disconnect()
                if not self._redial():
                    return 1
        self._disconnect()
        return 0

    def _connect(self, resume: bool) -> None:
        sock = dial(self.address, self.connect_timeout_s)
        # Everything between the dial and the handoff to self._sock
        # can fail (chaos proxies corrupt handshakes on purpose);
        # without the close here every failed handshake leaks one fd —
        # a slow worker-killer under reconnect storms.
        try:
            hello: dict[str, Any] = {"op": "hello"}
            if resume:
                hello["wid"] = self.wid
            elif self.index is not None:
                hello["index"] = self.index
            send_message(sock, hello)
            welcome = recv_message(
                sock, self.connect_timeout_s, self.max_payload_nbytes
            )
            op = welcome.get("op")
            if not resume:
                if op != "welcome":
                    raise TransportError(f"expected welcome, got {op!r}")
                self.wid = int(welcome["wid"])
                self.own = tuple(welcome["own"])
                self._heartbeat_interval_s = float(
                    welcome.get("heartbeat_interval_s", 1.0)
                )
                self._build(WorkerSetup.from_bytes(welcome["setup"]))
            elif op != "welcome_back":
                raise TransportError(f"expected welcome_back, got {op!r}")
            sock.settimeout(None)
        except Exception:
            close_quietly(sock)
            raise
        self._sock = sock
        self._connected.set()

    def _build(self, setup: WorkerSetup) -> None:
        """Materialise this worker's replica of the federation.

        The builder is deterministic in the spec, so the clients built
        here are state-identical to the ones the in-memory engine
        would hold — same shards, same RNG seeds, same compressor
        residuals at round zero.
        """
        fed = setup.builder(setup.builder_arg)
        self._clients = fed.clients
        setup.strategy.prepare(fed.server, fed.clients)
        self._local_cfg = setup.strategy.local_config(setup.config.local)

    def _disconnect(self) -> None:
        self._connected.clear()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _redial(self) -> bool:
        """Dial under the fixed schedule; resume once a slot was won."""
        for attempt in range(self.reconnect_attempts):
            if attempt:
                time.sleep(self.reconnect_wait_s)
            try:
                self._connect(resume=self.wid is not None)
                return True
            except (OSError, FrameError, TransportError):
                self._disconnect()
        return False

    def _heartbeat_loop(self) -> None:
        while not self._stop:
            time.sleep(self._heartbeat_interval_s)
            if not self._connected.is_set():
                continue
            sock = self._sock
            if sock is None:
                continue
            try:
                send_message(sock, HEARTBEAT, self._send_lock)
            except OSError:
                # The serve loop sees the same dead socket and redials.
                continue

    # -- the serve loop ------------------------------------------------
    def _serve(self) -> None:
        idle_s = 0.0
        while not self._stop:
            sock = self._sock
            if sock is None:
                raise TransportError("serve loop without a connection")
            try:
                msg = recv_message(sock, self.recv_poll_s, self.max_payload_nbytes)
            except TransportTimeout:
                idle_s += self.recv_poll_s
                if idle_s >= self.idle_exit_s:
                    # Orphaned: the server vanished without a shutdown.
                    self._stop = True
                continue
            idle_s = 0.0
            self._dispatch(sock, msg)

    def _dispatch(self, sock, msg: dict[str, Any]) -> None:
        serial = msg.get("serial")
        if not isinstance(serial, int):
            raise FrameError(f"request without a serial: {sorted(msg)}")
        cached = self._replies.get(serial)
        if cached is not None:
            send_message(sock, cached, self._send_lock)
            return
        op = msg.get("op")
        try:
            value = self._execute(op, msg)
            reply = {"serial": serial, "ok": True, "value": value}
        except Exception as exc:  # application error -> the server, not a crash
            reply = {"serial": serial, "ok": False, "error": repr(exc)}
        self._replies.put(serial, reply)
        send_message(sock, reply, self._send_lock)
        if op == "shutdown":
            self._stop = True

    def _execute(self, op: str | None, msg: dict[str, Any]) -> Any:
        if op == "ping":
            return {}
        if op == "shutdown":
            return {}
        if op == "train":
            return self._op_train(msg)
        if op == "probe":
            return self._op_probe(msg)
        if op == "compress":
            return self._op_compress(msg)
        if op == "restore":
            return self._op_restore(msg)
        raise TransportError(f"unknown op {op!r}")

    def _client(self, msg: dict[str, Any]):
        cid = msg["cid"]
        if self._clients is None:
            raise TransportError("request before handshake setup")
        return self._clients[cid]

    def _op_train(self, msg: dict[str, Any]) -> dict[str, Any]:
        client = self._client(msg)
        params, _ = vector_from_frame_bytes(msg["params"], self.max_payload_nbytes)
        update = client.local_train(
            params,
            self._local_cfg,
            round_index=msg.get("round_index", 0),
            **msg.get("kwargs", {}),
        )
        # The delta travels as its own CRC'd dense64 frame; the rest of
        # the update (flops, extras, metadata) pickles bit-exactly.  A
        # shallow copy keeps the worker-side object intact.
        stripped = copy.copy(update)
        stripped.delta = None
        return {
            "update": stripped,
            "delta": vector_to_frame_bytes(update.delta),
        }

    def _op_probe(self, msg: dict[str, Any]) -> dict[str, Any]:
        client = self._client(msg)
        params, _ = vector_from_frame_bytes(msg["params"], self.max_payload_nbytes)
        probe = client.probe_delta(params, self._local_cfg)
        return {"probe": vector_to_frame_bytes(probe)}

    def _op_compress(self, msg: dict[str, Any]) -> dict[str, Any]:
        client = self._client(msg)
        grad, _ = vector_from_frame_bytes(msg["grad"], self.max_payload_nbytes)
        ratio = msg.get("ratio")
        if ratio is None:
            payload = client.compressor.compress(grad)
        else:
            payload = client.compressor.compress(grad, ratio)
        return {"payload": payload.to_frame(0).to_bytes()}

    def _op_restore(self, msg: dict[str, Any]) -> dict[str, Any]:
        client = self._client(msg)
        frame = Frame.from_bytes(
            msg["payload"], max_payload_nbytes=self.max_payload_nbytes
        )
        client.compressor.restore(CompressedGradient.from_frame(frame))
        return {}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: parse arguments and run one worker to completion."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Federated client worker: dial a repro server and serve RPCs.",
    )
    parser.add_argument(
        "--connect", required=True, help="server address (host:port or unix:/path)"
    )
    parser.add_argument(
        "--index", type=int, default=None, help="worker slot to claim (default: any)"
    )
    parser.add_argument(
        "--idle-exit-s",
        type=float,
        default=600.0,
        help="exit after this much request silence (orphan reaping)",
    )
    args = parser.parse_args(argv)
    worker = Worker(args.connect, index=args.index, idle_exit_s=args.idle_exit_s)
    return worker.run()


if __name__ == "__main__":
    raise SystemExit(main())
