"""Real multi-process federation: socket transport under both engines.

The engines historically called their clients as in-process objects;
this package makes the substrate explicit and pluggable:

* :class:`~repro.transport.base.InMemoryTransport` — the default; all
  pinned equivalence trajectories run here, bit-identical.
* :class:`~repro.transport.sockets.SocketTransport` — the server talks
  to K client worker processes (:mod:`repro.transport.worker`) over
  TCP or Unix-domain sockets, exchanging :mod:`repro.wire` frames
  verbatim, with per-leg deadlines, heartbeats, deterministic
  reconnect backoff, and graceful degradation (quorum + ``DROPPED``
  trace events) when a worker dies mid-round.
* :class:`~repro.transport.chaos.ChaosProxy` — a real man-in-the-middle
  that corrupts, delays, resets, and half-open-partitions the stream,
  proving the fault taxonomy end-to-end against actual sockets.

Layering: ``transport`` sits below ``fl`` and may import only
``wire``, ``sim``, and ``compression``.  This package is also the only
place allowed to import ``socket`` / ``subprocess`` (lint rule R801).
"""

from __future__ import annotations

from repro.transport.base import (
    InMemoryTransport,
    PeerGone,
    TransportConfig,
    TransportError,
    TransportTimeout,
    WorkerError,
    WorkerSetup,
)
from repro.transport.chaos import ChaosConfig, ChaosProxy
from repro.transport.launch import spawn_worker, terminate_workers
from repro.transport.sockets import (
    RemoteClient,
    RemoteClientPopulation,
    RemoteCompressor,
    SocketTransport,
)
from repro.transport.worker import Worker

__all__ = [
    "InMemoryTransport",
    "PeerGone",
    "TransportConfig",
    "TransportError",
    "TransportTimeout",
    "WorkerError",
    "WorkerSetup",
    "ChaosConfig",
    "ChaosProxy",
    "spawn_worker",
    "terminate_workers",
    "RemoteClient",
    "RemoteClientPopulation",
    "RemoteCompressor",
    "SocketTransport",
    "Worker",
]
