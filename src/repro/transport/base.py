"""Transport abstraction: configuration, errors, and the in-memory default.

A *transport* is the substrate an engine moves payloads over.  Two
implementations ship:

* :class:`InMemoryTransport` — the historical single-process path.
  Clients are plain objects in the engine's address space and every
  "transfer" is a function call; all six pinned equivalence
  trajectories run here, bit-identical by construction.
* :class:`~repro.transport.sockets.SocketTransport` — server and K
  client worker processes exchange :mod:`repro.wire` frames over
  TCP or Unix-domain sockets, with per-leg deadlines, heartbeats,
  reconnect backoff, and graceful degradation when a worker dies.

Layering: ``repro.transport`` sits *below* ``repro.fl`` (it may import
``wire``, ``sim``, and ``compression`` only).  The worker process never
statically imports engine or experiment code — everything it needs
(federation builder, spec, strategy, config) arrives pickled in the
handshake's :class:`WorkerSetup` bundle, so the dependency arrow never
points upward.

Timing note: real sockets live on the host clock, the federation lives
on the simulated one.  The transport deliberately never touches the
sim clock — transfer durations are still charged analytically by the
kernel — so a federation run over sockets with no injected faults is
byte-identical to the in-memory run.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.retry import RetryPolicy

__all__ = [
    "TransportConfig",
    "TransportError",
    "TransportTimeout",
    "PeerGone",
    "WorkerError",
    "WorkerSetup",
    "InMemoryTransport",
]


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class TransportTimeout(TransportError):
    """A peer went quiet past the configured deadline."""


class WorkerError(TransportError):
    """The worker executed the request and reported an application error.

    Not a connectivity failure: retrying would re-raise, so the caller
    surfaces it instead of burning reconnect attempts.
    """


class PeerGone(TransportError):
    """A worker is unreachable after exhausting the retry schedule.

    The terminal transport failure: the engine maps it to a
    ``DROPPED(..., reason="crash", cause="transport", terminal=True)``
    trace event and proceeds without the peer (quorum permitting).
    """

    def __init__(self, wid: int, cid: int | None, attempts: int):
        self.wid = wid
        self.cid = cid
        self.attempts = attempts
        where = f"client {cid}" if cid is not None else f"worker {wid}"
        super().__init__(
            f"{where} unreachable after {attempts} attempt(s) (worker {wid})"
        )


@dataclass(frozen=True)
class TransportConfig:
    """Socket-transport tuning knobs (all wall-clock seconds).

    ``deadline_s`` is the per-leg liveness budget: a reply (or a
    heartbeat keeping it alive) must arrive within this window of the
    previous byte.  Workers heartbeat every ``heartbeat_interval_s``
    while connected, so a slow local-training step never trips the
    deadline — only a dead or partitioned peer does.  ``retry`` is the
    reconnect schedule (jitter drawn from the kernel's
    ``("transport", cid)`` stream, never wall-clock entropy, so a
    snapshot/resume mid-reconnect replays byte-identically);
    ``backoff_base_s`` is the unit the policy's backoff fractions
    scale.  ``max_payload_nbytes`` bounds any declared frame length
    before allocation (see :class:`repro.wire.frame.FrameOversized`).
    """

    connect_timeout_s: float = 10.0
    deadline_s: float = 15.0
    heartbeat_interval_s: float = 1.0
    backoff_base_s: float = 0.2
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4,
            backoff_frac=1.0,
            multiplier=2.0,
            max_backoff_s=3.0,
            jitter_frac=0.25,
        )
    )
    max_payload_nbytes: int = 256 * 1024 * 1024
    # Worker-side redial schedule after a lost server connection.
    reconnect_attempts: int = 20
    reconnect_wait_s: float = 0.25

    def __post_init__(self) -> None:
        for name in (
            "connect_timeout_s",
            "deadline_s",
            "heartbeat_interval_s",
            "backoff_base_s",
            "reconnect_wait_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_payload_nbytes <= 0:
            raise ValueError("max_payload_nbytes must be positive")
        if self.reconnect_attempts < 1:
            raise ValueError("reconnect_attempts must be >= 1")


@dataclass
class WorkerSetup:
    """Everything a worker needs to build its replica of the federation.

    Travels pickled inside the handshake's welcome message.  The
    ``builder`` is pickled *by reference* (e.g.
    ``repro.experiments.runner.build_federation``), so the worker
    resolves it by import at unpickle time; ``builder_arg`` is its
    single argument (a federation spec).  The builder must return an
    object with ``server`` and ``clients`` attributes.  ``strategy``
    and ``config`` are the server's own instances at session start —
    the worker runs ``strategy.prepare`` purely to attach per-client
    machinery (e.g. AdaFL's DGC compressors); all scoring and
    aggregation state stays server-side.
    """

    builder: Callable[[Any], Any]
    builder_arg: Any
    strategy: Any
    config: Any

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WorkerSetup":
        setup = pickle.loads(blob)
        if not isinstance(setup, cls):
            raise TransportError(f"handshake bundle is a {type(setup).__name__}")
        return setup


class InMemoryTransport:
    """The single-process default: every transfer is a function call.

    Exists so callers can hold "a transport" uniformly; engines treat
    ``transport=None`` and an :class:`InMemoryTransport` identically
    (the in-memory code path, zero behavioural change).
    """

    remote = False

    def bind_kernel(self, kernel, trace) -> None:
        """No kernel hooks needed in-process."""

    def heartbeat(self) -> None:
        """Local clients cannot die independently of the engine."""

    def down_cids(self) -> frozenset[int]:
        """Nothing is ever unreachable in-process."""
        return frozenset()

    def close(self) -> None:
        """Nothing to tear down."""
