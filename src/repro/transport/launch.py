"""Worker-process launching: the only sanctioned ``subprocess`` call site.

Spawning is deliberately boring — ``python -m repro.transport.worker``
with the repo's ``src`` on ``PYTHONPATH`` — and centralised here so
the lint rule R801 can ban ``subprocess`` everywhere else.  Workers
are *separate OS processes* (their own interpreters, their own memory,
their own GIL), which is both the point of the exercise (real
multi-core local training, real kill -9 crash testing) and the reason
every byte between them and the server must cross a real socket.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

__all__ = ["spawn_worker", "terminate_workers"]


def _src_root() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parents[1])


def spawn_worker(
    address: str,
    index: int,
    idle_exit_s: float = 600.0,
    env: dict[str, str] | None = None,
) -> subprocess.Popen:
    """Start one worker process dialing ``address`` for slot ``index``."""
    child_env = dict(os.environ if env is None else env)
    src = _src_root()
    existing = child_env.get("PYTHONPATH")
    child_env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    # ``-c`` instead of ``-m``: the package __init__ imports the worker
    # module, and runpy warns when re-executing an already-imported
    # module as __main__.
    entry = "import sys; from repro.transport.worker import main; sys.exit(main(sys.argv[1:]))"
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            entry,
            "--connect",
            address,
            "--index",
            str(index),
            "--idle-exit-s",
            str(idle_exit_s),
        ],
        env=child_env,
    )


def terminate_workers(
    procs: list[subprocess.Popen], timeout_s: float = 5.0
) -> None:
    """Best-effort teardown: terminate, then kill whatever lingers."""
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=timeout_s)
