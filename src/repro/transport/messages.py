"""Message envelopes: every transport message is one sealed wire frame.

A message is a Python dict pickled and wrapped in a CRC'd blob frame
(:func:`repro.wire.frame.seal`), so the socket layer inherits the wire
layer's integrity guarantees verbatim: a bit flipped on the stream is
a :class:`~repro.wire.frame.FrameCorruptionError` at the receiver,
never a silently mangled request.  Numeric payloads embedded in a
message (model parameters, deltas, compressed gradients) travel as
*nested real frames* — dense float64 for full-fidelity vectors, the
codec frame for compressed uploads — each with its own CRC, exactly
the bytes the in-memory engines account for.

Requests carry a per-link monotone ``serial``; the worker's
:class:`ReplyCache` makes retried requests exactly-once: a serial seen
before returns the cached reply without re-executing (re-running a
training request would advance the client's RNG a second time and
fork the trajectory).
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.wire.codecs import DenseFloat64Codec
from repro.wire.frame import Frame, FrameError, seal, unseal

__all__ = [
    "HEARTBEAT",
    "pack_message",
    "unpack_message",
    "vector_to_frame_bytes",
    "vector_from_frame_bytes",
    "ReplyCache",
]

# The liveness keep-alive: skipped by reply readers, resets deadlines.
HEARTBEAT = {"hb": True}


def pack_message(obj: dict[str, Any]) -> bytes:
    """Pickle ``obj`` and wrap it in a sealed (CRC'd) blob frame."""
    return seal(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def unpack_message(buf: bytes) -> dict[str, Any]:
    """Unwrap and unpickle one sealed message (CRC already implied)."""
    obj = pickle.loads(unseal(buf))
    if not isinstance(obj, dict):
        raise FrameError(f"transport message is a {type(obj).__name__}, not a dict")
    return obj


def vector_to_frame_bytes(vec: np.ndarray, model_version: int = 0) -> bytes:
    """Encode a float64 vector as a dense64 frame (bit-exact transport)."""
    values = np.ascontiguousarray(vec, dtype=np.float64)
    frame = Frame(
        codec_id=DenseFloat64Codec.codec_id,
        flags=0,
        dim=values.size,
        model_version=model_version,
        payload=values.tobytes(),
    )
    return frame.to_bytes()


def vector_from_frame_bytes(
    buf: bytes, max_payload_nbytes: int | None = None
) -> tuple[np.ndarray, int]:
    """Decode a dense64 frame back to ``(vector, model_version)``.

    The returned array owns its memory (a copy of the frame payload),
    so callers may mutate it freely.
    """
    frame = Frame.from_bytes(buf, max_payload_nbytes=max_payload_nbytes)
    if frame.codec_id != DenseFloat64Codec.codec_id:
        raise FrameError(
            f"expected a dense64 vector frame, got codec {frame.codec_id}"
        )
    data = DenseFloat64Codec().decode(frame.dim, frame.payload, frame.flags)
    return np.array(data["values"], dtype=np.float64), frame.model_version


class ReplyCache:
    """Bounded serial -> reply map backing exactly-once request semantics.

    The worker records every reply it sends; a request whose serial was
    already served (a server-side retry after a reconnect) returns the
    cached reply instead of re-executing.  The cap only needs to cover
    the server's in-flight window (pipelined train prefetches plus
    retries), so a small bound suffices.
    """

    def __init__(self, cap: int = 256):
        if cap < 1:
            raise ValueError("cap must be >= 1")
        self._cap = cap
        self._replies: OrderedDict[int, dict[str, Any]] = OrderedDict()

    def get(self, serial: int) -> dict[str, Any] | None:
        return self._replies.get(serial)

    def put(self, serial: int, reply: dict[str, Any]) -> None:
        self._replies[serial] = reply
        while len(self._replies) > self._cap:
            self._replies.popitem(last=False)
