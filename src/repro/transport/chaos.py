"""Chaos proxy: a TCP forwarder that injects real wire-level faults.

Sits between the workers and the server (workers dial the proxy, the
proxy dials the real server) and damages the byte stream in flight:

* **corruption** — flip one random bit in a forwarded chunk; the
  receiver's frame CRC catches it, the connection is poisoned, and the
  attempt surfaces as a ``corrupt_frame`` drop — the socket-era proof
  of the PR 3 fault taxonomy and the PR 5 server-side validation;
* **resets** — abruptly close both halves of a connection
  (probabilistically per chunk, or after a byte budget), exercising
  the reconnect + exactly-once retry path;
* **delays** — added per-chunk latency, exercising deadline headroom;
* **half-open partitions** — silently swallow one direction while the
  other stays up, the classic failure TCP keepalives miss; only the
  transport's application-level deadline detects it.

Fault draws come from ``numpy`` generators seeded per
``(seed, connection, direction)`` — deterministic given the config, no
wall-clock entropy — though overall timing still depends on OS
scheduling, which is exactly the point: the *engine's* determinism
must survive a nondeterministic network.

The proxy is a real network element (its own listener, its own
sockets), not a mock: every fault the tests assert on actually
happened to bytes on a kernel socket buffer.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.transport.sockets import close_quietly, dial, open_listener

__all__ = ["ChaosConfig", "ChaosProxy"]

_CHUNK = 65536
_UPLINK = "uplink"  # worker -> server
_DOWNLINK = "downlink"  # server -> worker


@dataclass(frozen=True)
class ChaosConfig:
    """What the proxy does to the stream, and how reproducibly.

    Probabilities are per forwarded chunk (<= 64 KiB), so effective
    per-frame fault rates scale with payload size — big model frames
    span many chunks and are proportionally likelier to be hit, just
    like real links.
    """

    seed: int = 0
    corrupt_prob: float = 0.0
    delay_s: float = 0.0
    reset_prob: float = 0.0
    reset_after_bytes: int | None = None
    half_open: str | None = None  # "uplink", "downlink", or None

    def __post_init__(self) -> None:
        for name in ("corrupt_prob", "reset_prob"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.reset_after_bytes is not None and self.reset_after_bytes < 1:
            raise ValueError("reset_after_bytes must be positive or None")
        if self.half_open not in (None, _UPLINK, _DOWNLINK):
            raise ValueError("half_open must be 'uplink', 'downlink', or None")

    @property
    def active(self) -> bool:
        return (
            self.corrupt_prob > 0
            or self.delay_s > 0
            or self.reset_prob > 0
            or self.reset_after_bytes is not None
            or self.half_open is not None
        )


class _Pipe:
    """One proxied connection: a worker socket paired with a server socket."""

    def __init__(self, client: socket.socket, upstream: socket.socket):
        self.client = client
        self.upstream = upstream
        self._lock = threading.Lock()
        self._dead = False

    def kill(self) -> None:
        with self._lock:
            if self._dead:
                return
            self._dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A live man-in-the-middle between workers and the server.

    Point workers at :attr:`address`; the proxy dials ``target`` once
    per accepted connection and pumps bytes both ways, applying the
    configured faults.  ``stats`` counts every fault actually injected
    (tests assert against it to distinguish "no fault fired" from
    "fault fired and was survived").
    """

    def __init__(
        self,
        target: str,
        config: ChaosConfig,
        listen: str = "127.0.0.1:0",
    ):
        self.target = target
        self.config = config
        self.stats = {"corrupted": 0, "resets": 0, "swallowed_chunks": 0}
        self._stats_lock = threading.Lock()
        self._pipes: list[_Pipe] = []
        self._conn_index = 0
        self._closed = False
        self._listener, self.address = open_listener(listen)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-chaos-accept", daemon=True
        )
        self._accept_thread.start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        for pipe in list(self._pipes):
            pipe.kill()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _count(self, key: str) -> None:
        with self._stats_lock:
            self.stats[key] += 1

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = dial(self.target, timeout_s=10.0)
            except OSError:
                try:
                    client.close()
                except OSError:
                    pass
                continue
            # The handoff itself can fail (thread limits, shutdown
            # races); never leak the accepted pair when it does.
            try:
                pipe = _Pipe(client, upstream)
                self._pipes.append(pipe)
                conn = self._conn_index
                self._conn_index += 1
                for direction, src, dst in (
                    (_UPLINK, client, upstream),
                    (_DOWNLINK, upstream, client),
                ):
                    threading.Thread(
                        target=self._pump,
                        args=(pipe, direction, src, dst, conn),
                        name=f"repro-chaos-{direction}-{conn}",
                        daemon=True,
                    ).start()
            except Exception:
                close_quietly(client, upstream)
                continue

    def _pump(
        self,
        pipe: _Pipe,
        direction: str,
        src: socket.socket,
        dst: socket.socket,
        conn: int,
    ) -> None:
        cfg = self.config
        rng = np.random.default_rng(
            (cfg.seed, conn, 0 if direction == _UPLINK else 1)
        )
        forwarded = 0
        while True:
            try:
                chunk = src.recv(_CHUNK)
            except OSError:
                break
            if not chunk:
                break
            if cfg.half_open == direction:
                # The connection stays up; the bytes just never arrive.
                self._count("swallowed_chunks")
                continue
            if cfg.delay_s > 0:
                time.sleep(cfg.delay_s)
            if cfg.reset_prob > 0 and rng.random() < cfg.reset_prob:
                self._count("resets")
                break
            if cfg.corrupt_prob > 0 and rng.random() < cfg.corrupt_prob:
                chunk = self._flip_bit(chunk, rng)
                self._count("corrupted")
            forwarded += len(chunk)
            try:
                dst.sendall(chunk)
            except OSError:
                break
            if (
                cfg.reset_after_bytes is not None
                and forwarded >= cfg.reset_after_bytes
            ):
                self._count("resets")
                break
        pipe.kill()

    @staticmethod
    def _flip_bit(chunk: bytes, rng: np.random.Generator) -> bytes:
        buf = bytearray(chunk)
        pos = int(rng.integers(len(buf)))
        buf[pos] ^= 1 << int(rng.integers(8))
        return bytes(buf)
