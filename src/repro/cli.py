"""Command-line interface: ``python -m repro <command>``.

Runs any of the paper's experiments from a shell and prints the same
tables/series the benchmark harness produces, optionally archiving raw
run JSON next to them.

Examples::

    python -m repro table1 --scale fast
    python -m repro fig3 --scale bench --seed 1
    python -m repro overhead
    python -m repro quickrun --dataset mnist --distribution shard \
        --method adafl --rounds 20 --out run.json
    python -m repro quickrun --engine async --method fedbuff --trace run.jsonl
    python -m repro trace run.jsonl
    python -m repro sweep --strategies fedavg afd adagq \
        --networks constrained --rounds 20 --out sweep.json
"""

from __future__ import annotations

import argparse
import sys

from repro.core.adafl import AdaFLSync
from repro.experiments.ablation import run_ablation
from repro.experiments.comparison import default_adafl_config, run_fig3
from repro.experiments.empirical import run_fig1
from repro.experiments.overhead import run_overhead_study
from repro.experiments.presets import get_scale
from repro.experiments.reporting import format_bytes, format_series, format_table
from repro.experiments.runner import FederationSpec, run_async, run_sync
from repro.experiments.scalability import run_scalability
from repro.experiments.tables import render_table, run_table1, run_table2
from repro.fl.baselines import ASYNC_BASELINES, SYNC_BASELINES
from repro.fl.persist import save_run_result

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (one subcommand per experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AdaFL (DAC 2025) reproduction experiments",
    )
    parser.add_argument("--scale", default="fast", choices=("fast", "bench", "full"))
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Figure 1: empirical resiliency study")
    sub.add_parser("fig3", help="Figure 3: AdaFL vs SOTA curves")
    sub.add_parser("table1", help="Table I: synchronous results")
    sub.add_parser("table2", help="Table II: asynchronous results")
    sub.add_parser("overhead", help="Q3: Pi-cluster cycle overhead")
    sub.add_parser("scalability", help="20-100 client sweep")
    sub.add_parser("ablation", help="AdaFL design-choice ablation")

    pop = sub.add_parser(
        "population",
        help="virtual-population smoke: a 100k-client round in O(active) memory",
    )
    pop.add_argument("--clients", type=int, default=100_000)
    pop.add_argument("--rounds", type=int, default=2)
    pop.add_argument("--cohort", type=int, default=20)
    pop.add_argument("--mode", default="regenerate", choices=("regenerate", "spill"))
    pop.add_argument("--spill-dir", default=None, help="blob directory for spill mode")
    pop.add_argument("--engine", default="sync", choices=("sync", "async"))

    report = sub.add_parser("report", help="build an HTML report from saved runs")
    report.add_argument("--runs", nargs="+", required=True, help="run JSON files")
    report.add_argument("--out", default="report.html")
    report.add_argument("--artifacts", default=None, help="benchmarks/results dir to embed")

    quick = sub.add_parser("quickrun", help="one federated run (sync or async)")
    quick.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10", "cifar100"))
    quick.add_argument("--model", default="mnist_cnn")
    quick.add_argument("--distribution", default="iid", choices=("iid", "shard", "dirichlet", "label_skew", "quantity_skew"))
    quick.add_argument(
        "--method",
        default="adafl",
        choices=("adafl", *sorted(SYNC_BASELINES), *sorted(ASYNC_BASELINES)),
    )
    quick.add_argument("--engine", default="sync", choices=("sync", "async"))
    quick.add_argument("--rounds", type=int, default=None)
    quick.add_argument("--out", default=None, help="write run JSON here")
    quick.add_argument("--trace", default=None, help="record the event trace as JSONL here")
    quick.add_argument(
        "--snapshot", default=None,
        help="write crash-safe run snapshots here (resume with `repro resume`)",
    )
    quick.add_argument(
        "--snapshot-every", type=int, default=1,
        help="snapshot period in rounds (sync) or updates (async)",
    )
    quick.add_argument(
        "--transport", default="memory", choices=("memory", "tcp"),
        help="memory: in-process clients; tcp: spawn worker processes "
        "and run the round protocol over real sockets",
    )
    quick.add_argument(
        "--workers", type=int, default=4,
        help="worker process count for --transport tcp",
    )

    serve = sub.add_parser(
        "serve",
        help="federated server over sockets; workers dial in with `repro worker`",
    )
    serve.add_argument("--listen", default="127.0.0.1:0", help="host:port or unix:/path")
    serve.add_argument("--workers", type=int, default=4, help="worker slots to wait for")
    serve.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10", "cifar100"))
    serve.add_argument("--model", default="mnist_cnn")
    serve.add_argument("--distribution", default="iid", choices=("iid", "shard", "dirichlet", "label_skew", "quantity_skew"))
    serve.add_argument(
        "--method",
        default="adafl",
        choices=("adafl", *sorted(SYNC_BASELINES), *sorted(ASYNC_BASELINES)),
    )
    serve.add_argument("--engine", default="sync", choices=("sync", "async"))
    serve.add_argument("--rounds", type=int, default=None)
    serve.add_argument("--quorum", type=float, default=None, help="quorum fraction (sync)")
    serve.add_argument("--out", default=None, help="write run JSON here")
    serve.add_argument("--trace", default=None, help="record the event trace as JSONL here")
    serve.add_argument(
        "--ready-timeout-s", type=float, default=300.0,
        help="how long to wait for all workers to dial in",
    )

    wk = sub.add_parser("worker", help="client worker: dial a `repro serve` server")
    wk.add_argument("--connect", required=True, help="server address (host:port or unix:/path)")
    wk.add_argument("--index", type=int, default=None, help="worker slot to claim")
    wk.add_argument(
        "--idle-exit-s", type=float, default=600.0,
        help="exit after this much request silence (orphan reaping)",
    )

    tr = sub.add_parser("trace", help="summarize a recorded JSONL event trace")
    tr.add_argument("path", help="trace file written by --trace / JsonlSink")
    tr.add_argument(
        "--client", type=int, default=None, help="also print this client's event timeline"
    )

    wire = sub.add_parser("wire", help="wire-frame stats from a recorded JSONL trace")
    wire.add_argument("path", help="trace file written by --trace / JsonlSink")

    sweep = sub.add_parser(
        "sweep",
        help="strategy × network × fault grid with a comparison artifact",
    )
    sweep.add_argument(
        "--strategies", nargs="+", default=None,
        help="strategy names to sweep (see repro.experiments.sweep registries)",
    )
    sweep.add_argument("--networks", nargs="+", default=None, help="network profile names")
    sweep.add_argument("--faults", nargs="+", default=None, help="fault plan names")
    sweep.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10", "cifar100"))
    sweep.add_argument("--model", default="mnist_cnn")
    sweep.add_argument(
        "--distribution", default="iid",
        choices=("iid", "shard", "dirichlet", "label_skew", "quantity_skew"),
    )
    sweep.add_argument("--reference", default="fedavg", help="baseline strategy per cell")
    sweep.add_argument("--rounds", type=int, default=None, help="override the scale's rounds")
    sweep.add_argument(
        "--max-sim-time-s", type=float, default=None,
        help="override the scale's simulated-time budget",
    )
    sweep.add_argument("--eval-every", type=int, default=None)
    sweep.add_argument("--out", default=None, help="write the JSON comparison artifact here")

    chaos = sub.add_parser("chaos", help="fault-matrix smoke study + resilience report")
    chaos.add_argument("--engine", default="sync", choices=("sync", "async"))
    chaos.add_argument("--dataset", default="mnist", choices=("mnist", "cifar10", "cifar100"))

    resume = sub.add_parser("resume", help="finish a snapshotted run (crash recovery)")
    resume.add_argument("--snapshot", required=True, help="snapshot file written by a run")
    resume.add_argument("--out", default=None, help="write the completed run JSON here")
    resume.add_argument("--trace", default=None, help="record post-resume events as JSONL here")

    lint = sub.add_parser("lint", help="reprolint: static repo-invariant checks")
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable report")
    lint.add_argument(
        "--format", default=None, choices=("text", "json", "sarif"),
        help="report format (--json is an alias for --format json)",
    )
    lint.add_argument(
        "--diff", default=None, metavar="GIT_REF",
        help="incremental: lint only files changed since GIT_REF plus "
        "their in-package importers",
    )
    lint.add_argument("--rules", action="store_true", help="print the rule catalogue")
    lint.add_argument(
        "--select", default=None,
        help="comma-separated rule ids or families (e.g. R2,R403)",
    )
    lint.add_argument(
        "--baseline", default=None,
        help="baseline file (default: LINT_baseline.json at the repo root)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="ignore the baseline file"
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to suppress all current violations",
    )
    lint.add_argument("--verbose", action="store_true", help="list baselined hits too")
    return parser


def _cmd_fig1(scale, seed) -> str:
    panels = run_fig1(scale=scale, seed=seed)
    out = []
    for panel in panels:
        out.append(panel.title)
        for label, (x, y) in panel.series.items():
            out.append(format_series(f"  {label}", x, y, x_name=panel.x_name))
    return "\n".join(out)


def _cmd_fig3(scale, seed) -> str:
    panels = run_fig3(scale=scale, seed=seed)
    out = []
    for panel in panels:
        out.append(panel.title)
        for label, (x, y) in panel.series.items():
            out.append(format_series(f"  {label}", x, y, x_name=panel.x_name))
    return "\n".join(out)


def _cmd_overhead(scale, seed) -> str:
    result = run_overhead_study(scale=scale, seed=seed)
    return "\n".join(
        [
            f"baseline training cycles : {result.baseline_cycles:,.0f}",
            f"utility scoring overhead : +{result.utility_overhead_pct:.4f}%",
            f"compression overhead     : +{result.compression_overhead_pct:.4f}%",
            f"selection compute saving : -{result.compute_saving_pct:.1f}%",
            f"final accuracy           : {result.accuracy:.3f}",
        ]
    )


def _cmd_scalability(scale, seed) -> str:
    points = run_scalability(scale=scale, seed=seed)
    rows = [
        [str(p.num_clients), f"{p.adafl_accuracy:.3f}", f"{p.fedavg_accuracy:.3f}",
         str(p.adafl_updates), f"{100 * p.byte_saving:.1f}%"]
        for p in points
    ]
    return format_table(["N", "AdaFL acc", "FedAvg acc", "AdaFL updates", "bytes saved"], rows)


def _cmd_population(args, seed) -> str:
    import tempfile

    from repro.experiments.scalability import run_population_smoke

    spill_dir = args.spill_dir
    if args.mode == "spill" and spill_dir is None:
        spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
    stats = run_population_smoke(
        num_clients=args.clients,
        rounds=args.rounds,
        cohort=args.cohort,
        mode=args.mode,
        spill_dir=spill_dir,
        engine=args.engine,
        seed=seed,
    )
    lines = [
        f"{args.engine} run over {stats['num_clients']:,} virtual clients "
        f"({stats['rounds']} rounds, cohort {stats['cohort']}, {stats['mode']})",
        f"uploads applied          : {stats['total_uploads']}",
        f"final accuracy           : {stats['final_accuracy']:.3f}",
        f"materializations         : {stats['materializations']} "
        f"({stats['restores']} restored, {stats['evictions']} evicted)",
        f"peak live clients        : {stats['peak_live']} "
        f"(cap {stats['max_live']}, {format_bytes(stats['peak_live_nbytes'])})",
        f"descriptor overhead      : "
        f"{stats['descriptor_bytes_per_client']:.1f} B/client "
        f"({format_bytes(stats['descriptor_nbytes'])} total)",
        f"rebuild determinism      : "
        f"{stats['sampled_rebuilds_verified']} sampled ids verified",
    ]
    return "\n".join(lines)


def _cmd_ablation(scale, seed) -> str:
    points = run_ablation(scale=scale, seed=seed)
    rows = [
        [p.variant, f"{p.accuracy:.3f}", str(p.updates), format_bytes(p.bytes_up)]
        for p in points
    ]
    return format_table(["variant", "accuracy", "updates", "uplink"], rows)


def _quickrun_strategy(args, scale):
    """Resolve ``--method``/``--engine`` into a strategy instance."""
    if args.engine == "async":
        if args.method == "adafl":
            from repro.core.adafl import AdaFLAsync

            return AdaFLAsync(default_adafl_config(scale, async_mode=True))
        if args.method in ASYNC_BASELINES:
            return ASYNC_BASELINES[args.method]()
        raise SystemExit(f"method {args.method!r} is synchronous; use --engine sync")
    if args.method in ASYNC_BASELINES:
        raise SystemExit(f"method {args.method!r} is asynchronous; use --engine async")
    if args.method == "adafl":
        return AdaFLSync(default_adafl_config(scale))
    return SYNC_BASELINES[args.method]()


def _run_summary(args, result) -> str:
    """The quickrun/serve result block: curve, totals, output paths."""
    if args.out:
        save_run_result(result, args.out)
    rounds, accs = result.accuracy_curve()
    lines = [
        format_series(args.method, rounds, accs),
        f"final accuracy: {result.final_accuracy:.3f}",
        f"client updates: {result.total_uploads}",
        f"uplink volume : {format_bytes(result.total_bytes_up)}",
    ]
    if args.trace:
        lines.append(f"trace written : {args.trace}")
    return "\n".join(lines)


def _cmd_quickrun(args, scale) -> str:
    from dataclasses import replace

    if args.rounds is not None:
        scale = replace(scale, num_rounds=args.rounds)
    remote = args.transport == "tcp"
    if remote and args.snapshot:
        raise SystemExit("--transport tcp does not support --snapshot")
    spec = FederationSpec(
        dataset=args.dataset,
        model=args.model,
        distribution=args.distribution,
        scale=scale,
        seed=args.seed,
    )
    strategy = _quickrun_strategy(args, scale)
    trace = None
    if args.trace:
        from repro.sim import EventTrace, JsonlSink

        trace = EventTrace([JsonlSink(args.trace)])
    try:
        if args.engine == "async":
            # Same total update budget a full-participation sync run
            # would have, so --rounds bounds async runs too.
            budget = scale.num_rounds * scale.num_clients
            if remote:
                from repro.experiments.socket_run import run_async_sockets

                result = run_async_sockets(
                    spec, strategy, max_updates=budget, trace=trace,
                    num_workers=args.workers,
                )
            else:
                result = run_async(
                    spec, strategy, max_updates=budget, trace=trace,
                    snapshot_path=args.snapshot, snapshot_every=args.snapshot_every,
                )
        else:
            if remote:
                from repro.experiments.socket_run import run_sync_sockets

                result = run_sync_sockets(
                    spec, strategy, trace=trace, num_workers=args.workers
                )
            else:
                result = run_sync(
                    spec, strategy, trace=trace,
                    snapshot_path=args.snapshot, snapshot_every=args.snapshot_every,
                )
    finally:
        if trace is not None:
            trace.close()
    return _run_summary(args, result)


def _cmd_serve(args, scale) -> str:
    """Open a socket server, wait for external workers, run the federation."""
    import dataclasses

    from repro.experiments.runner import _federation_config, build_federation
    from repro.fl.async_engine import AsyncEngine
    from repro.fl.sync_engine import SyncEngine
    from repro.transport import SocketTransport, WorkerSetup

    if args.rounds is not None:
        scale = dataclasses.replace(scale, num_rounds=args.rounds)
    spec = FederationSpec(
        dataset=args.dataset,
        model=args.model,
        distribution=args.distribution,
        scale=scale,
        seed=args.seed,
    )
    strategy = _quickrun_strategy(args, scale)
    budget = scale.num_rounds * scale.num_clients if args.engine == "async" else None
    config = _federation_config(spec, max_updates=budget)
    if args.quorum is not None:
        config = dataclasses.replace(config, quorum_frac=args.quorum)
    setup = WorkerSetup(
        builder=build_federation, builder_arg=spec, strategy=strategy, config=config
    )
    transport = SocketTransport(
        args.listen,
        num_workers=args.workers,
        num_clients=scale.num_clients,
        setup=setup,
    )
    trace = None
    if args.trace:
        from repro.sim import EventTrace, JsonlSink

        trace = EventTrace([JsonlSink(args.trace)])
    try:
        print(f"listening on {transport.address}")
        print(
            f"waiting for {args.workers} worker(s): "
            f"repro worker --connect {transport.address}"
        )
        transport.wait_ready(args.ready_timeout_s)
        fed = build_federation(spec)
        engine_cls = AsyncEngine if args.engine == "async" else SyncEngine
        engine = engine_cls(
            fed.server, None, strategy, config, trace=trace, transport=transport
        )
        result = engine.run()
    finally:
        transport.close()
        if trace is not None:
            trace.close()
    return _run_summary(args, result)


def _cmd_worker(args) -> int:
    """Run one worker process to completion; returns its exit code."""
    from repro.transport import Worker

    worker = Worker(args.connect, index=args.index, idle_exit_s=args.idle_exit_s)
    return worker.run()


def _cmd_sweep(args) -> str:
    from repro.experiments.sweep import SweepConfig, render_sweep, run_sweep

    kwargs: dict = {
        "scale": args.scale,
        "dataset": args.dataset,
        "model": args.model,
        "distribution": args.distribution,
        "seed": args.seed,
        "reference": args.reference,
        "rounds": args.rounds,
        "max_sim_time_s": args.max_sim_time_s,
        "eval_every": args.eval_every,
    }
    if args.strategies:
        kwargs["strategies"] = tuple(args.strategies)
    if args.networks:
        kwargs["networks"] = tuple(args.networks)
    if args.faults:
        kwargs["faults"] = tuple(args.faults)
    config = SweepConfig(**kwargs)
    result = run_sweep(config, progress=print)
    if args.out:
        result.save(args.out)
    out = render_sweep(result)
    if args.out:
        out += f"\nartifact written : {args.out}"
    return out


def _cmd_chaos(args, scale) -> str:
    from repro.experiments.chaos import format_chaos_report, run_chaos_study

    outcomes = run_chaos_study(
        scale=scale, seed=args.seed, engine=args.engine, dataset=args.dataset
    )
    return format_chaos_report(outcomes)


def _cmd_resume(args) -> str:
    from repro.experiments.reporting import format_bytes, format_series
    from repro.fl.snapshot import load_snapshot

    trace = None
    if args.trace:
        from repro.sim import EventTrace, JsonlSink

        trace = EventTrace([JsonlSink(args.trace)])
    try:
        engine = load_snapshot(args.snapshot, trace=trace)
        result = engine.resume()
    finally:
        if trace is not None:
            trace.close()
    if args.out:
        save_run_result(result, args.out)
    rounds, accs = result.accuracy_curve()
    lines = [
        f"resumed {result.method} from {args.snapshot}",
        format_series(result.method, rounds, accs),
        f"final accuracy: {result.final_accuracy:.3f}",
        f"client updates: {result.total_uploads}",
        f"uplink volume : {format_bytes(result.total_bytes_up)}",
    ]
    return "\n".join(lines)


def _cmd_trace(args) -> str:
    from repro.sim import format_summary, load_trace, summarize_trace

    events = load_trace(args.path)
    out = [format_summary(summarize_trace(events))]
    if args.client is not None:
        out.append("")
        out.append(f"timeline for client {args.client}:")
        for ev in events:
            if ev.client != args.client:
                continue
            extra = " ".join(f"{k}={ev.data[k]}" for k in sorted(ev.data))
            out.append(f"  t={ev.t:>10.3f}  {ev.type:<14} {extra}".rstrip())
    return "\n".join(out)


def _cmd_wire(args) -> str:
    from repro.sim import DOWNLINK_END, DROPPED, SELECTED, UPLINK_END, load_trace
    from repro.wire import FRAME_OVERHEAD

    events = load_trace(args.path)
    legs = {"uplink": 0, "downlink": 0}
    payload = {"uplink": 0, "downlink": 0}
    framed = {"uplink": 0, "downlink": 0}
    codec_mix: dict[str, int] = {}
    unframed = 0
    mismatched = 0
    crc_failures = 0
    rounds = 0
    for ev in events:
        if ev.type == SELECTED:
            rounds += 1
        elif ev.type == DROPPED and ev.data.get("reason") == "corrupt_frame":
            crc_failures += 1
        elif ev.type in (UPLINK_END, DOWNLINK_END):
            leg = "uplink" if ev.type == UPLINK_END else "downlink"
            legs[leg] += 1
            nbytes = int(ev.data.get("nbytes", 0))
            payload[leg] += nbytes
            frame_len = ev.data.get("frame_len")
            if frame_len is None:
                unframed += 1
                continue
            framed[leg] += int(frame_len)
            codec = str(ev.data.get("codec", "?"))
            codec_mix[codec] = codec_mix.get(codec, 0) + 1
            # The charged bytes are the analytic prediction; the frame
            # carries the exact payload.  They must agree to the byte.
            if int(frame_len) - nbytes != FRAME_OVERHEAD:
                mismatched += 1
    lines = []
    total_payload = payload["uplink"] + payload["downlink"]
    total_framed = framed["uplink"] + framed["downlink"]
    header_bytes = total_framed - total_payload if total_framed else 0
    for leg in ("uplink", "downlink"):
        lines.append(
            f"{leg:<8} legs: {legs[leg]:>6}   charged {format_bytes(payload[leg])}, "
            f"framed {format_bytes(framed[leg])}"
        )
    if rounds:
        lines.append(f"rounds observed     : {rounds}")
    if codec_mix:
        mix = ", ".join(f"{c}={n}" for c, n in sorted(codec_mix.items()))
        lines.append(f"codec mix           : {mix}")
    if total_payload:
        lines.append(
            f"header overhead     : {format_bytes(header_bytes)} "
            f"({100.0 * header_bytes / total_payload:.3f}% of payload)"
        )
    lines.append(
        "exact == predicted  : "
        + ("yes (every framed leg)" if mismatched == 0 else f"NO — {mismatched} mismatched leg(s)")
    )
    lines.append(f"CRC failures        : {crc_failures} (dropped as corrupt_frame)")
    if unframed:
        lines.append(f"unframed legs       : {unframed} (trace predates the wire layer)")
    return "\n".join(lines)


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        default_baseline_path,
        default_lint_paths,
        default_src_root,
        exit_code,
        lint_diff,
        render_catalogue,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        save_baseline,
    )
    from repro.analysis.runner import EXIT_CLEAN, EXIT_ERROR

    if args.rules:
        print(render_catalogue())
        return EXIT_CLEAN
    paths = [Path(p) for p in args.paths] if args.paths else default_lint_paths()
    baseline = None
    if not args.no_baseline:
        baseline = (
            Path(args.baseline) if args.baseline else default_baseline_path()
        )
    select = args.select.split(",") if args.select else None
    try:
        if args.diff:
            result = lint_diff(
                args.diff, paths=paths, select=select, baseline_path=baseline
            )
        else:
            result = run_lint(
                paths,
                src_root=default_src_root(),
                select=select,
                baseline_path=baseline,
            )
    except Exception as exc:  # unreadable input / broken baseline / bad ref
        print(f"lint error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.update_baseline:
        target = baseline if baseline is not None else default_baseline_path()
        save_baseline(target, result.violations)
        print(f"baseline updated: {target} ({len(result.violations)} entries)")
        return EXIT_CLEAN
    fmt = args.format or ("json" if args.json else "text")
    if fmt == "json":
        print(render_json(result))
    elif fmt == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, args.verbose))
    return exit_code(result)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "worker":
        return _cmd_worker(args)
    scale = get_scale(args.scale)
    if args.command == "serve":
        print(_cmd_serve(args, scale))
        return 0
    if args.command == "fig1":
        print(_cmd_fig1(scale, args.seed))
    elif args.command == "fig3":
        print(_cmd_fig3(scale, args.seed))
    elif args.command == "table1":
        rows = run_table1(scale=scale, seed=args.seed)
        print(render_table(rows, "Table I (synchronous)"))
    elif args.command == "table2":
        rows = run_table2(scale=scale, seed=args.seed)
        print(render_table(rows, "Table II (asynchronous)"))
    elif args.command == "overhead":
        print(_cmd_overhead(scale, args.seed))
    elif args.command == "scalability":
        print(_cmd_scalability(scale, args.seed))
    elif args.command == "population":
        print(_cmd_population(args, args.seed))
    elif args.command == "ablation":
        print(_cmd_ablation(scale, args.seed))
    elif args.command == "report":
        from pathlib import Path

        from repro.experiments.report_html import write_report
        from repro.fl.persist import load_run_result

        runs = {Path(p).stem: load_run_result(p) for p in args.runs}
        path = write_report(runs, args.out, artifacts_dir=args.artifacts)
        print(f"wrote {path}")
    elif args.command == "quickrun":
        print(_cmd_quickrun(args, scale))
    elif args.command == "trace":
        print(_cmd_trace(args))
    elif args.command == "wire":
        print(_cmd_wire(args))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "chaos":
        print(_cmd_chaos(args, scale))
    elif args.command == "resume":
        print(_cmd_resume(args))
    else:  # pragma: no cover - argparse enforces choices
        raise AssertionError(args.command)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
