"""Deterministic discrete-event queue — the kernel's scheduling core.

A minimal priority-queue simulator: events carry a timestamp, a kind,
and an arbitrary payload.  Ties are broken by insertion order so runs
are fully deterministic.

(Historically ``repro.network.events``; that module now re-exports
from here.)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled simulator event.

    Ordering is (time, seq) — ``seq`` is a monotonically increasing
    counter assigned by :class:`EventQueue` that makes the ordering
    total and deterministic.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        """Schedule an event; times must not precede the current clock."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at t={time} before current time {self.now}"
            )
        event = Event(time=time, seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0]

    def drain_until(self, deadline: float) -> Iterator[Event]:
        """Yield events with ``time <= deadline`` in order.

        The heap is re-examined after every yield, so events pushed by
        a consumer while handling one event are drained in the same
        pass — this is the async engine's main loop.
        """
        while self._heap and self._heap[0].time <= deadline:
            yield self.pop()
