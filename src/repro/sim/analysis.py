"""Trace analysis: per-client timelines, drops, straggler attribution.

Two entry points:

* :class:`SummarySink` — a *streaming* reducer attached as a trace sink;
  it accumulates the summary while a run executes, without retaining
  events.
* :func:`summarize_trace` — folds an already-recorded event sequence
  (e.g. from :func:`load_trace` on a JSONL file) through the same sink.

Both produce a :class:`TraceSummary`; :func:`format_summary` renders it
as the table the ``repro trace`` CLI subcommand prints.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from dataclasses import dataclass, field
from typing import Iterable

from repro.sim.trace import (
    AGGREGATED,
    DOWNLINK_END,
    DOWNLINK_START,
    DROPPED,
    EVALUATED,
    HALTED,
    RUN_START,
    TRAIN_END,
    TRAIN_START,
    TraceEvent,
    TraceSink,
    UPLINK_END,
    UPLINK_START,
    WOKEN,
)

__all__ = [
    "ClientTimeline",
    "TraceSummary",
    "SummarySink",
    "load_trace",
    "summarize_trace",
    "format_summary",
]

# Leg kinds keyed by their START event type; END events close them.
_LEG_OF_START = {DOWNLINK_START: "down", TRAIN_START: "compute", UPLINK_START: "up"}
_LEG_OF_END = {DOWNLINK_END: "down", TRAIN_END: "compute", UPLINK_END: "up"}


@dataclass
class ClientTimeline:
    """Where one client's simulated time and bytes went."""

    client: int
    down_s: float = 0.0
    compute_s: float = 0.0
    up_s: float = 0.0
    bytes_down: int = 0
    bytes_up: int = 0
    uploads: int = 0  # deliveries absorbed by an aggregation
    drops: Counter = field(default_factory=Counter)  # reason -> count
    halts: int = 0
    slowest_rounds: int = 0  # sync rounds where this client set the barrier

    @property
    def busy_s(self) -> float:
        return self.down_s + self.compute_s + self.up_s

    def idle_s(self, duration_s: float) -> float:
        """Time not spent transferring or training over ``duration_s``."""
        return max(0.0, duration_s - self.busy_s)


@dataclass
class TraceSummary:
    """The streaming-reducer output: a whole-run digest."""

    header: dict = field(default_factory=dict)  # run_start payload
    duration_s: float = 0.0
    num_events: int = 0
    rounds: int = 0  # AGGREGATED count (sync rounds / async updates)
    evaluations: int = 0
    drop_reasons: Counter = field(default_factory=Counter)
    clients: dict[int, ClientTimeline] = field(default_factory=dict)

    def timeline(self, client: int) -> ClientTimeline:
        tl = self.clients.get(client)
        if tl is None:
            tl = ClientTimeline(client=client)
            self.clients[client] = tl
        return tl


class SummarySink(TraceSink):
    """Streaming summary reducer — O(clients) state, O(1) per event."""

    def __init__(self) -> None:
        self.summary = TraceSummary()
        # open transfer/compute legs: (client, kind) -> start time
        self._open: dict[tuple[int, str], float] = {}
        # per-round end times for straggler attribution: client -> t_end
        self._round_ends: dict[int, float] = {}

    def emit(self, event: TraceEvent) -> None:
        s = self.summary
        s.num_events += 1
        if event.t > s.duration_s:
            s.duration_s = event.t
        etype = event.type

        if etype == RUN_START:
            s.header = dict(event.data)
            return
        if etype == AGGREGATED:
            s.rounds += 1
            absorbed = event.data.get("participants")
            if absorbed is None:
                absorbed = [event.client] if event.client is not None else []
            for c in absorbed:
                s.timeline(int(c)).uploads += 1
            self._attribute_straggler(event)
            return
        if etype == EVALUATED:
            s.evaluations += 1
            return

        cid = event.client
        if cid is None:
            return
        tl = s.timeline(cid)

        if etype in _LEG_OF_START:
            self._open[(cid, _LEG_OF_START[etype])] = event.t
        elif etype in _LEG_OF_END:
            kind = _LEG_OF_END[etype]
            start = self._open.pop((cid, kind), event.t)
            elapsed = event.t - start
            if kind == "down":
                tl.down_s += elapsed
                tl.bytes_down += int(event.data.get("nbytes", 0))
            elif kind == "compute":
                tl.compute_s += elapsed
            else:
                tl.up_s += elapsed
                if event.data.get("ok", True):
                    tl.bytes_up += int(event.data.get("nbytes", 0))
            if kind == "up" and event.data.get("ok", True):
                self._round_ends[cid] = max(self._round_ends.get(cid, 0.0), event.t)
        elif etype == DROPPED:
            reason = event.data.get("reason", "unknown")
            tl.drops[reason] += 1
            s.drop_reasons[reason] += 1
        elif etype == HALTED:
            tl.halts += 1

    def _attribute_straggler(self, event: TraceEvent) -> None:
        """Credit the client whose delivery closed latest before this
        aggregation — the one that set the sync barrier."""
        participants = event.data.get("participants")
        ends = self._round_ends
        self._round_ends = {}
        if not ends or participants is None or len(participants) < 2:
            return  # async per-update aggregations have a single uploader
        # Deterministic tie-break: lowest client id among the latest.
        slowest = min(c for c, t in ends.items() if t == max(ends.values()))
        self.summary.timeline(slowest).slowest_rounds += 1


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Read a JSONL trace file back into events."""
    events = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_json(line))
    return events


def summarize_trace(events: Iterable[TraceEvent]) -> TraceSummary:
    """Fold recorded events through the streaming reducer."""
    sink = SummarySink()
    for event in events:
        sink.emit(event)
    return sink.summary


def format_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the ``repro trace`` report."""
    lines = []
    header = summary.header
    if header:
        desc = " ".join(f"{k}={header[k]}" for k in sorted(header))
        lines.append(f"run: {desc}")
    lines.append(
        f"events: {summary.num_events}  duration: {summary.duration_s:.2f}s  "
        f"aggregations: {summary.rounds}  evaluations: {summary.evaluations}"
    )
    if summary.drop_reasons:
        parts = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(summary.drop_reasons.items())
        )
        lines.append(f"drops: {parts}")
    else:
        lines.append("drops: none")
    lines.append("")
    lines.append(
        f"{'client':>6} {'down_s':>9} {'compute_s':>10} {'up_s':>9} {'idle_s':>9} "
        f"{'MB_down':>8} {'MB_up':>7} {'uploads':>7} {'drops':>5} {'halts':>5} "
        f"{'slowest':>7}"
    )
    for cid in sorted(summary.clients):
        tl = summary.clients[cid]
        lines.append(
            f"{cid:>6} {tl.down_s:>9.2f} {tl.compute_s:>10.2f} {tl.up_s:>9.2f} "
            f"{tl.idle_s(summary.duration_s):>9.2f} "
            f"{tl.bytes_down / 1e6:>8.2f} {tl.bytes_up / 1e6:>7.2f} "
            f"{tl.uploads:>7} {sum(tl.drops.values()):>5} {tl.halts:>5} "
            f"{tl.slowest_rounds:>7}"
        )
    return "\n".join(lines)
