"""Composable fault models for chaos-style resilience studies.

The §III empirical study keeps its original two special cases
(:class:`repro.fl.faults.FaultInjector` — deterministic dropout and
stochastic data loss); this module generalises the failure model into
independent, composable pieces an engine consults through one
:class:`FaultPlan`:

* :class:`ClientCrashModel` — a device crashes (losing any in-progress
  round) and restarts after a downtime; exponential time-between-
  failures and downtime, per-client lazy schedules exactly like
  :class:`repro.network.churn.ChurnModel`;
* :class:`PayloadCorruptionModel` — an uploaded flat vector arrives
  damaged: NaN-poisoned, a single flipped mantissa/exponent bit, or a
  norm blow-up;
* :class:`StaleUploadModel` — an upload is delayed in transit (arriving
  stale) and/or duplicated (the server sees it twice);
* :class:`ServerOutageModel` — the aggregation server itself is
  unreachable during outage windows (explicit or stochastic).

Determinism contract: every model draws only from kernel-derived
streams (``default_rng((seed, crc32("fault"), crc32(name), index))``),
never from the engine's root RNG — so attaching a plan whose models
never fire, or no plan at all, leaves trajectories bit-identical.
Models hold plain generators and float lists, so a bound plan pickles
cleanly into run snapshots.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

import numpy as np

from repro.wire.frame import FRAME_OVERHEAD

__all__ = [
    "FaultPlan",
    "ClientCrashModel",
    "PayloadCorruptionModel",
    "StaleUploadModel",
    "ServerOutageModel",
]

_FAULT_NAMESPACE = zlib.crc32(b"fault")


def _fault_stream(seed: int, name: str, index: int) -> np.random.Generator:
    """The derived RNG stream for one fault model + client/site index."""
    return np.random.default_rng(
        (seed, _FAULT_NAMESPACE, zlib.crc32(name.encode()), index)
    )


class _ToggleSchedule:
    """Lazy alternating up/down schedule; the subject starts up at t=0.

    Up and down periods are exponential with the given means; toggle
    times are generated on demand, so lookups are deterministic for a
    given stream regardless of query order (same contract as
    :class:`~repro.network.churn.ChurnModel`).
    """

    def __init__(self, rng: np.random.Generator, mean_up_s: float, mean_down_s: float):
        self._rng = rng
        self.mean_up_s = mean_up_s
        self.mean_down_s = mean_down_s
        self._toggles: list[float] = []

    def _extend(self, until: float) -> None:
        toggles = self._toggles
        up = len(toggles) % 2 == 0
        last = toggles[-1] if toggles else 0.0
        while last <= until:
            mean = self.mean_up_s if up else self.mean_down_s
            last += float(self._rng.exponential(mean))
            toggles.append(last)
            up = not up

    def _index(self, t: float) -> int:
        if t < 0:
            raise ValueError("time must be non-negative")
        self._extend(t)
        return int(np.searchsorted(self._toggles, t, side="right"))

    def is_up(self, t: float) -> bool:
        return self._index(t) % 2 == 0

    def next_up(self, t: float) -> float:
        """Earliest time >= ``t`` at which the subject is up."""
        idx = self._index(t)
        if idx % 2 == 0:
            return t
        return self._toggles[idx]

    def next_down_in(self, t0: float, t1: float) -> float | None:
        """First down transition in ``[t0, t1)``; ``t0`` if already down."""
        idx = self._index(t0)
        if idx % 2 == 1:
            return t0
        self._extend(t1)
        toggle = self._toggles[idx]
        return toggle if t0 <= toggle < t1 else None


class _FaultModel:
    """Shared bind plumbing: models are inert until given seed + fleet size."""

    name = "fault"

    def __init__(self, client_ids: Iterable[int] | None = None):
        self.client_ids = None if client_ids is None else frozenset(
            int(i) for i in client_ids
        )
        self._bound = False

    @property
    def bound(self) -> bool:
        return self._bound

    def bind(self, seed: int, num_clients: int) -> None:
        """Derive per-client streams; idempotent (resume keeps state)."""
        if self._bound:
            return
        ids = (
            range(num_clients)
            if self.client_ids is None
            else sorted(i for i in self.client_ids if i < num_clients)
        )
        self._setup(seed, ids)
        self._bound = True

    def _setup(self, seed: int, ids) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _require_bound(self) -> None:
        if not self._bound:
            raise RuntimeError(f"{type(self).__name__} is not bound to a kernel seed")


class ClientCrashModel(_FaultModel):
    """Devices crash (losing in-progress work) and restart later."""

    name = "crash"

    def __init__(
        self,
        mtbf_s: float,
        mean_downtime_s: float,
        client_ids: Iterable[int] | None = None,
    ):
        super().__init__(client_ids)
        if mtbf_s <= 0 or mean_downtime_s <= 0:
            raise ValueError("mtbf_s and mean_downtime_s must be positive")
        self.mtbf_s = mtbf_s
        self.mean_downtime_s = mean_downtime_s
        self._schedules: dict[int, _ToggleSchedule] = {}

    def _setup(self, seed: int, ids) -> None:
        for cid in ids:
            self._schedules[cid] = _ToggleSchedule(
                _fault_stream(seed, self.name, cid),
                self.mtbf_s,
                self.mean_downtime_s,
            )

    def is_down(self, client_id: int, t: float) -> bool:
        """Is the device in a crash-downtime window at ``t``?"""
        self._require_bound()
        sched = self._schedules.get(client_id)
        return sched is not None and not sched.is_up(t)

    def next_up(self, client_id: int, t: float) -> float:
        """Earliest time >= ``t`` the device has restarted."""
        self._require_bound()
        sched = self._schedules.get(client_id)
        return t if sched is None else sched.next_up(t)

    def crash_in(self, client_id: int, t0: float, t1: float) -> float | None:
        """Crash instant inside ``[t0, t1)`` — the window's work is lost."""
        self._require_bound()
        sched = self._schedules.get(client_id)
        return None if sched is None else sched.next_down_in(t0, t1)


class PayloadCorruptionModel(_FaultModel):
    """Uploaded payloads arrive damaged with some probability.

    ``kind``: ``"nan"`` poisons ~0.1% of coordinates with NaN,
    ``"bitflip"`` flips one random bit of the *encoded wire frame*
    (so the server's CRC-32 integrity check catches it as a
    ``corrupt_frame`` rejection), and ``"blowup"`` scales the whole
    vector by ``magnitude``.  ``nan``/``blowup`` tamper the decoded
    vector and exercise the numeric screen instead — the engines call
    :meth:`corrupt_upload`, which routes each kind to the right
    representation.  :meth:`corrupt` is the legacy vector-only entry
    point (bitflip there flips one float64 bit in place).
    """

    name = "corrupt"
    KINDS = ("nan", "bitflip", "blowup")

    def __init__(
        self,
        prob: float,
        kind: str = "nan",
        magnitude: float = 1e6,
        client_ids: Iterable[int] | None = None,
    ):
        super().__init__(client_ids)
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}")
        if magnitude <= 0:
            raise ValueError("magnitude must be positive")
        self.prob = prob
        self.kind = kind
        self.magnitude = magnitude
        self._rngs: dict[int, np.random.Generator] = {}

    def _setup(self, seed: int, ids) -> None:
        for cid in ids:
            self._rngs[cid] = _fault_stream(seed, self.name, cid)

    def corrupt(self, client_id: int, delta: np.ndarray) -> np.ndarray | None:
        """A corrupted copy of ``delta``, or None if this upload is clean."""
        self._require_bound()
        rng = self._rngs.get(client_id)
        if rng is None or rng.random() >= self.prob:
            return None
        out = np.array(delta, dtype=np.float64, copy=True)
        if self.kind == "bitflip":
            idx = int(rng.integers(0, out.size))
            bit = int(rng.integers(0, 64))
            bits = out.view(np.uint64)
            bits[idx] ^= np.uint64(1) << np.uint64(bit)
            return out
        return self._tamper_vector(rng, out)

    def corrupt_upload(
        self, client_id: int, delta: np.ndarray, frame_bytes: bytes
    ) -> tuple[np.ndarray, bytes | None]:
        """Apply this model to one encoded upload.

        Returns ``(delta, tampered_frame_or_None)``: a ``bitflip``
        flips one bit somewhere in the frame's *payload* region (the
        part the header CRC-32 covers, so detection is guaranteed) and
        leaves the vector alone; ``nan``/``blowup`` damage a copy of
        the decoded vector and leave the frame alone, modelling
        corruption that happened before encoding.  One gate draw per
        upload either way, so disabling the model (or prob=0) keeps
        trajectories bit-identical.
        """
        self._require_bound()
        rng = self._rngs.get(client_id)
        if rng is None or rng.random() >= self.prob:
            return delta, None
        if self.kind == "bitflip":
            buf = bytearray(frame_bytes)
            span = len(buf) - FRAME_OVERHEAD
            if span <= 0:  # header-only frame: nothing the CRC covers
                return delta, None
            pos = FRAME_OVERHEAD + int(rng.integers(0, span))
            bit = int(rng.integers(0, 8))
            buf[pos] ^= 1 << bit
            return delta, bytes(buf)
        out = np.array(delta, dtype=np.float64, copy=True)
        return self._tamper_vector(rng, out), None

    def _tamper_vector(self, rng: np.random.Generator, out: np.ndarray) -> np.ndarray:
        """NaN-poison or blow up ``out`` in place (non-bitflip kinds)."""
        if self.kind == "nan":
            k = max(1, out.size // 1000)
            out[rng.integers(0, out.size, size=k)] = np.nan
        else:  # blowup
            out *= self.magnitude
        return out


class StaleUploadModel(_FaultModel):
    """Uploads are delayed in transit and/or duplicated at the server."""

    name = "stale"

    def __init__(
        self,
        delay_prob: float = 0.0,
        mean_delay_s: float = 10.0,
        duplicate_prob: float = 0.0,
        client_ids: Iterable[int] | None = None,
    ):
        super().__init__(client_ids)
        if not 0.0 <= delay_prob <= 1.0 or not 0.0 <= duplicate_prob <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        if mean_delay_s <= 0:
            raise ValueError("mean_delay_s must be positive")
        self.delay_prob = delay_prob
        self.mean_delay_s = mean_delay_s
        self.duplicate_prob = duplicate_prob
        self._rngs: dict[int, np.random.Generator] = {}

    def _setup(self, seed: int, ids) -> None:
        for cid in ids:
            self._rngs[cid] = _fault_stream(seed, self.name, cid)

    def upload_effects(self, client_id: int) -> tuple[float, bool]:
        """(extra transit delay in seconds, was the upload duplicated?)."""
        self._require_bound()
        rng = self._rngs.get(client_id)
        if rng is None:
            return 0.0, False
        delay = 0.0
        if self.delay_prob > 0.0 and rng.random() < self.delay_prob:
            delay = float(rng.exponential(self.mean_delay_s))
        duplicate = self.duplicate_prob > 0.0 and rng.random() < self.duplicate_prob
        return delay, duplicate


class ServerOutageModel(_FaultModel):
    """The aggregation server is unreachable during outage windows.

    Either pass explicit ``windows`` (``[(start_s, stop_s), ...]``) or
    means for a stochastic schedule (``mtbf_s`` between outages,
    ``mean_outage_s`` long).
    """

    name = "server_down"

    def __init__(
        self,
        windows: Sequence[tuple[float, float]] | None = None,
        mtbf_s: float | None = None,
        mean_outage_s: float | None = None,
    ):
        super().__init__(client_ids=None)
        if windows is not None:
            if mtbf_s is not None or mean_outage_s is not None:
                raise ValueError("pass either windows or mtbf/mean_outage, not both")
            cleaned = []
            for start, stop in windows:
                if not 0 <= start < stop:
                    raise ValueError(f"bad outage window ({start}, {stop})")
                cleaned.append((float(start), float(stop)))
            self.windows = sorted(cleaned)
        else:
            if mtbf_s is None or mean_outage_s is None:
                raise ValueError("stochastic outages need mtbf_s and mean_outage_s")
            if mtbf_s <= 0 or mean_outage_s <= 0:
                raise ValueError("mtbf_s and mean_outage_s must be positive")
            self.windows = None
        self.mtbf_s = mtbf_s
        self.mean_outage_s = mean_outage_s
        self._schedule: _ToggleSchedule | None = None

    def _setup(self, seed: int, ids) -> None:
        del ids
        if self.windows is None:
            self._schedule = _ToggleSchedule(
                _fault_stream(seed, self.name, 0), self.mtbf_s, self.mean_outage_s
            )

    def is_down(self, t: float) -> bool:
        """Is the server unreachable at ``t``?"""
        self._require_bound()
        if self.windows is not None:
            return any(start <= t < stop for start, stop in self.windows)
        return not self._schedule.is_up(t)

    def next_up(self, t: float) -> float:
        """Earliest time >= ``t`` the server is reachable."""
        self._require_bound()
        if self.windows is not None:
            for start, stop in self.windows:
                if start <= t < stop:
                    return stop
            return t
        return self._schedule.next_up(t)


class FaultPlan:
    """The set of fault models active in one run.

    At most one model of each kind; engines consult the typed
    accessors (``plan.crash``/``corruption``/``stale``/``outage``) so a
    plan is free to carry any subset.  :meth:`bind` derives every
    model's RNG streams from the kernel seed; binding is idempotent so
    a plan restored from a snapshot keeps its advanced stream states.
    """

    def __init__(self, *models: _FaultModel):
        self.models = list(models)
        self.crash: ClientCrashModel | None = self._find(ClientCrashModel)
        self.corruption: PayloadCorruptionModel | None = self._find(
            PayloadCorruptionModel
        )
        self.stale: StaleUploadModel | None = self._find(StaleUploadModel)
        self.outage: ServerOutageModel | None = self._find(ServerOutageModel)
        known = (ClientCrashModel, PayloadCorruptionModel, StaleUploadModel,
                 ServerOutageModel)
        for m in self.models:
            if not isinstance(m, known):
                raise TypeError(f"unknown fault model {type(m).__name__}")
        self._bound = False

    def _find(self, cls):
        matches = [m for m in self.models if isinstance(m, cls)]
        if len(matches) > 1:
            raise ValueError(f"at most one {cls.__name__} per plan")
        return matches[0] if matches else None

    @property
    def bound(self) -> bool:
        return self._bound

    def bind(self, seed: int, num_clients: int) -> "FaultPlan":
        if not self._bound:
            for model in self.models:
                model.bind(seed, num_clients)
            self._bound = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(m).__name__ for m in self.models)
        return f"FaultPlan({names})"
