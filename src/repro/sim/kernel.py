"""The shared simulation kernel both FL engines run on.

:class:`SimKernel` owns the four things the old engines each kept a
private, subtly divergent copy of:

* the **clock** — an :class:`~repro.sim.events.EventQueue` whose ``now``
  is the single source of simulated time (reactive protocols schedule
  events on it; barrier protocols move it with :meth:`advance_to`);
* the **RNG streams** — one root generator (consumed in engine
  execution order, which keeps runs reproducible and lets the rewritten
  engines match the pre-kernel trajectories bit-for-bit) plus derived
  per-client streams for features that must not perturb the root
  sequence;
* the **network/compute accounting** — :meth:`downlink`,
  :meth:`uplink`, and :meth:`compute` are the only places transfer and
  training time come from, and each emits its START/END trace events;
* the **telemetry bus** — an :class:`~repro.sim.trace.EventTrace`
  shared by the engine and any caller-attached sinks.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sim.events import EventQueue
from repro.sim.trace import (
    DOWNLINK_END,
    DOWNLINK_START,
    EventTrace,
    TRAIN_END,
    TRAIN_START,
    UPLINK_END,
    UPLINK_START,
)

__all__ = ["SimKernel", "LegResult", "DEFAULT_DEVICE_FLOPS"]

DEFAULT_DEVICE_FLOPS = 2e9  # workstation-class sustained FLOP/s


@dataclass(frozen=True)
class LegResult:
    """Outcome of one transfer leg (a downlink or uplink attempt)."""

    duration_s: float
    delivered: bool
    num_bytes: int


class SimKernel:
    """Deterministic clock + event queue + RNG streams + accounting."""

    def __init__(
        self,
        seed: int,
        num_clients: int,
        network: Any = None,
        device_flops: np.ndarray | None = None,
        trace: EventTrace | None = None,
    ):
        if num_clients <= 0:
            raise ValueError("need at least one client")
        if network is not None and len(network) != num_clients:
            raise ValueError("network must describe exactly one endpoint per client")
        if device_flops is not None and len(device_flops) != num_clients:
            raise ValueError("device_flops must have one entry per client")
        self.num_clients = num_clients
        self.network = network
        self.device_flops = (
            np.asarray(device_flops, dtype=np.float64)
            if device_flops is not None
            else np.full(num_clients, DEFAULT_DEVICE_FLOPS)
        )
        if np.any(self.device_flops <= 0):
            raise ValueError("device compute rates must be positive")
        self.queue = EventQueue()
        self.trace = trace if trace is not None else EventTrace()
        self.rng = np.random.default_rng(seed)
        self._seed = seed
        self._client_rngs: dict[int, np.random.Generator] = {}
        self._streams: dict[tuple[int, ...], np.random.Generator] = {}

    # -- time ----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.queue.now

    def advance_to(self, t: float) -> None:
        """Move the clock forward directly (barrier protocols)."""
        if t < self.queue.now:
            raise ValueError(
                f"cannot move clock backwards from {self.queue.now} to {t}"
            )
        self.queue.now = t

    # -- randomness ----------------------------------------------------
    @property
    def seed(self) -> int:
        """The root seed this kernel (and all derived streams) hang off."""
        return self._seed

    def stream(self, *key: int | str) -> np.random.Generator:
        """A named derived RNG stream, independent of the root ``rng``.

        ``key`` is any mix of ints and short string tags (hashed with
        CRC-32); the same key always yields the same cached generator.
        Subsystems that must not perturb the root sequence — fault
        models, retry jitter — draw from here.
        """
        if not key:
            raise ValueError("stream key must be non-empty")
        resolved = tuple(
            zlib.crc32(part.encode()) if isinstance(part, str) else int(part)
            for part in key
        )
        stream = self._streams.get(resolved)
        if stream is None:
            stream = np.random.default_rng((self._seed, *resolved))
            self._streams[resolved] = stream
        return stream

    def client_rng(self, client_id: int) -> np.random.Generator:
        """A per-client stream, independent of the root ``rng``.

        Derived from ``(seed, client_id)``, so draws on one client's
        stream never shift another client's (or the root's) sequence —
        the property the single shared generator cannot offer.
        """
        if not 0 <= client_id < self.num_clients:
            raise ValueError(f"client_id {client_id} out of range")
        stream = self._client_rngs.get(client_id)
        if stream is None:
            stream = np.random.default_rng((self._seed, client_id))
            self._client_rngs[client_id] = stream
        return stream

    # -- accounting ----------------------------------------------------
    def downlink(
        self,
        client_id: int,
        num_bytes: int,
        start_t: float,
        extra: dict[str, Any] | None = None,
    ) -> LegResult:
        """One server-to-client model broadcast attempt.

        ``extra`` is merged into both trace events' data — the engines
        use it to attach wire-frame metadata (codec name, full framed
        length) without perturbing the charged ``nbytes``.
        """
        extra = extra or {}
        self.trace.emit(DOWNLINK_START, start_t, client_id, nbytes=num_bytes, **extra)
        if self.network is None:
            duration, delivered = 0.0, True
        else:
            res = self.network[client_id].receive_model(num_bytes, start_t, self.rng)
            duration, delivered = res.duration_s, res.delivered
        self.trace.emit(
            DOWNLINK_END,
            start_t + duration,
            client_id,
            nbytes=num_bytes,
            ok=delivered,
            **extra,
        )
        return LegResult(duration_s=duration, delivered=delivered, num_bytes=num_bytes)

    def uplink(
        self,
        client_id: int,
        num_bytes: int,
        start_t: float,
        extra: dict[str, Any] | None = None,
    ) -> LegResult:
        """One client-to-server update upload attempt (``extra``: see
        :meth:`downlink`)."""
        extra = extra or {}
        self.trace.emit(UPLINK_START, start_t, client_id, nbytes=num_bytes, **extra)
        if self.network is None:
            duration, delivered = 0.0, True
        else:
            res = self.network[client_id].send_update(num_bytes, start_t, self.rng)
            duration, delivered = res.duration_s, res.delivered
        self.trace.emit(
            UPLINK_END,
            start_t + duration,
            client_id,
            nbytes=num_bytes,
            ok=delivered,
            **extra,
        )
        return LegResult(duration_s=duration, delivered=delivered, num_bytes=num_bytes)

    def compute(self, client_id: int, flops: int, start_t: float) -> float:
        """Seconds of local training at the client's compute rate."""
        duration = flops / self.device_flops[client_id]
        self.trace.emit(TRAIN_START, start_t, client_id)
        self.trace.emit(TRAIN_END, start_t + duration, client_id, flops=flops)
        return duration
