"""First-class transfer retry policies.

A lost transfer leg used to be handled ad hoc: the sync engine dropped
the client for the round after a single attempt, and the async engine
retried downlinks forever with a hard-coded backoff constant.
:class:`RetryPolicy` makes the schedule explicit and configurable on
:class:`~repro.fl.config.FederationConfig`:

* ``max_attempts`` bounds the attempts; exhausting them is a *terminal*
  drop (``DROPPED(..., terminal=True)`` in the trace);
* the wait after failed attempt ``k`` is
  ``backoff_frac * duration * multiplier**(k-1)``, capped by
  ``max_backoff_s`` — backoff scales with the failed leg's own
  duration, so slow links naturally wait longer in absolute terms;
* ``jitter_frac`` desynchronises retries with a deterministic
  multiplicative jitter drawn from a kernel-derived stream
  (``kernel.stream("retry", cid)``), never from the root RNG.

The legacy behaviours are expressible exactly: a single attempt
(:meth:`RetryPolicy.single`, the sync engines' default) and the async
engine's constant ``(1 + 1.0) * duration`` schedule
(``RetryPolicy(backoff_frac=1.0, multiplier=1.0)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for one transfer leg."""

    max_attempts: int = 8
    backoff_frac: float = 1.0
    multiplier: float = 2.0
    max_backoff_s: float | None = None
    jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_frac < 0.0:
            raise ValueError("backoff_frac must be non-negative")
        if self.multiplier <= 0.0:
            raise ValueError("multiplier must be positive")
        if self.max_backoff_s is not None and self.max_backoff_s < 0.0:
            raise ValueError("max_backoff_s must be non-negative or None")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    @classmethod
    def single(cls) -> "RetryPolicy":
        """One attempt, no retries — the legacy synchronous behaviour."""
        return cls(max_attempts=1)

    def exhausted(self, attempt: int) -> bool:
        """Was ``attempt`` (1-based) the last one allowed?"""
        return attempt >= self.max_attempts

    def backoff_s(
        self,
        attempt: int,
        duration_s: float,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        wait = self.backoff_frac * duration_s * self.multiplier ** (attempt - 1)
        if self.max_backoff_s is not None:
            wait = min(wait, self.max_backoff_s)
        if self.jitter_frac > 0.0 and rng is not None:
            wait *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return wait
