"""Unified discrete-event simulation kernel.

``repro.sim`` is the substrate both FL engines run on:

* :mod:`repro.sim.events` — the deterministic event queue (moved here
  from ``repro.network.events``, which remains as a re-export);
* :mod:`repro.sim.kernel` — :class:`SimKernel`: clock, event queue,
  root + per-client RNG streams, and the transfer/compute accounting
  both engines share;
* :mod:`repro.sim.trace` — the typed :class:`EventTrace` telemetry bus
  with pluggable sinks (ring buffer, JSONL writer, streaming summary);
* :mod:`repro.sim.faults` — composable fault models (client crashes,
  payload corruption, stale/duplicate uploads, server outages) grouped
  into a :class:`FaultPlan`, all driven by kernel-derived RNG streams;
* :mod:`repro.sim.retry` — :class:`RetryPolicy`, the deterministic
  backoff/max-attempt schedule both engines use for transfer legs;
* :mod:`repro.sim.analysis` — per-client timelines, drop-reason
  breakdowns, and straggler attribution derived from recorded traces.

The package is deliberately FL-agnostic: nothing here imports
``repro.fl``.  The metrics reducer that folds a trace back into
``RoundRecord``/``RunResult`` lives in :mod:`repro.fl.metrics`.
"""

from repro.sim.analysis import (
    ClientTimeline,
    SummarySink,
    format_summary,
    load_trace,
    summarize_trace,
)
from repro.sim.events import Event, EventQueue
from repro.sim.faults import (
    ClientCrashModel,
    FaultPlan,
    PayloadCorruptionModel,
    ServerOutageModel,
    StaleUploadModel,
)
from repro.sim.kernel import LegResult, SimKernel
from repro.sim.retry import RetryPolicy
from repro.sim.trace import (
    AGGREGATED,
    COUNTED_DROP_REASONS,
    REJECTED_DROP_REASONS,
    DOWNLINK_END,
    DOWNLINK_START,
    DROP_REASONS,
    DROPPED,
    EVALUATED,
    EVENT_TYPES,
    EventTrace,
    HALTED,
    JsonlSink,
    RingBufferSink,
    RUN_END,
    RUN_START,
    SELECTED,
    TraceEvent,
    TRAIN_END,
    TRAIN_START,
    UPLINK_END,
    UPLINK_START,
    WOKEN,
)

__all__ = [
    "Event",
    "EventQueue",
    "SimKernel",
    "LegResult",
    "RetryPolicy",
    "FaultPlan",
    "ClientCrashModel",
    "PayloadCorruptionModel",
    "StaleUploadModel",
    "ServerOutageModel",
    "EventTrace",
    "TraceEvent",
    "RingBufferSink",
    "JsonlSink",
    "SummarySink",
    "ClientTimeline",
    "load_trace",
    "summarize_trace",
    "format_summary",
    "EVENT_TYPES",
    "DROP_REASONS",
    "COUNTED_DROP_REASONS",
    "REJECTED_DROP_REASONS",
    "RUN_START",
    "RUN_END",
    "SELECTED",
    "DOWNLINK_START",
    "DOWNLINK_END",
    "TRAIN_START",
    "TRAIN_END",
    "UPLINK_START",
    "UPLINK_END",
    "DROPPED",
    "HALTED",
    "WOKEN",
    "AGGREGATED",
    "EVALUATED",
]
