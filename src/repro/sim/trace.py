"""Typed event-trace telemetry bus.

Every observable thing that happens inside an engine — a selection, a
transfer leg, a local-training interval, a drop with its cause, a
halt/wake, an aggregation, an evaluation — is emitted as one
:class:`TraceEvent` on an :class:`EventTrace`.  Sinks subscribe to the
bus; the engines always attach the metrics reducer
(:class:`repro.fl.metrics.MetricsReducer`), and callers may add a ring
buffer, a JSONL writer, or the streaming summary reducer
(:class:`repro.sim.analysis.SummarySink`).

Event taxonomy
--------------
``run_start``/``run_end`` bracket a run and carry the run header
(mode, method, client count, dense model bytes).  Per activity:

* ``selected`` — one per synchronous round: the chosen participants
  (``clients``) and the availability set (``available``).
* ``downlink_start``/``downlink_end`` — one model broadcast attempt;
  the end event carries ``ok``.  Bytes are charged per attempt.
* ``train_start``/``train_end`` — one local-training interval.
* ``uplink_start``/``uplink_end`` — one update upload attempt.
* ``dropped`` — work lost, with ``reason`` one of
  ``downlink_lost | uplink_lost | deadline | fault | offline |
  crash | server_down | corrupt | corrupt_frame | stale``
  (``offline`` additionally carries ``cause``: churn vs dropout fault
  vs crash downtime).  Terminal retry exhaustion carries
  ``terminal=True`` and the attempt count.  ``offline`` clients were
  never selected, so they do not count as dropped uploads in round
  records; ``corrupt``/``corrupt_frame``/``stale`` are *rejections*
  by the server's update validation — numeric screen, wire-frame
  CRC-32 check, and replay/staleness serials respectively — and are
  counted separately (``RoundRecord.rejected_uploads``).
* ``halted``/``woken`` — a client parked until the next global model
  version (``cause``: strategy halting, dropout fault, churn) and its
  wake-up (``cause``: version change or the deadlock guard's
  ``forced`` dispatch).
* ``aggregated`` — the server folded deliveries in: closes one
  :class:`~repro.fl.metrics.RoundRecord` (sync: the round barrier;
  async: one absorbed update, with ``staleness`` and ``applied``).
* ``evaluated`` — accuracy/loss of the current global model.

Timestamps are simulated seconds.  Events are emitted in engine
execution order; within a synchronous round, per-client legs all start
at the round barrier, so timestamps are monotone per client but not
globally.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable

__all__ = [
    "TraceEvent",
    "EventTrace",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "EVENT_TYPES",
    "DROP_REASONS",
    "COUNTED_DROP_REASONS",
    "REJECTED_DROP_REASONS",
    "UNCOUNTED_DROP_REASONS",
    "RUN_START",
    "RUN_END",
    "SELECTED",
    "DOWNLINK_START",
    "DOWNLINK_END",
    "TRAIN_START",
    "TRAIN_END",
    "UPLINK_START",
    "UPLINK_END",
    "DROPPED",
    "HALTED",
    "WOKEN",
    "AGGREGATED",
    "EVALUATED",
]

RUN_START = "run_start"
RUN_END = "run_end"
SELECTED = "selected"
DOWNLINK_START = "downlink_start"
DOWNLINK_END = "downlink_end"
TRAIN_START = "train_start"
TRAIN_END = "train_end"
UPLINK_START = "uplink_start"
UPLINK_END = "uplink_end"
DROPPED = "dropped"
HALTED = "halted"
WOKEN = "woken"
AGGREGATED = "aggregated"
EVALUATED = "evaluated"

EVENT_TYPES = frozenset(
    {
        RUN_START,
        RUN_END,
        SELECTED,
        DOWNLINK_START,
        DOWNLINK_END,
        TRAIN_START,
        TRAIN_END,
        UPLINK_START,
        UPLINK_END,
        DROPPED,
        HALTED,
        WOKEN,
        AGGREGATED,
        EVALUATED,
    }
)

DROP_REASONS = (
    "downlink_lost",
    "uplink_lost",
    "deadline",
    "fault",
    "offline",
    "crash",
    "server_down",
    "corrupt",
    "corrupt_frame",
    "stale",
)
# Reasons that count toward RoundRecord.dropped_uploads: work that was
# selected/attempted and then lost.  "offline" clients never entered
# the round, mirroring how dropout-faulted absentees were never
# counted as drops.
COUNTED_DROP_REASONS = frozenset(
    {"downlink_lost", "uplink_lost", "deadline", "fault", "crash", "server_down"}
)
# Reasons assigned by the server's update validation: the payload
# arrived but was refused — ``corrupt`` by the numeric screen,
# ``corrupt_frame`` by the wire-frame CRC-32 integrity check, and
# ``stale`` by the replay/staleness serials.  Counted into
# RoundRecord.rejected_uploads.
REJECTED_DROP_REASONS = frozenset({"corrupt", "corrupt_frame", "stale"})
# Reasons that enter no RoundRecord tally: the client never joined the
# round (offline at selection time), so there is no upload to count as
# lost or rejected.  Together the three buckets partition DROP_REASONS
# — reprolint R303 keeps the partition disjoint and exhaustive.
UNCOUNTED_DROP_REASONS = frozenset({"offline"})


@dataclass(frozen=True)
class TraceEvent:
    """One observable simulator occurrence."""

    seq: int
    t: float
    type: str
    client: int | None = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical one-line JSON (byte-deterministic for a given run)."""
        obj = {"seq": self.seq, "t": self.t, "type": self.type}
        if self.client is not None:
            obj["client"] = self.client
        if self.data:
            obj["data"] = self.data
        return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonify)

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        obj = json.loads(line)
        return cls(
            seq=obj["seq"],
            t=obj["t"],
            type=obj["type"],
            client=obj.get("client"),
            data=obj.get("data", {}),
        )


def _jsonify(value):
    """Fallback serialiser for numpy scalars/arrays in event data."""
    if hasattr(value, "item") and getattr(value, "ndim", None) in (None, 0):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


class TraceSink:
    """Base class for trace consumers (duck typing suffices)."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; called by ``EventTrace.close``."""


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        from collections import deque

        self._buffer: Any = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(TraceSink):
    """Appends each event as one canonical JSON line.

    Accepts a path (opened/closed by the sink) or an open text file
    object (left open on ``close``).  Two runs of the same spec + seed
    produce byte-identical files.
    """

    def __init__(self, path_or_file: str | Path | IO[str]):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owns = False
        else:
            self._file = open(path_or_file, "w", encoding="utf-8")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._file.write(event.to_json() + "\n")

    def close(self) -> None:
        if self._owns:
            self._file.close()
        else:
            self._file.flush()


class EventTrace:
    """The telemetry bus: fan-out of typed events to pluggable sinks."""

    def __init__(self, sinks: Iterable[TraceSink] = ()):
        self._sinks: list[TraceSink] = list(sinks)
        self._seq = 0

    @property
    def enabled(self) -> bool:
        """Whether any sink is attached (emit is a no-op otherwise)."""
        return bool(self._sinks)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def emit(
        self, type: str, t: float, client: int | None = None, **data: Any
    ) -> None:
        """Publish one event to every sink."""
        if type not in EVENT_TYPES:
            raise ValueError(f"unknown trace event type {type!r}")
        if not self._sinks:
            return
        event = TraceEvent(seq=self._seq, t=float(t), type=type, client=client, data=data)
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "EventTrace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
