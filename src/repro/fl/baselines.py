"""Baseline FL methods the paper compares against.

Synchronous: FedAvg (McMahan et al.), FedAdam (Reddi et al.), FedProx
(Li et al.), SCAFFOLD (Karimireddy et al.).  Asynchronous: FedAsync
(Xie et al.) and FedBuff (Nguyen et al.).  All follow the reference
algorithms at the aggregation level; clients run plain local SGD
except where the method dictates otherwise (FedProx's proximal term,
SCAFFOLD's control-variate correction).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.fl.client import Client, ClientUpdate
from repro.fl.config import LocalTrainingConfig
from repro.fl.server import Server
from repro.fl.strategy import (
    AsyncStrategy,
    RoundContext,
    SyncStrategy,
    UploadPacket,
    weighted_average,
)
from repro.nn.optim import AdamVector

__all__ = [
    "FedAvg",
    "FedAvgM",
    "FedProx",
    "FedAdam",
    "Scaffold",
    "FedAsync",
    "FedBuff",
    "SYNC_BASELINES",
    "ASYNC_BASELINES",
]


class FedAvg(SyncStrategy):
    """Plain weighted averaging of client deltas."""

    name = "fedavg"


class FedProx(SyncStrategy):
    """FedAvg aggregation + client-side proximal term ``mu/2 ||w - w_g||^2``."""

    name = "fedprox"

    def __init__(self, participation_rate: float = 0.5, mu: float = 0.01):
        super().__init__(participation_rate)
        if mu <= 0:
            raise ValueError("FedProx requires mu > 0 (use FedAvg otherwise)")
        self.mu = mu

    def local_config(self, base: LocalTrainingConfig) -> LocalTrainingConfig:
        return replace(base, prox_mu=self.mu)


class FedAdam(SyncStrategy):
    """Server-side Adam over the negated average delta (Reddi et al. 2020)."""

    name = "fedadam"

    def __init__(
        self,
        participation_rate: float = 0.5,
        server_lr: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.99,
        eps: float = 1e-3,
    ):
        super().__init__(participation_rate)
        self.server_lr = server_lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._optimizer: AdamVector | None = None

    def prepare(self, server: Server, clients: list[Client]) -> None:
        self._optimizer = AdamVector(
            server.dim,
            lr=self.server_lr,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
        )

    def aggregate(
        self, server: Server, updates: list[ClientUpdate], context: RoundContext
    ) -> None:
        if not updates:
            return
        if self._optimizer is None:
            raise RuntimeError("FedAdam.prepare was not called")
        pseudo_grad = -weighted_average(updates)
        new_params = self._optimizer.step(server.params, pseudo_grad)
        # step() returns a fresh private vector, so the server can
        # adopt it without the defensive copy.
        server.set_params(new_params, copy=False)


class FedAvgM(SyncStrategy):
    """FedAvg with server momentum (Reddi et al. 2020's SGDm server).

    The server keeps a momentum buffer over the averaged client delta:
    ``v = beta * v + delta_avg``, ``w += server_lr * v``.
    """

    name = "fedavgm"

    def __init__(
        self,
        participation_rate: float = 0.5,
        server_lr: float = 1.0,
        beta: float = 0.9,
    ):
        super().__init__(participation_rate)
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        if not 0.0 <= beta < 1.0:
            raise ValueError("beta must be in [0, 1)")
        self.server_lr = server_lr
        self.beta = beta
        self._velocity: np.ndarray | None = None

    def prepare(self, server: Server, clients: list[Client]) -> None:
        self._velocity = np.zeros(server.dim, dtype=np.float64)

    def aggregate(
        self, server: Server, updates: list[ClientUpdate], context: RoundContext
    ) -> None:
        if not updates:
            return
        if self._velocity is None:
            raise RuntimeError("FedAvgM.prepare was not called")
        self._velocity = self.beta * self._velocity + weighted_average(updates)
        server.apply_delta(self.server_lr * self._velocity)


class Scaffold(SyncStrategy):
    """SCAFFOLD with option-II control variates.

    The server keeps a global control variate ``c``; each client keeps
    ``c_i`` (attached lazily by :meth:`client_train_kwargs` via
    ``Client.control_variate``).  Wire cost doubles in both directions
    because control variates travel with the model/update — reflected
    in :meth:`process_upload` and :meth:`downlink_bytes`.
    """

    name = "scaffold"

    def __init__(self, participation_rate: float = 0.5, server_lr: float = 1.0):
        super().__init__(participation_rate)
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        self.server_lr = server_lr
        self._control: np.ndarray | None = None
        self._num_clients = 0

    def prepare(self, server: Server, clients: list[Client]) -> None:
        self._control = np.zeros(server.dim, dtype=np.float64)
        self._num_clients = len(clients)

    def client_train_kwargs(self, client: Client) -> dict:
        if self._control is None:
            raise RuntimeError("Scaffold.prepare was not called")
        return {"server_control": self._control}

    def process_upload(
        self, client: Client, update: ClientUpdate, context: RoundContext
    ) -> UploadPacket:
        packet = super().process_upload(client, update, context)
        # The control-variate delta rides the same upload as a second
        # dense payload outside the model-delta frame.
        packet.extra_bytes += packet.frame.payload_nbytes
        return packet

    def downlink_bytes(self, server: Server) -> int:
        return 2 * super().downlink_bytes(server)  # model + server control

    def aggregate(
        self, server: Server, updates: list[ClientUpdate], context: RoundContext
    ) -> None:
        if not updates:
            return
        if self._control is None:
            raise RuntimeError("Scaffold.prepare was not called")
        mean_delta = np.mean([u.delta for u in updates], axis=0)
        server.apply_delta(self.server_lr * mean_delta)
        control_deltas = [
            u.extras["control_delta"] for u in updates if "control_delta" in u.extras
        ]
        if control_deltas:
            self._control += (len(control_deltas) / self._num_clients) * np.mean(
                control_deltas, axis=0
            )


class FedAsync(AsyncStrategy):
    """Fully asynchronous aggregation with polynomial staleness weighting.

    On receiving a client model trained from version ``v`` while the
    server is at version ``V``, mixes with weight
    ``alpha * (1 + V - v)^{-poly_a}`` (Xie et al. 2019).
    """

    name = "fedasync"

    def __init__(self, alpha: float = 0.6, poly_a: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if poly_a < 0:
            raise ValueError("poly_a must be non-negative")
        self.alpha = alpha
        self.poly_a = poly_a

    def effective_alpha(self, staleness: int) -> float:
        """Mixing weight after staleness discounting."""
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        return self.alpha * (1.0 + staleness) ** (-self.poly_a)

    def on_update(
        self,
        server: Server,
        update: ClientUpdate,
        delta: np.ndarray,
        staleness: int,
    ) -> bool:
        alpha = self.effective_alpha(staleness)
        base_params = update.extras["base_params"]
        client_model = base_params + delta
        server.set_params(
            (1.0 - alpha) * server.params + alpha * client_model, copy=False
        )
        return True


class FedBuff(AsyncStrategy):
    """Buffered asynchronous aggregation (Nguyen et al. 2022).

    Deltas accumulate (staleness-discounted) in a size-``buffer_size``
    buffer; when full, their mean is applied with ``server_lr`` and the
    buffer clears.
    """

    name = "fedbuff"

    def __init__(self, buffer_size: int = 3, server_lr: float = 1.0, poly_a: float = 0.5):
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        self.buffer_size = buffer_size
        self.server_lr = server_lr
        self.poly_a = poly_a
        self._buffer: list[np.ndarray] = []

    def prepare(self, server: Server, clients: list[Client]) -> None:
        self._buffer = []

    def on_update(
        self,
        server: Server,
        update: ClientUpdate,
        delta: np.ndarray,
        staleness: int,
    ) -> bool:
        discount = (1.0 + max(staleness, 0)) ** (-self.poly_a)
        self._buffer.append(discount * delta)
        if len(self._buffer) < self.buffer_size:
            return False
        aggregated = self.server_lr * np.mean(self._buffer, axis=0)
        self._buffer = []
        server.apply_delta(aggregated)
        return True


SYNC_BASELINES = {
    cls.name: cls for cls in (FedAvg, FedAvgM, FedProx, FedAdam, Scaffold)
}
ASYNC_BASELINES = {cls.name: cls for cls in (FedAsync, FedBuff)}
