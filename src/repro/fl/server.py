"""The FL server: global model state, evaluation, and history.

The server stores the global model as one flat vector (Eq. 1's ``w``)
plus the most recent aggregated *global delta* — the paper's ``g_hat``
(Eq. 6) that clients compare their local gradients against.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.sequential import Sequential

__all__ = ["Server"]


class Server:
    """Holds and evaluates the global model."""

    def __init__(
        self,
        model_fn: Callable[[], Sequential],
        test_set: Dataset,
        eval_batch: int = 256,
    ):
        self._model = model_fn()
        self.test_set = test_set
        self.eval_batch = eval_batch
        # get_flat_params returns the model's live backing buffer;
        # the server's vector must be an independent snapshot.
        self.params = self._model.get_flat_params().copy()
        self.global_delta: np.ndarray | None = None  # g_hat of Eq. 6
        self.version = 0  # bumps on every global model change
        self._loss_fn = SoftmaxCrossEntropy()

    @property
    def dim(self) -> int:
        return self.params.size

    def param_layout(self) -> list:
        """Per-parameter ``(name, offset, size)`` spans of the flat vector.

        Delegates to the architecture replica, so strategies can build
        layer-stratified :class:`~repro.nn.subspace.ParamSubspace`
        masks without touching any client's private model.
        """
        return self._model.param_layout()

    def apply_delta(self, delta: np.ndarray) -> None:
        """Advance the global model by an aggregated delta.

        Updates ``params`` in place — no O(d) allocation per round, and
        the buffer identity is stable across versions (callers holding
        a view see every update; callers needing a frozen pre-update
        vector must copy it themselves, as the validated-rollback path
        in the sync engine does).
        """
        if delta.shape != self.params.shape:
            raise ValueError("delta shape does not match global model")
        self.params += delta
        self.global_delta = delta
        self.version += 1

    def set_params(
        self, params: np.ndarray, record_delta: bool = True, copy: bool = True
    ) -> None:
        """Replace the global model, optionally recording the movement.

        ``copy=False`` adopts the caller's array directly — for callers
        that just built a private vector (optimiser steps, rollbacks)
        and would otherwise pay a redundant O(d) copy.  The caller must
        not mutate the array afterwards.
        """
        if params.shape != self.params.shape:
            raise ValueError("params shape mismatch")
        if record_delta:
            self.global_delta = params - self.params
        self.params = params.copy() if copy else params
        self.version += 1

    def evaluate(self) -> tuple[float, float]:
        """(accuracy, mean loss) of the current global model on the test set."""
        self._model.set_flat_params(self.params)
        n = len(self.test_set)
        correct = 0
        losses: list[float] = []
        for start in range(0, n, self.eval_batch):
            xb = self.test_set.x[start : start + self.eval_batch]
            yb = self.test_set.y[start : start + self.eval_batch]
            logits = self._model.forward(xb, training=False)
            correct += int((np.argmax(logits, axis=-1) == yb).sum())
            losses.append(self._loss_fn.forward(logits, yb) * xb.shape[0])
        return correct / n, float(np.sum(losses) / n)
