"""Synchronous FL engine — a barrier protocol on :class:`repro.sim.SimKernel`.

Implements the round structure of §III-A: every round the strategy
selects participants, each participant downloads the global model,
trains locally, and uploads its (possibly compressed) delta; the
server waits for all transfers, so the round takes
``max_i (download_i + compute_i + upload_i)`` seconds (Eq. 3).
Network loss, injected faults, and availability churn turn uploads
into *dropped* updates — the server aggregates whatever arrived.

All clocking, RNG streams, and transfer/compute accounting live in the
shared :class:`~repro.sim.SimKernel`; the engine emits the typed event
stream (:mod:`repro.sim.trace`) and reads its round records back from
the attached :class:`~repro.fl.metrics.MetricsReducer`, so metrics are
a pure reduction over the trace.

Resilience hooks (all off by default, preserving bit-identical
trajectories):

* ``chaos`` — a :class:`~repro.sim.FaultPlan`; crashed devices sit out
  rounds (and lose in-progress work when a crash lands mid-round),
  server outages stall round starts and reject arrivals, stale/
  duplicate effects delay uploads, and corruption damages payloads;
* ``config.downlink_retry`` / ``config.uplink_retry`` — per-leg
  :class:`~repro.sim.RetryPolicy` (default: the historical single
  attempt);
* ``config.validation`` — server-side screening with per-round
  ``rejected_uploads`` accounting and optional trimmed-mean fallback;
* ``snapshot_path`` — crash-safe run snapshots every
  ``snapshot_every`` rounds, resumable via :mod:`repro.fl.snapshot`
  with a bit-identical continuation.

The engine is strategy-agnostic: FedAvg and AdaFL run through exactly
the same loop, differing only in the :class:`~repro.fl.strategy.SyncStrategy`
hooks they implement.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fl.batched import train_clients_batched
from repro.fl.client import Client
from repro.fl.config import FederationConfig
from repro.fl.faults import FaultInjector
from repro.fl.metrics import MetricsReducer, RunResult
from repro.fl.population import ClientPopulation
from repro.fl.server import Server
from repro.fl.strategy import RoundContext, SyncStrategy
from repro.fl.validation import UpdateValidator, trimmed_mean, verify_frame
from repro.network.conditions import NetworkConditions
from repro.transport.base import PeerGone
from repro.sim import (
    AGGREGATED,
    DROPPED,
    EVALUATED,
    EventTrace,
    FaultPlan,
    HALTED,
    RetryPolicy,
    RUN_END,
    RUN_START,
    SELECTED,
    SimKernel,
)

__all__ = ["SyncEngine"]


class SyncEngine:
    """Runs a synchronous federated training session."""

    def __init__(
        self,
        server: Server,
        clients: "list[Client] | ClientPopulation",
        strategy: SyncStrategy,
        config: FederationConfig,
        network: NetworkConditions | None = None,
        faults: FaultInjector | None = None,
        device_flops: np.ndarray | None = None,
        churn=None,
        chaos: FaultPlan | None = None,
        trace: EventTrace | None = None,
        snapshot_path=None,
        snapshot_every: int | None = None,
        on_snapshot=None,
        transport=None,
    ):
        # A remote transport owns the client processes; its population
        # facade replaces any clients argument.  In-memory transports
        # (None or InMemoryTransport) keep the historical path exactly.
        self._transport = transport
        self._remote = bool(transport is not None and getattr(transport, "remote", False))
        if self._remote:
            if snapshot_path is not None:
                raise ValueError(
                    "snapshots are not supported over a remote transport "
                    "(worker-side client state is not reachable)"
                )
            self.clients = ClientPopulation.ensure(transport.population())
        else:
            if clients is None or not len(clients):
                raise ValueError("need at least one client")
            # The engine resolves every client through the population
            # registry; a plain list becomes the always-live compat wrapper.
            self.clients = ClientPopulation.ensure(clients)
        self.server = server
        self.strategy = strategy
        self.config = config
        self.faults = faults if faults is not None else FaultInjector()
        self._churn = churn
        self._chaos = chaos
        if chaos is not None:
            chaos.bind(config.seed, len(self.clients))
        self._validator = (
            UpdateValidator(config.validation) if config.validation is not None else None
        )
        self._dl_policy = config.downlink_retry or RetryPolicy.single()
        self._ul_policy = config.uplink_retry or RetryPolicy.single()
        self._kernel = SimKernel(
            seed=config.seed,
            num_clients=len(self.clients),
            network=network,
            device_flops=device_flops,
            trace=trace,
        )
        self.network = self._kernel.network
        self.device_flops = self._kernel.device_flops
        self._rng = self._kernel.rng
        self._trace = self._kernel.trace
        self._reducer = self._trace.add_sink(MetricsReducer())
        if transport is not None:
            # Reconnect jitter draws from the kernel's named streams
            # and drops surface on the engine's trace bus.
            transport.bind_kernel(self._kernel, self._trace)
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every if snapshot_every is not None else 1
        self._on_snapshot = on_snapshot
        self._next_round = 0  # first round iter_rounds() will execute
        # Reused MultiClientTrainer instances, keyed by cohort+config
        # (see repro.fl.batched).  Session-local: deliberately excluded
        # from snapshot_state, a resumed engine rebuilds on first use.
        self._batched_cache: dict = {}
        # The trainer cache holds references into client models; when
        # the registry evicts a client those references go stale, so
        # the eviction watcher drops the affected cohorts.  Watchers
        # are transient — re-registered here on every (re)construction.
        self.clients.on_evict(self._on_client_evicted)

    def _on_client_evicted(self, cid: int) -> None:
        if self._batched_cache:
            dead = [k for k in self._batched_cache if cid in k[0]]
            for k in dead:
                del self._batched_cache[k]

    @property
    def sim_time_s(self) -> float:
        """Simulated seconds elapsed (the kernel clock)."""
        return self._kernel.now

    @property
    def trace(self) -> EventTrace:
        """The engine's telemetry bus (attach sinks before ``run``)."""
        return self._trace

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute ``config.num_rounds`` rounds and return the metrics."""
        result = self.new_result()
        for record in self.iter_rounds():
            result.records.append(record)
        return result

    def resume(self) -> RunResult:
        """Finish a snapshotted run; the result covers the *whole* run."""
        for _ in self.iter_rounds():
            pass
        return self._reducer.result()

    def new_result(self) -> RunResult:
        """An empty :class:`RunResult` wired for this engine."""
        return RunResult(
            method=self.strategy.name,
            num_clients=len(self.clients),
            model_bytes=self.strategy.encode_model(self.server).payload_nbytes,
        )

    def iter_rounds(self):
        """Yield one :class:`RoundRecord` per round as training progresses.

        Lets callers observe (or interleave work with) the federation
        round by round; ``run`` is a thin wrapper over this.  A resumed
        engine continues from its snapshotted round with no re-prepare
        and no fresh ``run_start`` event.
        """
        local_cfg = self.strategy.local_config(self.config.local)
        if self._next_round == 0:
            self.strategy.prepare(self.server, self.clients)
            self._trace.emit(
                RUN_START,
                self.sim_time_s,
                mode="sync",
                method=self.strategy.name,
                num_clients=len(self.clients),
                model_bytes=self.strategy.encode_model(self.server).payload_nbytes,
            )
        for round_index in range(self._next_round, self.config.num_rounds):
            record = self._run_round(round_index, local_cfg)
            if (round_index + 1) % self.config.eval_every == 0:
                accuracy, loss = self.server.evaluate()
                self._trace.emit(
                    EVALUATED, self.sim_time_s, accuracy=accuracy, loss=loss
                )
            self._next_round = round_index + 1
            if (
                self.snapshot_path is not None
                and (round_index + 1) % self.snapshot_every == 0
            ):
                self._write_snapshot()
            yield record
        self._trace.emit(RUN_END, self.sim_time_s, rounds=self.config.num_rounds)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _write_snapshot(self) -> None:
        from repro.fl.snapshot import save_snapshot

        save_snapshot(self, self.snapshot_path)
        if self._on_snapshot is not None:
            self._on_snapshot(self)

    def snapshot_state(self) -> dict:
        """Everything needed to rebuild this engine mid-run (pickle-safe)."""
        from repro.fl.snapshot import kernel_state

        return {
            "mode": "sync",
            "server": self.server,
            "clients": self.clients,
            "strategy": self.strategy,
            "config": self.config,
            "faults": self.faults,
            "chaos": self._chaos,
            "churn": self._churn,
            "network": self.network,
            "device_flops": self.device_flops,
            "validator": self._validator,
            "kernel": kernel_state(self._kernel),
            "trace_seq": self._trace._seq,
            "reducer": self._reducer,
            "extra": {"next_round": self._next_round},
        }

    def restore_extra(self, extra: dict) -> None:
        """Engine-specific state counterpart of ``snapshot_state``."""
        self._next_round = int(extra["next_round"])

    # ------------------------------------------------------------------
    def _retry_rng(self, cid: int, policy: RetryPolicy):
        """Jitter stream for retries; None keeps the schedule exact."""
        if policy.jitter_frac <= 0.0:
            return None
        return self._kernel.stream("retry", cid)

    def _drop_transport_crash(self, t: float, cid: int, exc: PeerGone) -> None:
        """Terminal drop: the owning worker process is unreachable."""
        self._trace.emit(
            DROPPED,
            t,
            cid,
            reason="crash",
            cause="transport",
            terminal=True,
            attempts=exc.attempts,
        )

    def _upload_result(self, client, delivered: bool, context) -> None:
        """ACK/NACK the strategy, tolerating a dead remote peer.

        A NACK triggers AdaFL's residual restore — a worker RPC for
        remote clients.  If the worker died in the meantime the
        restore is moot (its residual state is gone with it); the
        death itself surfaces as drops through the liveness sweep, so
        double-counting here would skew the taxonomy.
        """
        try:
            self.strategy.on_upload_result(client, delivered, context)
        except PeerGone:
            pass

    def _available_ids(self, round_index: int, t0: float, crash) -> list[int]:
        """Ids that can open this round (availability gates only).

        The fault-free fast path returns the registry's cached id list
        — O(1), never an O(population) Python loop; descriptor checks
        only run when churn/crash/fault models are actually attached.
        """
        if (
            self._churn is None
            and crash is None
            and self.faults.trivially_available
        ):
            return self.clients.all_ids()
        available = []
        for cid in self.clients.ids():
            if self._churn is not None and not self._churn.is_online(cid, t0):
                self._trace.emit(DROPPED, t0, cid, reason="offline", cause="churn")
                continue
            if crash is not None and crash.is_down(cid, t0):
                self._trace.emit(DROPPED, t0, cid, reason="offline", cause="crash")
                continue
            if not self.faults.available(cid, round_index):
                self._trace.emit(DROPPED, t0, cid, reason="offline", cause="fault")
                continue
            available.append(cid)
        return available

    def _run_round(self, round_index: int, local_cfg):
        chaos = self._chaos
        crash = chaos.crash if chaos is not None else None
        stale = chaos.stale if chaos is not None else None
        corruption = chaos.corruption if chaos is not None else None
        outage = chaos.outage if chaos is not None else None

        if outage is not None and outage.is_down(self.sim_time_s):
            # The server itself is dark: the round cannot open until it
            # is back.  No client work is dispatched in the meantime.
            resume = outage.next_up(self.sim_time_s)
            self._trace.emit(
                HALTED, self.sim_time_s, cause="server_down", until=resume
            )
            self._kernel.advance_to(resume)

        t0 = self.sim_time_s
        context = RoundContext(
            round_index=round_index,
            sim_time_s=t0,
            server=self.server,
            clients=self.clients,
            network=self.network,
            local_config=local_cfg,
            trace=self._trace,
            kernel=self._kernel,
        )
        available = self._available_ids(round_index, t0, crash)
        if self._remote:
            # Liveness sweep before selection: clients owned by dead
            # worker processes are unreachable this round (UNCOUNTED —
            # they were never selected, like churn offline).
            self._transport.heartbeat()
            down = self._transport.down_cids()
            if down:
                kept = []
                for cid in available:
                    if cid in down:
                        self._trace.emit(
                            DROPPED, t0, cid, reason="offline", cause="transport"
                        )
                    else:
                        kept.append(cid)
                available = kept
        while True:
            try:
                selected = self.strategy.select(available, self._rng, context)
                break
            except PeerGone as exc:
                # A worker died while the strategy probed its clients
                # (AdaFL's scoring touches every available client).
                # Terminal for the client, then re-select among
                # survivors — fault-path only, never under chaos=None.
                if exc.cid is not None:
                    self._trace.emit(
                        DROPPED,
                        t0,
                        exc.cid,
                        reason="crash",
                        cause="transport",
                        terminal=True,
                        attempts=exc.attempts,
                    )
                down = self._transport.down_cids()
                available = [cid for cid in available if cid not in down]
        self.clients.note_seen(selected, round_index)
        self._trace.emit(
            SELECTED, t0, round=round_index, clients=list(selected), available=available
        )

        delivered = []
        durations: list[float] = [0.0]
        deadline = self.config.round_deadline_s

        # Fused barrier-phase training: with no network model every
        # selected client is guaranteed to receive the broadcast and
        # train, so the whole cohort can run through the batched kernel
        # up front.  (With a network, downlink losses draw from the
        # shared kernel RNG inside the loop below, so pre-training
        # would have to guess which clients participate; the serial
        # path keeps the draw order exact.)  Compute-time accounting
        # stays per-client and the trace is unchanged.
        batched = None
        if (
            self.config.batched_compute
            and self.network is None
            and len(selected) > 1
            and not self._remote
        ):
            kwargs_by = {
                cid: self.strategy.client_train_kwargs(self.clients[cid])
                for cid in selected
            }
            batched = train_clients_batched(
                [self.clients[cid] for cid in selected],
                self.server.params,
                local_cfg,
                round_index=round_index,
                kwargs_by_cid=kwargs_by,
                cache=self._batched_cache,
            )
        elif self._remote and self.network is None and len(selected) > 1:
            # The remote analogue of batched compute: pipeline the
            # whole cohort's train requests so worker processes run in
            # parallel; the loop below consumes replies in the exact
            # serial order.  Only safe with no network model — with one,
            # downlink losses decide who trains, and pre-training a
            # client the in-memory run would skip advances its RNG and
            # forks the trajectory.
            kwargs_by = {
                cid: self.strategy.client_train_kwargs(self.clients[cid])
                for cid in selected
            }
            self._transport.prefetch_train(
                selected, self.server.params, round_index, kwargs_by
            )

        # One model-frame encode serves every participant this round;
        # the charged bytes stay the strategy's downlink size (frame
        # payload plus any side channel), the full framed length rides
        # in the event data.
        model_frame = self.strategy.encode_model(self.server)
        model_bytes = self.strategy.downlink_bytes(self.server)
        down_extra = {
            "codec": "none",
            "frame_len": len(model_frame) + (model_bytes - model_frame.payload_nbytes),
        }
        for cid in selected:
            client = self.clients[cid]

            # -- downlink (per-attempt charging, policy-driven retries) --
            attempt = 1
            down_s = 0.0  # elapsed downlink time relative to t0
            lost = False
            while True:
                down = self._kernel.downlink(
                    cid, model_bytes, t0 + down_s, extra=down_extra
                )
                down_s = down_s + down.duration_s
                if down.delivered:
                    break
                if self._dl_policy.exhausted(attempt):
                    # Client never received the round's model: it sits
                    # the round out (terminal drop).
                    data = (
                        {"terminal": True, "attempts": attempt}
                        if self._dl_policy.max_attempts > 1
                        else {}
                    )
                    self._trace.emit(
                        DROPPED, t0 + down_s, cid, reason="downlink_lost", **data
                    )
                    durations.append(down_s)
                    lost = True
                    break
                self._trace.emit(
                    DROPPED, t0 + down_s, cid, reason="downlink_lost", attempt=attempt
                )
                down_s = down_s + self._dl_policy.backoff_s(
                    attempt, down.duration_s, self._retry_rng(cid, self._dl_policy)
                )
                attempt += 1
            if lost:
                continue

            if batched is not None:
                update = batched[cid]
            else:
                kwargs = self.strategy.client_train_kwargs(client)
                try:
                    update = client.local_train(
                        self.server.params, local_cfg, round_index=round_index, **kwargs
                    )
                except PeerGone as exc:
                    self._drop_transport_crash(t0 + down_s, cid, exc)
                    durations.append(down_s)
                    continue
            compute_s = self._kernel.compute(cid, update.flops, t0 + down_s)

            if crash is not None:
                crash_t = crash.crash_in(cid, t0, t0 + down_s + compute_s)
                if crash_t is not None:
                    # The device died mid-round: its in-progress work is
                    # lost and it will rejoin once restarted.
                    restart = crash.next_up(cid, crash_t)
                    self._trace.emit(
                        DROPPED, crash_t, cid, reason="crash", until=restart
                    )
                    durations.append(crash_t - t0)
                    continue

            try:
                packet = self.strategy.process_upload(client, update, context)
            except PeerGone as exc:
                # The worker died between training and upload encoding
                # (compression is a worker-side RPC for remote clients).
                self._drop_transport_crash(t0 + down_s + compute_s, cid, exc)
                durations.append(down_s + compute_s)
                continue
            if self._validator is not None:
                self._validator.stamp(update)
            delta = packet.delta
            frame_bytes = packet.frame.to_bytes()
            up_bytes = packet.nbytes
            up_extra = {"codec": packet.frame_codec, "frame_len": packet.wire_nbytes}

            # -- uplink (policy-driven retries) --
            attempt = 1
            extra_s = 0.0  # failed attempts + backoff before the last try
            lost = False
            while True:
                up = self._kernel.uplink(
                    cid, up_bytes, t0 + down_s + compute_s + extra_s, extra=up_extra
                )
                if up.delivered or self._ul_policy.exhausted(attempt):
                    lost = not up.delivered
                    break
                self._trace.emit(
                    DROPPED,
                    t0 + down_s + compute_s + extra_s + up.duration_s,
                    cid,
                    reason="uplink_lost",
                    attempt=attempt,
                )
                extra_s = extra_s + up.duration_s + self._ul_policy.backoff_s(
                    attempt, up.duration_s, self._retry_rng(cid, self._ul_policy)
                )
                attempt += 1
            total_s = down_s + compute_s + up.duration_s + extra_s

            stale_dup = False
            if stale is not None and not lost:
                stale_delay, stale_dup = stale.upload_effects(cid)
                total_s += stale_delay

            if deadline is not None and total_s > deadline:
                # §III-A max-wait-time policy: the server closes the
                # round at the deadline and discards the late update.
                durations.append(deadline)
                self._trace.emit(DROPPED, t0 + deadline, cid, reason="deadline")
                self._upload_result(client, False, context)
                continue
            durations.append(total_s)

            if lost:
                data = (
                    {"terminal": True, "attempts": attempt}
                    if self._ul_policy.max_attempts > 1
                    else {}
                )
                self._trace.emit(
                    DROPPED, t0 + total_s, cid, reason="uplink_lost", **data
                )
                self._upload_result(client, False, context)
                continue
            if self.faults.upload_lost(cid, self._rng):
                self._trace.emit(DROPPED, t0 + total_s, cid, reason="fault")
                self._upload_result(client, False, context)
                continue
            if outage is not None and outage.is_down(t0 + total_s):
                # The update arrived while the server was unreachable.
                self._trace.emit(
                    DROPPED,
                    t0 + total_s,
                    cid,
                    reason="server_down",
                    until=outage.next_up(t0 + total_s),
                )
                self._upload_result(client, False, context)
                continue
            self._upload_result(client, True, context)

            if corruption is not None:
                delta, tampered = corruption.corrupt_upload(cid, delta, frame_bytes)
                if tampered is not None:
                    frame_bytes = tampered
            # Server receipt: the frame's CRC-32 is checked before the
            # payload is trusted — a bit flipped in flight surfaces here
            # as a ``corrupt_frame`` rejection, never as silent noise.
            frame_reason = verify_frame(frame_bytes)
            if frame_reason is not None:
                self._trace.emit(DROPPED, t0 + total_s, cid, reason=frame_reason)
                continue
            update.delta = delta  # server sees the decompressed delta
            if packet.subspace is not None:
                # Masked aggregation needs to know which coordinates the
                # delta actually covers (sub-model uploads).
                update.extras["subspace"] = packet.subspace
            delivered.append(update)
            if stale_dup:
                # The transport delivered the same upload twice; the
                # duplicate shares the original's serial stamp.
                delivered.append(update)

        # Synchronous barrier: the round lasts as long as its slowest
        # participant (Eq. 3), capped by the server's deadline if set.
        round_time = max(durations)
        if deadline is not None:
            round_time = min(round_time, deadline)
        t_close = t0 + round_time

        # Quorum gate: a round that lost too many participants (worker
        # crashes, partitions) is voided rather than aggregated from a
        # skewed sliver of the cohort.
        quorum_missed = False
        if self.config.quorum_frac is not None and selected:
            needed = max(1, math.ceil(self.config.quorum_frac * len(selected)))
            if len({u.client_id for u in delivered}) < needed:
                delivered = []
                quorum_missed = True

        if self._validator is None:
            accepted = delivered
            self.strategy.aggregate(self.server, delivered, context)
        else:
            accepted = self._aggregate_validated(delivered, context, t_close)

        self._kernel.advance_to(t_close)
        quorum_extra = {"quorum_missed": True} if quorum_missed else {}
        self._trace.emit(
            AGGREGATED,
            self.sim_time_s,
            round=round_index,
            participants=[u.client_id for u in accepted],
            **quorum_extra,
        )
        # Barrier closed: trim materialised clients back to the
        # retention cap (no-op on the always-live compat path).
        self.clients.evict_to_cap()
        return self._reducer.records[-1]

    # ------------------------------------------------------------------
    def _aggregate_validated(self, delivered, context, t_close):
        """Screen deliveries, aggregate survivors, report rejections.

        Fast path (deferred mode, nothing pre-rejected): aggregate
        optimistically, screen the single resulting model — one O(d)
        pass per round — and only on a hit hunt the culprits, roll the
        server back, and re-fold the survivors.
        """
        v = self._validator
        cfg = v.config
        accepted, rejected = [], []
        for u in delivered:
            reason = v.check_replay(u)
            if reason is None and cfg.per_update_screen:
                reason = v.screen(u.delta)
            if reason is None:
                accepted.append(u)
            else:
                rejected.append((u, reason))

        if not rejected and not cfg.per_update_screen and accepted:
            # ``apply_delta`` updates ``server.params`` in place, so the
            # pre-aggregation vector must be copied to roll back — one
            # O(d) copy per validated round, inside the <5% budget.
            before_params = self.server.params.copy()
            before_delta = self.server.global_delta
            before_version = self.server.version
            self.strategy.aggregate(self.server, accepted, context)
            if (
                self.server.version == before_version
                or not v.screen_aggregate(self.server.params)
            ):
                return accepted
            survivors, culprits = [], []
            for u in accepted:
                (culprits if v.screen(u.delta) else survivors).append(u)
            if not culprits:
                # The strategy went non-finite on clean inputs — an
                # optimisation blow-up, not a bad payload; keep it.
                return accepted
            self.server.params = before_params
            self.server.global_delta = before_delta
            self.server.version = before_version
            accepted = survivors
            rejected = [(u, "corrupt") for u in culprits]
        elif rejected and not cfg.per_update_screen and accepted:
            # Deferred mode with pre-rejections (replays): screen the
            # rest individually before folding them in.
            survivors = []
            for u in accepted:
                reason = v.screen(u.delta)
                if reason is None:
                    survivors.append(u)
                else:
                    rejected.append((u, reason))
            accepted = survivors

        for u, reason in rejected:
            self._trace.emit(DROPPED, t_close, u.client_id, reason=reason)
        if rejected and cfg.trimmed_mean_fallback and accepted:
            # Robust fallback: corruption slipped past at least one
            # screen this round, so distrust the survivors too.
            self.server.apply_delta(
                trimmed_mean([u.delta for u in accepted], cfg.trim_ratio)
            )
        else:
            self.strategy.aggregate(self.server, accepted, context)
        return accepted
