"""Synchronous FL engine.

Implements the round structure of §III-A: every round the strategy
selects participants, each participant downloads the global model,
trains locally, and uploads its (possibly compressed) delta; the
server waits for all transfers, so the round takes
``max_i (download_i + compute_i + upload_i)`` seconds (Eq. 3).
Network loss and injected faults turn uploads into *dropped* updates —
the server aggregates whatever arrived.

The engine is strategy-agnostic: FedAvg and AdaFL run through exactly
the same loop, differing only in the :class:`~repro.fl.strategy.SyncStrategy`
hooks they implement.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import dense_bytes
from repro.fl.client import Client
from repro.fl.config import FederationConfig
from repro.fl.faults import FaultInjector
from repro.fl.metrics import RoundRecord, RunResult
from repro.fl.server import Server
from repro.fl.strategy import RoundContext, SyncStrategy
from repro.network.conditions import NetworkConditions

__all__ = ["SyncEngine"]

_DEFAULT_DEVICE_FLOPS = 2e9  # workstation-class sustained FLOP/s


class SyncEngine:
    """Runs a synchronous federated training session."""

    def __init__(
        self,
        server: Server,
        clients: list[Client],
        strategy: SyncStrategy,
        config: FederationConfig,
        network: NetworkConditions | None = None,
        faults: FaultInjector | None = None,
        device_flops: np.ndarray | None = None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        if network is not None and len(network) != len(clients):
            raise ValueError("network must describe exactly one endpoint per client")
        if device_flops is not None and len(device_flops) != len(clients):
            raise ValueError("device_flops must have one entry per client")
        self.server = server
        self.clients = clients
        self.strategy = strategy
        self.config = config
        self.network = network
        self.faults = faults if faults is not None else FaultInjector()
        self.device_flops = (
            np.asarray(device_flops, dtype=np.float64)
            if device_flops is not None
            else np.full(len(clients), _DEFAULT_DEVICE_FLOPS)
        )
        if np.any(self.device_flops <= 0):
            raise ValueError("device compute rates must be positive")
        self._rng = np.random.default_rng(config.seed)
        self.sim_time_s = 0.0

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute ``config.num_rounds`` rounds and return the metrics."""
        result = self.new_result()
        for record in self.iter_rounds():
            result.records.append(record)
        return result

    def new_result(self) -> RunResult:
        """An empty :class:`RunResult` wired for this engine."""
        return RunResult(
            method=self.strategy.name,
            num_clients=len(self.clients),
            model_bytes=dense_bytes(self.server.dim),
        )

    def iter_rounds(self):
        """Yield one :class:`RoundRecord` per round as training progresses.

        Lets callers observe (or interleave work with) the federation
        round by round; ``run`` is a thin wrapper over this.
        """
        self.strategy.prepare(self.server, self.clients)
        local_cfg = self.strategy.local_config(self.config.local)
        for round_index in range(self.config.num_rounds):
            record = self._run_round(round_index, local_cfg)
            if (round_index + 1) % self.config.eval_every == 0:
                accuracy, loss = self.server.evaluate()
                record.accuracy = accuracy
                record.loss = loss
            yield record

    # ------------------------------------------------------------------
    def _run_round(self, round_index: int, local_cfg) -> RoundRecord:
        context = RoundContext(
            round_index=round_index,
            sim_time_s=self.sim_time_s,
            server=self.server,
            clients=self.clients,
            network=self.network,
            local_config=local_cfg,
        )
        available = [
            c.client_id
            for c in self.clients
            if self.faults.available(c.client_id, round_index)
        ]
        selected = self.strategy.select(available, self._rng, context)

        delivered = []
        bytes_up = 0
        bytes_down = 0
        upload_sizes: list[int] = []
        dropped = 0
        durations: list[float] = [0.0]

        model_bytes = self.strategy.downlink_bytes(self.server)
        for cid in selected:
            client = self.clients[cid]
            down_s, down_ok = self._transfer_down(cid, model_bytes)
            bytes_down += model_bytes
            if not down_ok:
                # Client never received the round's model: silent dropout.
                dropped += 1
                durations.append(down_s)
                continue

            kwargs = self.strategy.client_train_kwargs(client)
            update = client.local_train(
                self.server.params, local_cfg, round_index=round_index, **kwargs
            )
            compute_s = update.flops / self.device_flops[cid]

            delta, up_bytes = self.strategy.process_upload(client, update, context)
            up_s, up_ok = self._transfer_up(cid, up_bytes, down_s + compute_s)
            total_s = down_s + compute_s + up_s

            deadline = self.config.round_deadline_s
            if deadline is not None and total_s > deadline:
                # §III-A max-wait-time policy: the server closes the
                # round at the deadline and discards the late update.
                durations.append(deadline)
                dropped += 1
                self.strategy.on_upload_result(client, False, context)
                continue
            durations.append(total_s)

            if not up_ok or self.faults.upload_lost(cid, self._rng):
                dropped += 1
                self.strategy.on_upload_result(client, False, context)
                continue
            self.strategy.on_upload_result(client, True, context)

            bytes_up += up_bytes
            upload_sizes.append(up_bytes)
            update.delta = delta  # server sees the decompressed delta
            delivered.append(update)

        self.strategy.aggregate(self.server, delivered, context)
        # Synchronous barrier: the round lasts as long as its slowest
        # participant (Eq. 3), capped by the server's deadline if set.
        round_time = max(durations)
        if self.config.round_deadline_s is not None:
            round_time = min(round_time, self.config.round_deadline_s)
        self.sim_time_s += round_time

        return RoundRecord(
            round_index=round_index,
            sim_time_s=self.sim_time_s,
            num_uploads=len(delivered),
            bytes_up=bytes_up,
            bytes_down=bytes_down,
            participants=[u.client_id for u in delivered],
            upload_sizes=upload_sizes,
            dropped_uploads=dropped,
        )

    # ------------------------------------------------------------------
    def _transfer_down(self, cid: int, num_bytes: int) -> tuple[float, bool]:
        if self.network is None:
            return 0.0, True
        res = self.network[cid].receive_model(num_bytes, self.sim_time_s, self._rng)
        return res.duration_s, res.delivered

    def _transfer_up(self, cid: int, num_bytes: int, offset_s: float) -> tuple[float, bool]:
        if self.network is None:
            return 0.0, True
        res = self.network[cid].send_update(
            num_bytes, self.sim_time_s + offset_s, self._rng
        )
        return res.duration_s, res.delivered
