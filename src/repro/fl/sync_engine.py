"""Synchronous FL engine — a barrier protocol on :class:`repro.sim.SimKernel`.

Implements the round structure of §III-A: every round the strategy
selects participants, each participant downloads the global model,
trains locally, and uploads its (possibly compressed) delta; the
server waits for all transfers, so the round takes
``max_i (download_i + compute_i + upload_i)`` seconds (Eq. 3).
Network loss, injected faults, and availability churn turn uploads
into *dropped* updates — the server aggregates whatever arrived.

All clocking, RNG streams, and transfer/compute accounting live in the
shared :class:`~repro.sim.SimKernel`; the engine emits the typed event
stream (:mod:`repro.sim.trace`) and reads its round records back from
the attached :class:`~repro.fl.metrics.MetricsReducer`, so metrics are
a pure reduction over the trace.

The engine is strategy-agnostic: FedAvg and AdaFL run through exactly
the same loop, differing only in the :class:`~repro.fl.strategy.SyncStrategy`
hooks they implement.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import dense_bytes
from repro.fl.client import Client
from repro.fl.config import FederationConfig
from repro.fl.faults import FaultInjector
from repro.fl.metrics import MetricsReducer, RunResult
from repro.fl.server import Server
from repro.fl.strategy import RoundContext, SyncStrategy
from repro.network.conditions import NetworkConditions
from repro.sim import (
    AGGREGATED,
    DROPPED,
    EVALUATED,
    EventTrace,
    RUN_END,
    RUN_START,
    SELECTED,
    SimKernel,
)

__all__ = ["SyncEngine"]


class SyncEngine:
    """Runs a synchronous federated training session."""

    def __init__(
        self,
        server: Server,
        clients: list[Client],
        strategy: SyncStrategy,
        config: FederationConfig,
        network: NetworkConditions | None = None,
        faults: FaultInjector | None = None,
        device_flops: np.ndarray | None = None,
        churn=None,
        trace: EventTrace | None = None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.server = server
        self.clients = clients
        self.strategy = strategy
        self.config = config
        self.faults = faults if faults is not None else FaultInjector()
        self._churn = churn
        self._kernel = SimKernel(
            seed=config.seed,
            num_clients=len(clients),
            network=network,
            device_flops=device_flops,
            trace=trace,
        )
        self.network = self._kernel.network
        self.device_flops = self._kernel.device_flops
        self._rng = self._kernel.rng
        self._trace = self._kernel.trace
        self._reducer = self._trace.add_sink(MetricsReducer())

    @property
    def sim_time_s(self) -> float:
        """Simulated seconds elapsed (the kernel clock)."""
        return self._kernel.now

    @property
    def trace(self) -> EventTrace:
        """The engine's telemetry bus (attach sinks before ``run``)."""
        return self._trace

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute ``config.num_rounds`` rounds and return the metrics."""
        result = self.new_result()
        for record in self.iter_rounds():
            result.records.append(record)
        return result

    def new_result(self) -> RunResult:
        """An empty :class:`RunResult` wired for this engine."""
        return RunResult(
            method=self.strategy.name,
            num_clients=len(self.clients),
            model_bytes=dense_bytes(self.server.dim),
        )

    def iter_rounds(self):
        """Yield one :class:`RoundRecord` per round as training progresses.

        Lets callers observe (or interleave work with) the federation
        round by round; ``run`` is a thin wrapper over this.
        """
        self.strategy.prepare(self.server, self.clients)
        local_cfg = self.strategy.local_config(self.config.local)
        self._trace.emit(
            RUN_START,
            self.sim_time_s,
            mode="sync",
            method=self.strategy.name,
            num_clients=len(self.clients),
            model_bytes=dense_bytes(self.server.dim),
        )
        for round_index in range(self.config.num_rounds):
            record = self._run_round(round_index, local_cfg)
            if (round_index + 1) % self.config.eval_every == 0:
                accuracy, loss = self.server.evaluate()
                self._trace.emit(
                    EVALUATED, self.sim_time_s, accuracy=accuracy, loss=loss
                )
            yield record
        self._trace.emit(RUN_END, self.sim_time_s, rounds=self.config.num_rounds)

    # ------------------------------------------------------------------
    def _run_round(self, round_index: int, local_cfg):
        t0 = self.sim_time_s
        context = RoundContext(
            round_index=round_index,
            sim_time_s=t0,
            server=self.server,
            clients=self.clients,
            network=self.network,
            local_config=local_cfg,
            trace=self._trace,
        )
        available = []
        for c in self.clients:
            cid = c.client_id
            if self._churn is not None and not self._churn.is_online(cid, t0):
                self._trace.emit(DROPPED, t0, cid, reason="offline", cause="churn")
                continue
            if not self.faults.available(cid, round_index):
                self._trace.emit(DROPPED, t0, cid, reason="offline", cause="fault")
                continue
            available.append(cid)
        selected = self.strategy.select(available, self._rng, context)
        self._trace.emit(
            SELECTED, t0, round=round_index, clients=list(selected), available=available
        )

        delivered = []
        durations: list[float] = [0.0]
        deadline = self.config.round_deadline_s

        model_bytes = self.strategy.downlink_bytes(self.server)
        for cid in selected:
            client = self.clients[cid]
            down = self._kernel.downlink(cid, model_bytes, t0)
            if not down.delivered:
                # Client never received the round's model: silent dropout.
                self._trace.emit(
                    DROPPED, t0 + down.duration_s, cid, reason="downlink_lost"
                )
                durations.append(down.duration_s)
                continue

            kwargs = self.strategy.client_train_kwargs(client)
            update = client.local_train(
                self.server.params, local_cfg, round_index=round_index, **kwargs
            )
            compute_s = self._kernel.compute(cid, update.flops, t0 + down.duration_s)

            delta, up_bytes = self.strategy.process_upload(client, update, context)
            up = self._kernel.uplink(
                cid, up_bytes, t0 + down.duration_s + compute_s
            )
            total_s = down.duration_s + compute_s + up.duration_s

            if deadline is not None and total_s > deadline:
                # §III-A max-wait-time policy: the server closes the
                # round at the deadline and discards the late update.
                durations.append(deadline)
                self._trace.emit(DROPPED, t0 + deadline, cid, reason="deadline")
                self.strategy.on_upload_result(client, False, context)
                continue
            durations.append(total_s)

            if not up.delivered or self.faults.upload_lost(cid, self._rng):
                reason = "uplink_lost" if not up.delivered else "fault"
                self._trace.emit(DROPPED, t0 + total_s, cid, reason=reason)
                self.strategy.on_upload_result(client, False, context)
                continue
            self.strategy.on_upload_result(client, True, context)

            update.delta = delta  # server sees the decompressed delta
            delivered.append(update)

        self.strategy.aggregate(self.server, delivered, context)
        # Synchronous barrier: the round lasts as long as its slowest
        # participant (Eq. 3), capped by the server's deadline if set.
        round_time = max(durations)
        if deadline is not None:
            round_time = min(round_time, deadline)
        self._kernel.advance_to(t0 + round_time)
        self._trace.emit(
            AGGREGATED,
            self.sim_time_s,
            round=round_index,
            participants=[u.client_id for u in delivered],
        )
        return self._reducer.records[-1]
