"""Strategy interfaces for synchronous and asynchronous FL.

A *strategy* owns the three decisions that differ between methods:
which clients participate, what travels on the wire, and how the
server folds deliveries into the global model.  The engines in
:mod:`repro.fl.sync_engine` / :mod:`repro.fl.async_engine` own
everything else (timing, transfers, faults, metrics), so a strategy is
small and testable in isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.compression.base import CompressedGradient
from repro.fl.client import Client, ClientUpdate
from repro.fl.config import LocalTrainingConfig
from repro.fl.server import Server
from repro.nn.subspace import ParamSubspace
from repro.wire.codecs import codec_for_id, encode_frame, encode_model_frame
from repro.wire.frame import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.conditions import NetworkConditions
    from repro.sim.kernel import SimKernel
    from repro.sim.trace import EventTrace

__all__ = [
    "RoundContext",
    "SyncStrategy",
    "AsyncStrategy",
    "UploadPacket",
    "weighted_average",
    "masked_weighted_average",
]


@dataclass
class UploadPacket:
    """One client upload as the server receives it.

    ``frame`` is the encoded wire frame the payload travels in;
    ``delta`` is the dense vector the server reconstructs from it
    (strategies hand both over so engines never re-decode on the happy
    path).  ``extra_bytes`` covers side-channel payloads that ride the
    same upload outside the frame (SCAFFOLD's control delta, AdaFL's
    score report); :attr:`nbytes` — payload plus side channel — is
    what the link is charged, and :attr:`wire_nbytes` adds the frame
    header for the honest on-the-wire total.

    Unpacks as ``delta, nbytes = packet`` for callers written against
    the historical tuple interface.

    ``subspace`` records which coordinates the delta actually covers
    (Adaptive Federated Dropout sub-model updates); ``None`` means the
    legacy full-width contract.  Engines copy it into
    ``update.extras["subspace"]`` so masked aggregation can
    renormalise weights per coordinate.
    """

    delta: np.ndarray
    frame: Frame
    extra_bytes: int = 0
    subspace: ParamSubspace | None = None

    @property
    def nbytes(self) -> int:
        """Charged upload size: frame payload + side-channel bytes."""
        return self.frame.payload_nbytes + self.extra_bytes

    @property
    def wire_nbytes(self) -> int:
        """Full framed size including the fixed header."""
        return len(self.frame) + self.extra_bytes

    @property
    def frame_codec(self) -> str:
        """Method name of the codec the frame was encoded with."""
        return codec_for_id(self.frame.codec_id).method

    def __iter__(self):
        yield self.delta
        yield self.nbytes


def _dense_upload(update: ClientUpdate, model_version: int) -> UploadPacket:
    """The default packet: the dense float32 delta in a ``none`` frame."""
    payload = CompressedGradient(
        method="none",
        dim=update.delta.size,
        num_bytes=4 * update.delta.size,
        data={"values": update.delta.astype(np.float32)},
    )
    return UploadPacket(delta=update.delta, frame=payload.to_frame(model_version))


class _ModelFrameCache:
    """Per-strategy memo of current model broadcast frames.

    Encoding the model is O(d); a frame changes only when the server
    version does, so one encode serves every downlink of that version.
    Frames are keyed by ``(subspace token)`` within a version — a
    partial subspace yields a masked frame carrying only the covered
    coordinates (Adaptive Federated Dropout's sub-model downlink),
    while ``None`` or a full subspace yields the legacy dense frame.
    The cache drops everything when the version moves on, so stale
    sub-model frames never accumulate.
    """

    def __init__(self) -> None:
        self._version: int | None = None
        self._frames: dict[tuple[int, int, int] | None, Frame] = {}

    def get(self, server: Server, subspace: ParamSubspace | None = None) -> Frame:
        if self._version != server.version:
            self._version = server.version
            self._frames.clear()
        if subspace is not None and subspace.is_full:
            subspace = None
        key = None if subspace is None else subspace.token
        frame = self._frames.get(key)
        if frame is None:
            if subspace is None:
                frame = encode_model_frame(server.params, server.version)
            else:
                frame = encode_frame(
                    "masked",
                    server.dim,
                    {
                        "indices": subspace.indices.astype(np.uint32),
                        "inner_method": "none",
                        "inner_data": {"values": subspace.gather(server.params)},
                    },
                    model_version=server.version,
                )
            self._frames[key] = frame
        return frame


@dataclass
class RoundContext:
    """Everything a strategy may consult when selecting clients."""

    round_index: int
    sim_time_s: float
    server: Server
    clients: list[Client]
    network: "NetworkConditions | None" = None
    local_config: LocalTrainingConfig | None = None
    trace: "EventTrace | None" = None  # the engine's telemetry bus
    # The engine's simulation kernel: strategies that derive per-round
    # randomness (subspace masks, stochastic bit-widths) draw from its
    # named streams so two identical runs stay bit-identical.
    kernel: "SimKernel | None" = None


def weighted_average(updates: list[ClientUpdate]) -> np.ndarray:
    """Sample-count-weighted average of client deltas (Eq. 2 weights)."""
    if not updates:
        raise ValueError("cannot average zero updates")
    total = sum(u.num_samples for u in updates)
    if total <= 0:
        raise ValueError("updates carry no samples")
    acc = np.zeros_like(updates[0].delta)
    for u in updates:
        acc += (u.num_samples / total) * u.delta
    return acc


def masked_weighted_average(updates: list[ClientUpdate]) -> np.ndarray:
    """Sample-count-weighted average honouring per-update subspaces.

    Each update contributes only on the coordinates its
    ``extras["subspace"]`` covers (``None`` or a full subspace means
    the whole vector), and weights are renormalised *per coordinate*
    over the covering clients — the standard Federated Dropout rule.
    Coordinates no delivered update covers get a zero delta, i.e. the
    server keeps its current value there.
    """
    if not updates:
        raise ValueError("cannot average zero updates")
    if all(u.num_samples <= 0 for u in updates):
        raise ValueError("updates carry no samples")
    dim = updates[0].delta.size
    acc = np.zeros(dim, dtype=np.float64)
    weight = np.zeros(dim, dtype=np.float64)
    for u in updates:
        w = float(u.num_samples)
        if w <= 0:
            continue
        subspace = u.extras.get("subspace")
        if subspace is None or subspace.is_full:
            acc += w * u.delta
            weight += w
        else:
            idx = subspace.indices
            acc[idx] += w * u.delta[idx]
            weight[idx] += w
    covered = weight > 0
    out = np.zeros(dim, dtype=np.float64)
    np.divide(acc, weight, out=out, where=covered)
    return out


class SyncStrategy:
    """Base synchronous strategy: random selection, dense uploads, FedAvg-style hooks."""

    name = "sync-base"

    def __init__(self, participation_rate: float = 0.5):
        if not 0.0 < participation_rate <= 1.0:
            raise ValueError("participation_rate must be in (0, 1]")
        self.participation_rate = participation_rate

    # -- lifecycle ------------------------------------------------------
    def prepare(self, server: Server, clients: list[Client]) -> None:
        """One-time setup before round 0 (attach state to clients, etc.)."""

    # -- participation --------------------------------------------------
    def select(
        self,
        available: list[int],
        rng: np.random.Generator,
        context: RoundContext,
    ) -> list[int]:
        """Pick this round's participants from the available clients.

        Default: uniform random sample of ``ceil(rate * num_clients)``
        clients, capped by availability — the fixed-``r_p`` scheme all
        baselines in the paper use.
        """
        if not available:
            return []
        want = math.ceil(self.participation_rate * len(context.clients))
        take = min(want, len(available))
        picked = rng.choice(np.asarray(available), size=take, replace=False)
        return sorted(int(i) for i in picked)

    # -- local training config -----------------------------------------
    def local_config(self, base: LocalTrainingConfig) -> LocalTrainingConfig:
        """Per-method tweak of the client optimiser config (e.g. FedProx mu)."""
        return base

    def client_train_kwargs(self, client: Client) -> dict:
        """Extra ``Client.local_train`` kwargs (e.g. SCAFFOLD's control)."""
        del client
        return {}

    # -- wire format ------------------------------------------------------
    def process_upload(
        self, client: Client, update: ClientUpdate, context: RoundContext
    ) -> UploadPacket:
        """Encode one upload into an :class:`UploadPacket`.

        Baselines send the dense delta; AdaFL overrides this with DGC.
        """
        del client
        return _dense_upload(update, context.server.version)

    def encode_model(
        self, server: Server, subspace: ParamSubspace | None = None
    ) -> Frame:
        """The model broadcast frame (cached per version and subspace).

        ``subspace=None`` (or a full subspace) is the legacy dense
        broadcast; a partial subspace yields a masked frame carrying
        only the covered coordinates — the sub-model downlink of
        Adaptive Federated Dropout.
        """
        cache = getattr(self, "_model_frames", None)
        if cache is None:
            cache = self._model_frames = _ModelFrameCache()
        return cache.get(server, subspace)

    def downlink_bytes(self, server: Server) -> int:
        """Bytes of the model broadcast each participant downloads."""
        return self.encode_model(server).payload_nbytes

    def on_upload_result(
        self, client: Client, delivered: bool, context: RoundContext
    ) -> None:
        """Delivery feedback for the client's last upload (ACK/NACK).

        Stateful compressors use the NACK to restore state they cleared
        optimistically at compress time; default is a no-op.
        """

    # -- aggregation ------------------------------------------------------
    def aggregate(
        self, server: Server, updates: list[ClientUpdate], context: RoundContext
    ) -> None:
        """Fold delivered updates into the global model (default FedAvg)."""
        del context
        if not updates:
            return
        server.apply_delta(weighted_average(updates))


class AsyncStrategy:
    """Base asynchronous strategy: server reacts to one update at a time."""

    name = "async-base"

    def prepare(self, server: Server, clients: list[Client]) -> None:
        """One-time setup before the first dispatch."""

    def local_config(self, base: LocalTrainingConfig) -> LocalTrainingConfig:
        return base

    def process_upload(
        self, client: Client, update: ClientUpdate, sim_time_s: float
    ) -> UploadPacket:
        """Encode one upload into an :class:`UploadPacket`."""
        del client, sim_time_s
        return _dense_upload(update, update.extras.get("base_version", 0))

    def encode_model(
        self, server: Server, subspace: ParamSubspace | None = None
    ) -> Frame:
        """The model broadcast frame (cached per version and subspace)."""
        cache = getattr(self, "_model_frames", None)
        if cache is None:
            cache = self._model_frames = _ModelFrameCache()
        return cache.get(server, subspace)

    def downlink_bytes(self, server: Server) -> int:
        return self.encode_model(server).payload_nbytes

    def on_upload_result(self, client: Client, delivered: bool, sim_time_s: float) -> None:
        """Delivery feedback (ACK/NACK) for the client's last upload."""

    def should_train(self, client: Client, server: Server, sim_time_s: float) -> bool:
        """Gate for AdaFL's halting; baselines always train."""
        del client, server, sim_time_s
        return True

    def on_update(
        self,
        server: Server,
        update: ClientUpdate,
        delta: np.ndarray,
        staleness: int,
    ) -> bool:
        """Handle one delivered update; return True if the model changed."""
        raise NotImplementedError
