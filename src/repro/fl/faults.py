"""Controlled fault injection for the empirical study (Fig. 1).

The paper's §III experiments impose two failure modes on a chosen
fraction of "straggler" clients:

* **dropout** — the straggler only reaches the server every other
  communication round (synchronous) — the client is simply absent;
* **data loss** — the straggler trains and uploads, but the update is
  lost in transit with some probability, so its contribution flickers
  in and out (the paper observes this injects more noise than clean
  dropout).

For asynchronous runs the paper slows stragglers down 3x instead;
that is modelled by the engine's per-client compute speed, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultInjector"]


@dataclass
class FaultInjector:
    """Deterministic dropout / stochastic data-loss injection.

    ``mode`` is one of ``"none"``, ``"dropout"``, ``"dataloss"``.
    """

    mode: str = "none"
    straggler_ids: frozenset[int] = field(default_factory=frozenset)
    dropout_period: int = 2
    loss_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in ("none", "dropout", "dataloss"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.dropout_period < 2:
            raise ValueError("dropout_period must be >= 2")
        if not 0.0 <= self.loss_prob <= 1.0:
            raise ValueError("loss_prob must be in [0, 1]")
        object.__setattr__(self, "straggler_ids", frozenset(self.straggler_ids))

    @classmethod
    def from_fraction(
        cls,
        mode: str,
        num_clients: int,
        fraction: float,
        rng: np.random.Generator,
        **kwargs,
    ) -> "FaultInjector":
        """Pick ``round(fraction * num_clients)`` random stragglers.

        A positive fraction always yields at least one straggler: tiny
        fleets used to round ``fraction * num_clients`` down to zero
        and silently inject nothing.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        num_bad = int(round(num_clients * fraction))
        if fraction > 0.0 and num_bad == 0:
            num_bad = 1
        ids = rng.choice(num_clients, size=num_bad, replace=False)
        return cls(mode=mode, straggler_ids=frozenset(int(i) for i in ids), **kwargs)

    @property
    def trivially_available(self) -> bool:
        """True when :meth:`available` cannot return False for anyone.

        Lets engines skip the per-client availability loop for the
        common fault-free case — at population scale the O(population)
        Python loop would dominate the round.
        """
        return self.mode != "dropout" or not self.straggler_ids

    def available(self, client_id: int, round_index: int) -> bool:
        """Can this client participate in this round at all?"""
        if self.mode != "dropout" or client_id not in self.straggler_ids:
            return True
        # Stagger phases by client id so stragglers don't all skip the
        # same rounds ("update the server every other communication
        # round", §III-B).
        return (round_index + client_id) % self.dropout_period == 0

    def upload_lost(self, client_id: int, rng: np.random.Generator) -> bool:
        """Is this client's upload destroyed in transit this round?"""
        if self.mode != "dataloss" or client_id not in self.straggler_ids:
            return False
        return rng.random() < self.loss_prob
