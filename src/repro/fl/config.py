"""Configuration dataclasses shared by the FL engines and strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fl.validation import ValidationConfig
from repro.sim.retry import RetryPolicy

__all__ = ["LocalTrainingConfig", "FederationConfig"]


@dataclass(frozen=True)
class LocalTrainingConfig:
    """How each client runs its local optimisation.

    ``prox_mu`` enables the FedProx proximal term (0 disables it);
    clients always train with plain SGD as in the paper's baselines.
    """

    local_epochs: int = 1
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    prox_mu: float = 0.0
    max_batches: int | None = None  # cap batches per epoch (fast test mode)

    def __post_init__(self) -> None:
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if self.weight_decay < 0 or self.prox_mu < 0:
            raise ValueError("weight_decay and prox_mu must be non-negative")
        if self.max_batches is not None and self.max_batches <= 0:
            raise ValueError("max_batches must be positive or None")


@dataclass(frozen=True)
class FederationConfig:
    """Engine-level settings for one federated run."""

    num_rounds: int = 40
    participation_rate: float = 0.5
    eval_every: int = 1
    seed: int = 0
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    # Synchronous engine: optional per-round deadline.  §III-A: "the
    # server can impose a maximum wait time, dropping any delayed
    # updates beyond this threshold" — updates arriving after the
    # deadline are discarded and the round closes at the deadline.
    round_deadline_s: float | None = None
    # Async engine settings.
    max_sim_time_s: float = 2000.0
    max_updates: int | None = None
    # Async engine at population scale: cap the initial model fan-out
    # to the first N client ids.  None broadcasts to everyone — the
    # legacy behaviour, required for bit-identical trajectories — but
    # is O(population) work and memory; virtual-population runs set a
    # cohort so only O(active) clients ever enter the reactive loop.
    async_cohort: int | None = None
    # Transfer retry schedules.  None keeps each engine's historical
    # default: single-attempt legs for the synchronous engine and both
    # uplinks, and the async engine's constant-backoff downlink retry
    # (capped at 8 attempts).
    downlink_retry: RetryPolicy | None = None
    uplink_retry: RetryPolicy | None = None
    # Server-side update validation; None disables every screen (the
    # historical trust-everything behaviour, bit-identical trajectories).
    validation: ValidationConfig | None = None
    # Synchronous engine: minimum fraction of the selected cohort whose
    # uploads must survive for the round to aggregate.  When fewer
    # arrive (e.g. worker processes died mid-round over a remote
    # transport), the round is voided — the server keeps its model and
    # the AGGREGATED event carries ``quorum_missed=True``.  None keeps
    # the historical behaviour: aggregate whatever arrived.
    quorum_frac: float | None = None
    # Fuse the selected clients' local training into one stacked-buffer
    # kernel (repro.nn.batched) when the cohort allows it; trajectories
    # are bit-identical to the serial path, so this defaults to on.
    # The sync engine batches the whole barrier cohort, the async
    # engine batches simultaneously-ready clients opportunistically;
    # unsupported models fall back to the serial oracle automatically.
    batched_compute: bool = True

    def __post_init__(self) -> None:
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not 0.0 < self.participation_rate <= 1.0:
            raise ValueError("participation_rate must be in (0, 1]")
        if self.eval_every <= 0:
            raise ValueError("eval_every must be positive")
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ValueError("round_deadline_s must be positive or None")
        if self.max_sim_time_s <= 0:
            raise ValueError("max_sim_time_s must be positive")
        if self.max_updates is not None and self.max_updates <= 0:
            raise ValueError("max_updates must be positive or None")
        if self.async_cohort is not None and self.async_cohort <= 0:
            raise ValueError("async_cohort must be positive or None")
        if self.quorum_frac is not None and not 0.0 < self.quorum_frac <= 1.0:
            raise ValueError("quorum_frac must be in (0, 1] or None")
