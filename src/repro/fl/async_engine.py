"""Asynchronous FL engine — a reactive protocol on :class:`repro.sim.SimKernel`.

Implements the asynchronous protocol of §III-A: every client loops
``download -> local train -> upload`` independently; the server reacts
to each arriving update (FedAsync applies it immediately with a
staleness-discounted weight, FedBuff buffers ``K`` of them).  Client
heterogeneity — the 3x-slower stragglers of the empirical study — is
expressed through per-client compute rates, and all transfer times
come from the per-client :class:`~repro.network.conditions.ClientNetwork`.

The engine's main loop drains the kernel's event queue up to the
simulation horizon; availability churn defers work while a device is
offline, dropout faults park it until the next model version, and
data-loss faults destroy delivered uploads in transit.  Every
occurrence is published on the trace bus, and results are read back
from the attached :class:`~repro.fl.metrics.MetricsReducer`.

Staleness is measured in server model versions: an update trained from
version ``v`` arriving when the server is at ``V`` has staleness
``V - v``, exactly the quantity Eq. 4/5 gate on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import dense_bytes
from repro.fl.client import Client, ClientUpdate
from repro.fl.config import FederationConfig
from repro.fl.faults import FaultInjector
from repro.fl.metrics import MetricsReducer, RunResult
from repro.fl.server import Server
from repro.fl.strategy import AsyncStrategy
from repro.network.conditions import NetworkConditions
from repro.sim import (
    AGGREGATED,
    DROPPED,
    EVALUATED,
    EventTrace,
    HALTED,
    RUN_END,
    RUN_START,
    SimKernel,
    WOKEN,
)

__all__ = ["AsyncEngine", "DOWNLINK_RETRY_BACKOFF"]

# After a lost model broadcast the client backs off for this fraction
# of the failed attempt's duration before re-requesting, so the retry
# lands at ``(1 + backoff) * duration`` after the original dispatch.
# Each retry re-rolls the link and is charged its own bytes.
DOWNLINK_RETRY_BACKOFF = 1.0

_MODEL_ARRIVAL = "model_arrival"
_MODEL_RETRY = "model_retry"
_UPDATE_ARRIVAL = "update_arrival"


@dataclass
class _InFlight:
    """An upload travelling to the server."""

    update: ClientUpdate
    delta: np.ndarray
    num_bytes: int
    base_version: int


class AsyncEngine:
    """Runs an asynchronous federated training session."""

    def __init__(
        self,
        server: Server,
        clients: list[Client],
        strategy: AsyncStrategy,
        config: FederationConfig,
        network: NetworkConditions | None = None,
        device_flops: np.ndarray | None = None,
        churn=None,
        faults: FaultInjector | None = None,
        trace: EventTrace | None = None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.server = server
        self.clients = clients
        self.strategy = strategy
        self.config = config
        self.faults = faults if faults is not None else FaultInjector()
        # Availability churn (repro.network.churn); None = always on.
        self._churn = churn
        self._kernel = SimKernel(
            seed=config.seed,
            num_clients=len(clients),
            network=network,
            device_flops=device_flops,
            trace=trace,
        )
        self.network = self._kernel.network
        self.device_flops = self._kernel.device_flops
        self._rng = self._kernel.rng
        self._trace = self._kernel.trace
        self._reducer = self._trace.add_sink(MetricsReducer())
        self._halted: list[int] = []
        self._total_updates = 0

    @property
    def sim_time_s(self) -> float:
        """Simulated seconds elapsed (the kernel clock)."""
        return self._kernel.now

    @property
    def trace(self) -> EventTrace:
        """The engine's telemetry bus (attach sinks before ``run``)."""
        return self._trace

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Simulate until ``max_sim_time_s`` (or ``max_updates``) and report."""
        self.strategy.prepare(self.server, self.clients)
        local_cfg = self.strategy.local_config(self.config.local)
        self._trace.emit(
            RUN_START,
            self._kernel.now,
            mode="async",
            method=self.strategy.name,
            num_clients=len(self.clients),
            model_bytes=dense_bytes(self.server.dim),
        )

        for client in self.clients:
            self._dispatch_model(client.client_id)

        horizon = self.config.max_sim_time_s
        done = False
        while not done:
            for event in self._kernel.queue.drain_until(horizon):
                if event.kind == _MODEL_ARRIVAL:
                    self._on_model_arrival(event.payload, local_cfg)
                elif event.kind == _MODEL_RETRY:
                    self._dispatch_model(
                        event.payload["cid"], forced=event.payload["forced"]
                    )
                elif event.kind == _UPDATE_ARRIVAL:
                    self._on_update_arrival(event.payload)
                    if (
                        self.config.max_updates is not None
                        and self._total_updates >= self.config.max_updates
                    ):
                        done = True
                        break
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown event kind {event.kind!r}")
            else:
                # Drained: either the queue is empty, or its head lies
                # beyond the simulation horizon.
                if self._kernel.queue:
                    break
                if self._halted and self._kernel.now <= horizon:
                    # Every in-flight client has halted: without a
                    # fresh update no global version change will ever
                    # wake them.  Force-train the longest-waiting one
                    # so the federation keeps making progress.
                    cid = self._halted.pop(0)
                    self._trace.emit(WOKEN, self._kernel.now, cid, cause="forced")
                    self._dispatch_model(cid, forced=True)
                    continue
                break

        self._trace.emit(RUN_END, self._kernel.now, updates=self._total_updates)
        return self._reducer.result()

    # ------------------------------------------------------------------
    def _dispatch_model(self, cid: int, forced: bool = False) -> None:
        """Send the current global model to a client."""
        nbytes = self.strategy.downlink_bytes(self.server)
        now = self._kernel.now
        payload = {"cid": cid, "forced": forced}
        leg = self._kernel.downlink(cid, nbytes, now)
        if not leg.delivered:
            # Lost broadcast: back off, then retry from scratch.  The
            # failed attempt was already charged by the kernel.
            self._trace.emit(
                DROPPED, now + leg.duration_s, cid, reason="downlink_lost"
            )
            retry_at = now + (1.0 + DOWNLINK_RETRY_BACKOFF) * leg.duration_s
            self._kernel.queue.push(retry_at, _MODEL_RETRY, payload)
            return
        self._kernel.queue.push(now + leg.duration_s, _MODEL_ARRIVAL, payload)

    def _on_model_arrival(self, payload: dict, local_cfg) -> None:
        cid = payload["cid"]
        client = self.clients[cid]
        now = self._kernel.now
        if payload.pop("resumed", False):
            self._trace.emit(WOKEN, now, cid, cause="online")
        if self._churn is not None and not self._churn.is_online(cid, now):
            # Device is offline: the work resumes (with a fresh model)
            # once it comes back.
            resume = self._churn.next_online(cid, now)
            self._trace.emit(HALTED, now, cid, cause="churn", until=resume)
            payload["resumed"] = True
            self._kernel.queue.push(resume, _MODEL_ARRIVAL, payload)
            return
        if not payload["forced"] and not self.faults.available(
            cid, self.server.version
        ):
            # Dropout fault: the device is dark; park it until the next
            # global model version, like a strategy halt.
            self._trace.emit(HALTED, now, cid, cause="fault")
            client.halted = True
            self._halted.append(cid)
            return
        if not payload["forced"] and not self.strategy.should_train(
            client, self.server, now
        ):
            # AdaFL halting: park the client until the next global
            # model version (paper §V, Q3 — halted clients save the
            # training *and* communication cost).
            self._trace.emit(HALTED, now, cid, cause="strategy")
            client.halted = True
            self._halted.append(cid)
            return
        client.halted = False
        update = client.local_train(
            self.server.params, local_cfg, round_index=self.server.version
        )
        update.extras["base_params"] = self.server.params.copy()
        compute_s = self._kernel.compute(cid, update.flops, now)
        delta, nbytes = self.strategy.process_upload(client, update, now + compute_s)

        leg = self._kernel.uplink(cid, nbytes, now + compute_s)
        arrival = now + compute_s + leg.duration_s
        delivered = leg.delivered
        if not delivered:
            self._trace.emit(DROPPED, arrival, cid, reason="uplink_lost")
        elif self.faults.upload_lost(cid, self._rng):
            # Data-loss fault: the update made it across the link but
            # is destroyed in transit.
            delivered = False
            self._trace.emit(DROPPED, arrival, cid, reason="fault")
        self.strategy.on_upload_result(client, delivered, now + compute_s)
        if delivered:
            inflight = _InFlight(
                update=update,
                delta=delta,
                num_bytes=nbytes,
                base_version=update.round_index,
            )
            self._kernel.queue.push(arrival, _UPDATE_ARRIVAL, inflight)
        else:
            # Update lost in transit: client fetches a fresh model and
            # goes again (wasted compute, exactly as on real links).
            self._kernel.queue.push(
                arrival, _MODEL_ARRIVAL, {"cid": cid, "forced": False}
            )

    def _on_update_arrival(self, payload: _InFlight) -> None:
        now = self._kernel.now
        staleness = max(0, self.server.version - payload.base_version)
        changed = self.strategy.on_update(
            self.server, payload.update, payload.delta, staleness
        )
        self._total_updates += 1
        cid = payload.update.client_id
        self._trace.emit(
            AGGREGATED,
            now,
            cid,
            update=self._total_updates - 1,
            staleness=staleness,
            applied=bool(changed),
            nbytes=payload.num_bytes,
        )
        if self._total_updates % self.config.eval_every == 0:
            accuracy, loss = self.server.evaluate()
            self._trace.emit(EVALUATED, now, accuracy=accuracy, loss=loss)

        # The uploading client immediately receives the latest model.
        self._dispatch_model(cid)
        # A model change wakes any halted clients (they were waiting
        # for "the next global update").
        if changed and self._halted:
            woken, self._halted = self._halted, []
            for wid in woken:
                self._trace.emit(WOKEN, now, wid, cause="version")
                self._dispatch_model(wid)
