"""Asynchronous FL engine — a reactive protocol on :class:`repro.sim.SimKernel`.

Implements the asynchronous protocol of §III-A: every client loops
``download -> local train -> upload`` independently; the server reacts
to each arriving update (FedAsync applies it immediately with a
staleness-discounted weight, FedBuff buffers ``K`` of them).  Client
heterogeneity — the 3x-slower stragglers of the empirical study — is
expressed through per-client compute rates, and all transfer times
come from the per-client :class:`~repro.network.conditions.ClientNetwork`.

The engine's main loop drains the kernel's event queue up to the
simulation horizon; availability churn defers work while a device is
offline, dropout faults park it until the next model version, and
data-loss faults destroy delivered uploads in transit.  Every
occurrence is published on the trace bus, and results are read back
from the attached :class:`~repro.fl.metrics.MetricsReducer`.

Chaos extensions (all off by default; the legacy event sequence and
trajectories stay bit-identical): a :class:`~repro.sim.FaultPlan`
crashes devices (losing in-progress training), corrupts uploaded
payloads, delays/duplicates uploads, and takes the server itself
offline; ``config.downlink_retry`` / ``config.uplink_retry`` replace
the hard-coded retry behaviour with :class:`~repro.sim.RetryPolicy`
schedules (the default downlink policy reproduces the historical
constant backoff exactly, but is now *capped* — a client whose model
broadcast fails ``max_attempts`` times is terminally dropped instead
of retrying forever); ``config.validation`` screens updates at the
server before they touch the model.  ``snapshot_path`` makes the run
crash-safe (see :mod:`repro.fl.snapshot`).

Staleness is measured in server model versions: an update trained from
version ``v`` arriving when the server is at ``V`` has staleness
``V - v``, exactly the quantity Eq. 4/5 gate on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.batched import train_clients_batched
from repro.fl.client import Client, ClientUpdate
from repro.fl.config import FederationConfig
from repro.fl.faults import FaultInjector
from repro.fl.metrics import MetricsReducer, RunResult
from repro.fl.population import ClientPopulation
from repro.fl.server import Server
from repro.fl.strategy import AsyncStrategy
from repro.fl.validation import UpdateValidator, verify_frame
from repro.network.conditions import NetworkConditions
from repro.transport.base import PeerGone
from repro.sim import (
    AGGREGATED,
    DROPPED,
    EVALUATED,
    EventTrace,
    FaultPlan,
    HALTED,
    RetryPolicy,
    RUN_END,
    RUN_START,
    SimKernel,
    WOKEN,
)

__all__ = ["AsyncEngine", "DOWNLINK_RETRY_BACKOFF"]

# After a lost model broadcast the client backs off for this fraction
# of the failed attempt's duration before re-requesting, so the retry
# lands at ``(1 + backoff) * duration`` after the original dispatch.
# Each retry re-rolls the link and is charged its own bytes.
DOWNLINK_RETRY_BACKOFF = 1.0

# The historical downlink schedule as a policy: constant backoff, one
# drop event per failed attempt — but now capped so a dead link cannot
# spin a client forever.
_DEFAULT_DOWNLINK_RETRY = RetryPolicy(
    max_attempts=8, backoff_frac=DOWNLINK_RETRY_BACKOFF, multiplier=1.0
)

_MODEL_ARRIVAL = "model_arrival"
_MODEL_RETRY = "model_retry"
_UPDATE_ARRIVAL = "update_arrival"


@dataclass
class _InFlight:
    """An upload travelling to the server."""

    update: ClientUpdate
    delta: np.ndarray
    num_bytes: int
    base_version: int
    frame_bytes: bytes = b""


class AsyncEngine:
    """Runs an asynchronous federated training session."""

    def __init__(
        self,
        server: Server,
        clients: "list[Client] | ClientPopulation",
        strategy: AsyncStrategy,
        config: FederationConfig,
        network: NetworkConditions | None = None,
        device_flops: np.ndarray | None = None,
        churn=None,
        faults: FaultInjector | None = None,
        chaos: FaultPlan | None = None,
        trace: EventTrace | None = None,
        snapshot_path=None,
        snapshot_every: int | None = None,
        on_snapshot=None,
        transport=None,
    ):
        # A remote transport owns the client processes; its population
        # facade replaces any clients argument.  In-memory transports
        # (None or InMemoryTransport) keep the historical path exactly.
        self._transport = transport
        self._remote = bool(transport is not None and getattr(transport, "remote", False))
        if self._remote:
            if snapshot_path is not None:
                raise ValueError(
                    "snapshots are not supported over a remote transport "
                    "(worker-side client state is not reachable)"
                )
            self.clients = ClientPopulation.ensure(transport.population())
        else:
            if clients is None or not len(clients):
                raise ValueError("need at least one client")
            # The engine resolves every client through the population
            # registry; a plain list becomes the always-live compat wrapper.
            self.clients = ClientPopulation.ensure(clients)
        self.server = server
        self.strategy = strategy
        self.config = config
        self.faults = faults if faults is not None else FaultInjector()
        # Availability churn (repro.network.churn); None = always on.
        self._churn = churn
        self._chaos = chaos
        if chaos is not None:
            chaos.bind(config.seed, len(self.clients))
        self._validator = (
            UpdateValidator(config.validation) if config.validation is not None else None
        )
        self._dl_policy = config.downlink_retry or _DEFAULT_DOWNLINK_RETRY
        self._ul_policy = config.uplink_retry or RetryPolicy.single()
        self._kernel = SimKernel(
            seed=config.seed,
            num_clients=len(self.clients),
            network=network,
            device_flops=device_flops,
            trace=trace,
        )
        self.network = self._kernel.network
        self.device_flops = self._kernel.device_flops
        self._rng = self._kernel.rng
        self._trace = self._kernel.trace
        self._reducer = self._trace.add_sink(MetricsReducer())
        if transport is not None:
            # Reconnect jitter draws from the kernel's named streams
            # and drops surface on the engine's trace bus.
            transport.bind_kernel(self._kernel, self._trace)
        self._halted: list[int] = []
        self._total_updates = 0
        self.snapshot_path = snapshot_path
        self.snapshot_every = snapshot_every if snapshot_every is not None else 1
        self._on_snapshot = on_snapshot
        self._last_snapshot_at = -1
        # Reused MultiClientTrainer instances, keyed by cohort+config
        # (see repro.fl.batched).  Session-local: deliberately excluded
        # from snapshot_state, a resumed engine rebuilds on first use.
        self._batched_cache: dict = {}
        # The trainer cache holds references into client models; when
        # the registry evicts a client those references go stale, so
        # the eviction watcher drops the affected cohorts.  Watchers
        # are transient — re-registered here on every (re)construction.
        self.clients.on_evict(self._on_client_evicted)

    def _on_client_evicted(self, cid: int) -> None:
        if self._batched_cache:
            dead = [k for k in self._batched_cache if cid in k[0]]
            for k in dead:
                del self._batched_cache[k]

    @property
    def sim_time_s(self) -> float:
        """Simulated seconds elapsed (the kernel clock)."""
        return self._kernel.now

    @property
    def trace(self) -> EventTrace:
        """The engine's telemetry bus (attach sinks before ``run``)."""
        return self._trace

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Simulate until ``max_sim_time_s`` (or ``max_updates``) and report."""
        return self._run(resume=False)

    def resume(self) -> RunResult:
        """Finish a snapshotted run; the result covers the *whole* run."""
        return self._run(resume=True)

    def _run(self, resume: bool) -> RunResult:
        local_cfg = self.strategy.local_config(self.config.local)
        if not resume:
            self.strategy.prepare(self.server, self.clients)
            self._trace.emit(
                RUN_START,
                self._kernel.now,
                mode="async",
                method=self.strategy.name,
                num_clients=len(self.clients),
                model_bytes=self.strategy.encode_model(self.server).payload_nbytes,
            )
            # Boot the reactive loop: every client (or the capped
            # cohort at population scale) receives the initial model.
            for cid in self.clients.initial_ids(self.config.async_cohort):
                self._dispatch_model(cid)

        horizon = self.config.max_sim_time_s
        # A snapshot can land exactly at the update budget (the run
        # finished right after writing it); resuming such a run must
        # not process the still-queued in-flight arrivals.
        done = (
            self.config.max_updates is not None
            and self._total_updates >= self.config.max_updates
        )
        while not done:
            for event in self._kernel.queue.drain_until(horizon):
                if event.kind == _MODEL_ARRIVAL:
                    payloads = [event.payload]
                    if self.config.batched_compute:
                        # Opportunistic fusion: arrivals landing at the
                        # exact same instant are simultaneously-ready
                        # clients; pull them off the queue and train
                        # them through the batched kernel together.
                        queue = self._kernel.queue
                        while (
                            queue
                            and queue.peek().time == event.time
                            and queue.peek().kind == _MODEL_ARRIVAL
                        ):
                            payloads.append(queue.pop().payload)
                    self._on_model_arrivals(payloads, local_cfg)
                elif event.kind == _MODEL_RETRY:
                    self._dispatch_model(
                        event.payload["cid"],
                        forced=event.payload["forced"],
                        attempt=event.payload.get("attempt", 1),
                    )
                elif event.kind == _UPDATE_ARRIVAL:
                    self._on_update_arrival(event.payload)
                    if (
                        self.snapshot_path is not None
                        and self._total_updates > 0
                        and self._total_updates % self.snapshot_every == 0
                        and self._total_updates != self._last_snapshot_at
                    ):
                        self._write_snapshot()
                    if (
                        self.config.max_updates is not None
                        and self._total_updates >= self.config.max_updates
                    ):
                        done = True
                        break
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown event kind {event.kind!r}")
            else:
                # Drained: either the queue is empty, or its head lies
                # beyond the simulation horizon.
                if self._kernel.queue:
                    break
                if self._halted and self._kernel.now <= horizon:
                    # Every in-flight client has halted: without a
                    # fresh update no global version change will ever
                    # wake them.  Force-train the longest-waiting one
                    # so the federation keeps making progress.
                    cid = self._halted.pop(0)
                    self._trace.emit(WOKEN, self._kernel.now, cid, cause="forced")
                    self._dispatch_model(cid, forced=True)
                    continue
                break

        self._trace.emit(RUN_END, self._kernel.now, updates=self._total_updates)
        return self._reducer.result()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def _write_snapshot(self) -> None:
        from repro.fl.snapshot import save_snapshot

        save_snapshot(self, self.snapshot_path)
        self._last_snapshot_at = self._total_updates
        if self._on_snapshot is not None:
            self._on_snapshot(self)

    def snapshot_state(self) -> dict:
        """Everything needed to rebuild this engine mid-run (pickle-safe)."""
        from repro.fl.snapshot import kernel_state

        return {
            "mode": "async",
            "server": self.server,
            "clients": self.clients,
            "strategy": self.strategy,
            "config": self.config,
            "faults": self.faults,
            "chaos": self._chaos,
            "churn": self._churn,
            "network": self.network,
            "device_flops": self.device_flops,
            "validator": self._validator,
            "kernel": kernel_state(self._kernel),
            "trace_seq": self._trace._seq,
            "reducer": self._reducer,
            "extra": {
                "halted": list(self._halted),
                "total_updates": self._total_updates,
                "last_snapshot_at": self._last_snapshot_at,
            },
        }

    def restore_extra(self, extra: dict) -> None:
        """Engine-specific state counterpart of ``snapshot_state``."""
        self._halted = list(extra["halted"])
        self._total_updates = int(extra["total_updates"])
        self._last_snapshot_at = int(extra["last_snapshot_at"])

    # ------------------------------------------------------------------
    def _retry_rng(self, cid: int, policy: RetryPolicy):
        """Jitter stream for retries; None keeps the schedule exact."""
        if policy.jitter_frac <= 0.0:
            return None
        return self._kernel.stream("retry", cid)

    def _dispatch_model(self, cid: int, forced: bool = False, attempt: int = 1) -> None:
        """Send the current global model to a client."""
        now = self._kernel.now
        outage = self._chaos.outage if self._chaos is not None else None
        if outage is not None and outage.is_down(now):
            # The server cannot broadcast while it is dark; the client
            # re-requests as soon as it comes back.
            resume = outage.next_up(now)
            self._trace.emit(HALTED, now, cid, cause="server_down", until=resume)
            self._kernel.queue.push(
                resume, _MODEL_RETRY, {"cid": cid, "forced": forced, "attempt": attempt}
            )
            return
        model_frame = self.strategy.encode_model(self.server)
        nbytes = self.strategy.downlink_bytes(self.server)
        payload = {"cid": cid, "forced": forced}
        leg = self._kernel.downlink(
            cid,
            nbytes,
            now,
            extra={
                "codec": "none",
                "frame_len": len(model_frame) + (nbytes - model_frame.payload_nbytes),
            },
        )
        if not leg.delivered:
            # Lost broadcast: back off, then retry from scratch.  The
            # failed attempt was already charged by the kernel.
            if self._dl_policy.exhausted(attempt):
                # Out of attempts: the client never receives a model
                # and sits the rest of the run out (terminal drop).
                self._trace.emit(
                    DROPPED,
                    now + leg.duration_s,
                    cid,
                    reason="downlink_lost",
                    terminal=True,
                    attempts=attempt,
                )
                return
            self._trace.emit(
                DROPPED,
                now + leg.duration_s,
                cid,
                reason="downlink_lost",
                attempt=attempt,
            )
            retry_at = (
                now
                + leg.duration_s
                + self._dl_policy.backoff_s(
                    attempt, leg.duration_s, self._retry_rng(cid, self._dl_policy)
                )
            )
            payload["attempt"] = attempt + 1
            self._kernel.queue.push(retry_at, _MODEL_RETRY, payload)
            return
        self._kernel.queue.push(now + leg.duration_s, _MODEL_ARRIVAL, payload)

    def _on_model_arrivals(self, payloads: list[dict], local_cfg) -> None:
        """Handle one or more same-instant model arrivals.

        Each payload is gated exactly as the serial handler gates it
        (churn, crashes, dropout faults, strategy halts — all
        deterministic, no shared-RNG draws); the survivors train
        together through the batched kernel when the cohort allows it,
        then complete their upload legs in arrival order so every
        shared-RNG draw happens in the serial sequence.
        """
        trainees: list[Client] = []
        for payload in payloads:
            client = self._gate_model_arrival(payload)
            if client is not None:
                trainees.append(client)
        if not trainees:
            return
        batched = None
        ids = [c.client_id for c in trainees]
        if len(trainees) > 1 and len(set(ids)) == len(ids) and not self._remote:
            batched = train_clients_batched(
                trainees,
                self.server.params,
                local_cfg,
                round_index=self.server.version,
                cache=self._batched_cache,
            )
        elif self._remote and len(trainees) > 1:
            # Remote analogue of the opportunistic fusion: pipeline the
            # burst's train requests so the owning worker processes run
            # in parallel; replies are consumed in serial order below.
            self._transport.prefetch_train(
                ids, self.server.params, self.server.version, {}
            )
        for client in trainees:
            if batched is not None:
                update = batched[client.client_id]
            else:
                try:
                    update = client.local_train(
                        self.server.params, local_cfg, round_index=self.server.version
                    )
                except PeerGone as exc:
                    # The owning worker process died: terminal for this
                    # client — no restart event will ever revive it.
                    self._trace.emit(
                        DROPPED,
                        self._kernel.now,
                        client.client_id,
                        reason="crash",
                        cause="transport",
                        terminal=True,
                        attempts=exc.attempts,
                    )
                    continue
            self._finish_model_arrival(client, update)
        # The arrival burst is fully processed: trim materialised
        # clients back to the retention cap (no-op when always-live).
        self.clients.evict_to_cap()

    def _gate_model_arrival(self, payload: dict) -> Client | None:
        """Admission control for one model arrival.

        Returns the client if it should train now, None if the arrival
        was deferred (churn/crash re-queue) or parked (fault/strategy
        halt).  Deterministic: no draws from the shared kernel RNG.
        """
        cid = payload["cid"]
        client = self.clients[cid]
        now = self._kernel.now
        if self._remote and cid in self._transport.down_cids():
            # The owning worker process is dead; the model arrival is
            # undeliverable and the client sits the rest of the run out
            # (UNCOUNTED, like a device that never came online).
            self._trace.emit(
                DROPPED, now, cid, reason="offline", cause="transport"
            )
            return None
        if payload.pop("resumed", False):
            self._trace.emit(WOKEN, now, cid, cause="online")
        if payload.pop("restarted", False):
            self._trace.emit(WOKEN, now, cid, cause="restart")
        if self._churn is not None and not self._churn.is_online(cid, now):
            # Device is offline: the work resumes (with a fresh model)
            # once it comes back.
            resume = self._churn.next_online(cid, now)
            self._trace.emit(HALTED, now, cid, cause="churn", until=resume)
            payload["resumed"] = True
            self._kernel.queue.push(resume, _MODEL_ARRIVAL, payload)
            return None
        crash = self._chaos.crash if self._chaos is not None else None
        if crash is not None and crash.is_down(cid, now):
            # The device is crashed right now; it restarts with the
            # model it already holds and picks the work back up.
            restart = crash.next_up(cid, now)
            self._trace.emit(HALTED, now, cid, cause="crash", until=restart)
            payload["restarted"] = True
            self._kernel.queue.push(restart, _MODEL_ARRIVAL, payload)
            return None
        if not payload["forced"] and not self.faults.available(
            cid, self.server.version
        ):
            # Dropout fault: the device is dark; park it until the next
            # global model version, like a strategy halt.
            self._trace.emit(HALTED, now, cid, cause="fault")
            client.halted = True
            self._halted.append(cid)
            return None
        if not payload["forced"] and not self.strategy.should_train(
            client, self.server, now
        ):
            # AdaFL halting: park the client until the next global
            # model version (paper §V, Q3 — halted clients save the
            # training *and* communication cost).
            self._trace.emit(HALTED, now, cid, cause="strategy")
            client.halted = True
            self._halted.append(cid)
            return None
        client.halted = False
        self.clients.note_seen((cid,), self.server.version)
        return client

    def _finish_model_arrival(self, client: Client, update: ClientUpdate) -> None:
        """Post-training half of a model arrival: compute/crash
        accounting, upload encoding, uplink legs, and re-queue."""
        cid = client.client_id
        now = self._kernel.now
        crash = self._chaos.crash if self._chaos is not None else None
        update.extras["base_params"] = self.server.params.copy()
        compute_s = self._kernel.compute(cid, update.flops, now)
        if crash is not None:
            crash_t = crash.crash_in(cid, now, now + compute_s)
            if crash_t is not None:
                # Crash mid-training: the in-progress work is lost; the
                # device refetches a fresh model once it restarts.
                restart = crash.next_up(cid, crash_t)
                self._trace.emit(DROPPED, crash_t, cid, reason="crash", until=restart)
                self._kernel.queue.push(
                    restart,
                    _MODEL_RETRY,
                    {"cid": cid, "forced": False, "attempt": 1},
                )
                return
        try:
            packet = self.strategy.process_upload(client, update, now + compute_s)
        except PeerGone as exc:
            # The worker died between training and upload encoding
            # (compression is a worker-side RPC for remote clients).
            self._trace.emit(
                DROPPED,
                now + compute_s,
                cid,
                reason="crash",
                cause="transport",
                terminal=True,
                attempts=exc.attempts,
            )
            return
        if self._validator is not None:
            self._validator.stamp(update)
        delta = packet.delta
        frame_bytes = packet.frame.to_bytes()
        nbytes = packet.nbytes
        up_extra = {"codec": packet.frame_codec, "frame_len": packet.wire_nbytes}
        if packet.subspace is not None:
            # Record the covered coordinates for subspace-aware folds.
            update.extras["subspace"] = packet.subspace

        # -- uplink (policy-driven retries; default is one attempt) --
        attempt = 1
        up_start = now + compute_s
        while True:
            leg = self._kernel.uplink(cid, nbytes, up_start, extra=up_extra)
            arrival = up_start + leg.duration_s
            if leg.delivered or self._ul_policy.exhausted(attempt):
                break
            self._trace.emit(
                DROPPED, arrival, cid, reason="uplink_lost", attempt=attempt
            )
            up_start = arrival + self._ul_policy.backoff_s(
                attempt, leg.duration_s, self._retry_rng(cid, self._ul_policy)
            )
            attempt += 1
        delivered = leg.delivered
        if not delivered:
            data = (
                {"terminal": True, "attempts": attempt}
                if self._ul_policy.max_attempts > 1
                else {}
            )
            self._trace.emit(DROPPED, arrival, cid, reason="uplink_lost", **data)
        elif self.faults.upload_lost(cid, self._rng):
            # Data-loss fault: the update made it across the link but
            # is destroyed in transit.
            delivered = False
            self._trace.emit(DROPPED, arrival, cid, reason="fault")
        try:
            self.strategy.on_upload_result(client, delivered, now + compute_s)
        except PeerGone:
            # NACK restore against a dead worker: its residual state is
            # gone with it; the death itself surfaces as drops through
            # the down-worker gate, so don't double-count here.
            pass
        if delivered:
            stale = self._chaos.stale if self._chaos is not None else None
            duplicate = False
            if stale is not None:
                extra_delay, duplicate = stale.upload_effects(cid)
                arrival += extra_delay
            corruption = (
                self._chaos.corruption if self._chaos is not None else None
            )
            if corruption is not None:
                delta, tampered = corruption.corrupt_upload(cid, delta, frame_bytes)
                if tampered is not None:
                    frame_bytes = tampered
            inflight = _InFlight(
                update=update,
                delta=delta,
                num_bytes=nbytes,
                base_version=update.round_index,
                frame_bytes=frame_bytes,
            )
            self._kernel.queue.push(arrival, _UPDATE_ARRIVAL, inflight)
            if duplicate:
                # The transport delivered the same upload twice; the
                # copy shares the original's serial stamp, so the
                # validator (if any) refuses it on arrival.
                self._kernel.queue.push(arrival, _UPDATE_ARRIVAL, inflight)
        else:
            # Update lost in transit: client fetches a fresh model and
            # goes again (wasted compute, exactly as on real links).
            self._kernel.queue.push(
                arrival, _MODEL_ARRIVAL, {"cid": cid, "forced": False}
            )

    def _on_update_arrival(self, payload: _InFlight) -> None:
        now = self._kernel.now
        cid = payload.update.client_id
        outage = self._chaos.outage if self._chaos is not None else None
        if outage is not None and outage.is_down(now):
            # The update arrived at a dark server: it is lost, and the
            # client re-requests a model once the server returns.
            resume = outage.next_up(now)
            self._trace.emit(
                DROPPED, now, cid, reason="server_down", until=resume
            )
            self._kernel.queue.push(
                resume, _MODEL_RETRY, {"cid": cid, "forced": False, "attempt": 1}
            )
            return
        # Server receipt: the frame's CRC-32 is checked before the
        # payload is trusted — unconditionally, whatever the validation
        # config says (a damaged frame is never decodable).
        if payload.frame_bytes and verify_frame(payload.frame_bytes) is not None:
            self._trace.emit(DROPPED, now, cid, reason="corrupt_frame")
            self._dispatch_model(cid)
            return
        staleness = max(0, self.server.version - payload.base_version)
        if self._validator is not None:
            if self._validator.check_replay(payload.update) is not None:
                # A duplicate delivery: refuse it and stop — the
                # original already triggered the client's next cycle.
                self._trace.emit(DROPPED, now, cid, reason="stale", duplicate=True)
                return
            reason = self._validator.check_staleness(staleness)
            if reason is None:
                reason = self._validator.screen(payload.delta)
            if reason is not None:
                self._trace.emit(DROPPED, now, cid, reason=reason)
                self._dispatch_model(cid)
                return
        changed = self.strategy.on_update(
            self.server, payload.update, payload.delta, staleness
        )
        self._total_updates += 1
        self._trace.emit(
            AGGREGATED,
            now,
            cid,
            update=self._total_updates - 1,
            staleness=staleness,
            applied=bool(changed),
            nbytes=payload.num_bytes,
        )
        if self._total_updates % self.config.eval_every == 0:
            accuracy, loss = self.server.evaluate()
            self._trace.emit(EVALUATED, now, accuracy=accuracy, loss=loss)

        # The uploading client immediately receives the latest model.
        self._dispatch_model(cid)
        # A model change wakes any halted clients (they were waiting
        # for "the next global update").
        if changed and self._halted:
            woken, self._halted = self._halted, []
            for wid in woken:
                self._trace.emit(WOKEN, now, wid, cause="version")
                self._dispatch_model(wid)
