"""Asynchronous FL engine (discrete-event).

Implements the asynchronous protocol of §III-A: every client loops
``download -> local train -> upload`` independently; the server reacts
to each arriving update (FedAsync applies it immediately with a
staleness-discounted weight, FedBuff buffers ``K`` of them).  Client
heterogeneity — the 3x-slower stragglers of the empirical study — is
expressed through per-client compute rates, and all transfer times
come from the per-client :class:`~repro.network.conditions.ClientNetwork`.

Staleness is measured in server model versions: an update trained from
version ``v`` arriving when the server is at ``V`` has staleness
``V - v``, exactly the quantity Eq. 4/5 gate on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.base import dense_bytes
from repro.fl.client import Client, ClientUpdate
from repro.fl.config import FederationConfig
from repro.fl.metrics import RoundRecord, RunResult
from repro.fl.server import Server
from repro.fl.strategy import AsyncStrategy
from repro.network.conditions import NetworkConditions
from repro.network.events import EventQueue

__all__ = ["AsyncEngine"]

_DEFAULT_DEVICE_FLOPS = 2e9

_MODEL_ARRIVAL = "model_arrival"
_UPDATE_ARRIVAL = "update_arrival"


@dataclass
class _InFlight:
    """An upload travelling to the server."""

    update: ClientUpdate
    delta: np.ndarray
    num_bytes: int
    base_version: int


class AsyncEngine:
    """Runs an asynchronous federated training session."""

    def __init__(
        self,
        server: Server,
        clients: list[Client],
        strategy: AsyncStrategy,
        config: FederationConfig,
        network: NetworkConditions | None = None,
        device_flops: np.ndarray | None = None,
        churn=None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        if network is not None and len(network) != len(clients):
            raise ValueError("network must describe exactly one endpoint per client")
        if device_flops is not None and len(device_flops) != len(clients):
            raise ValueError("device_flops must have one entry per client")
        self.server = server
        self.clients = clients
        self.strategy = strategy
        self.config = config
        self.network = network
        self.device_flops = (
            np.asarray(device_flops, dtype=np.float64)
            if device_flops is not None
            else np.full(len(clients), _DEFAULT_DEVICE_FLOPS)
        )
        if np.any(self.device_flops <= 0):
            raise ValueError("device compute rates must be positive")
        self._rng = np.random.default_rng(config.seed)
        self._queue = EventQueue()
        self._halted: list[int] = []
        self._bytes_down_pending = 0
        self._total_updates = 0
        # Availability churn (repro.network.churn); None = always on.
        self._churn = churn

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Simulate until ``max_sim_time_s`` (or ``max_updates``) and report."""
        self.strategy.prepare(self.server, self.clients)
        result = RunResult(
            method=self.strategy.name,
            num_clients=len(self.clients),
            model_bytes=dense_bytes(self.server.dim),
        )
        local_cfg = self.strategy.local_config(self.config.local)

        for client in self.clients:
            self._dispatch_model(client.client_id)

        while True:
            if not self._queue:
                if self._halted and self._queue.now <= self.config.max_sim_time_s:
                    # Every in-flight client has halted: without a
                    # fresh update no global version change will ever
                    # wake them.  Force-train the longest-waiting one
                    # so the federation keeps making progress.
                    cid = self._halted.pop(0)
                    self._dispatch_model(cid, forced=True)
                    continue
                break
            if self._queue.peek().time > self.config.max_sim_time_s:
                break
            event = self._queue.pop()
            if event.kind == _MODEL_ARRIVAL:
                self._on_model_arrival(event.payload, local_cfg)
            elif event.kind == _UPDATE_ARRIVAL:
                self._on_update_arrival(event.payload, result)
                if (
                    self.config.max_updates is not None
                    and self._total_updates >= self.config.max_updates
                ):
                    break
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {event.kind!r}")
        return result

    # ------------------------------------------------------------------
    def _dispatch_model(self, cid: int, forced: bool = False) -> None:
        """Send the current global model to a client."""
        nbytes = self.strategy.downlink_bytes(self.server)
        self._bytes_down_pending += nbytes
        now = self._queue.now
        payload = {"cid": cid, "forced": forced}
        if self.network is None:
            self._queue.push(now, _MODEL_ARRIVAL, payload)
            return
        res = self.network[cid].receive_model(nbytes, now, self._rng)
        if not res.delivered:
            # Lost broadcast: the client retries after the same duration.
            retry = now + 2.0 * res.duration_s
            self._bytes_down_pending += nbytes
            self._queue.push(retry, _MODEL_ARRIVAL, payload)
            return
        self._queue.push(now + res.duration_s, _MODEL_ARRIVAL, payload)

    def _on_model_arrival(self, payload: dict, local_cfg) -> None:
        cid = payload["cid"]
        client = self.clients[cid]
        now = self._queue.now
        if self._churn is not None and not self._churn.is_online(cid, now):
            # Device is offline: the work resumes (with a fresh model)
            # once it comes back.
            resume = self._churn.next_online(cid, now)
            self._queue.push(resume, _MODEL_ARRIVAL, payload)
            return
        if not payload["forced"] and not self.strategy.should_train(
            client, self.server, now
        ):
            # AdaFL halting: park the client until the next global
            # model version (paper §V, Q3 — halted clients save the
            # training *and* communication cost).
            client.halted = True
            self._halted.append(cid)
            return
        client.halted = False
        update = client.local_train(
            self.server.params, local_cfg, round_index=self.server.version
        )
        update.extras["base_params"] = self.server.params.copy()
        compute_s = update.flops / self.device_flops[cid]
        delta, nbytes = self.strategy.process_upload(client, update, now + compute_s)

        if self.network is None:
            up_s, delivered = 0.0, True
        else:
            res = self.network[cid].send_update(nbytes, now + compute_s, self._rng)
            up_s, delivered = res.duration_s, res.delivered

        arrival = now + compute_s + up_s
        self.strategy.on_upload_result(client, delivered, now + compute_s)
        if delivered:
            payload = _InFlight(
                update=update,
                delta=delta,
                num_bytes=nbytes,
                base_version=update.round_index,
            )
            self._queue.push(arrival, _UPDATE_ARRIVAL, payload)
        else:
            # Update lost in transit: client fetches a fresh model and
            # goes again (wasted compute, exactly as on real links).
            self._queue.push(arrival, _MODEL_ARRIVAL, {"cid": cid, "forced": False})

    def _on_update_arrival(self, payload: _InFlight, result: RunResult) -> None:
        staleness = max(0, self.server.version - payload.base_version)
        changed = self.strategy.on_update(
            self.server, payload.update, payload.delta, staleness
        )
        self._total_updates += 1

        record = RoundRecord(
            round_index=self._total_updates - 1,
            sim_time_s=self._queue.now,
            num_uploads=1,
            bytes_up=payload.num_bytes,
            bytes_down=self._bytes_down_pending,
            participants=[payload.update.client_id],
            upload_sizes=[payload.num_bytes],
        )
        self._bytes_down_pending = 0
        if self._total_updates % self.config.eval_every == 0:
            accuracy, loss = self.server.evaluate()
            record.accuracy = accuracy
            record.loss = loss
        result.records.append(record)

        # The uploading client immediately receives the latest model.
        self._dispatch_model(payload.update.client_id)
        # A model change wakes any halted clients (they were waiting
        # for "the next global update").
        if changed and self._halted:
            woken, self._halted = self._halted, []
            for cid in woken:
                self._dispatch_model(cid)
