"""Run metrics: per-round records and whole-run summaries.

The paper's evaluation reduces to a handful of quantities per run —
accuracy over rounds/time, client-to-server update count, bytes moved,
and per-update payload sizes.  :class:`RunResult` carries all of them
and derives the Table I/II columns (update frequency, cost reduction,
gradient size range, compression ratio range).

Records are no longer assembled ad hoc inside the engines: both
engines emit a typed event stream (:mod:`repro.sim.trace`) and
:class:`MetricsReducer` — a trace sink — folds it back into
:class:`RoundRecord`/:class:`RunResult`.  The same reducer replays a
recorded JSONL trace (:func:`run_result_from_trace`), so a trace file
is a complete, lossless account of a run's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.sim.trace import (
    AGGREGATED,
    COUNTED_DROP_REASONS,
    DOWNLINK_END,
    DROPPED,
    EVALUATED,
    REJECTED_DROP_REASONS,
    RUN_START,
    TraceEvent,
    TraceSink,
    UPLINK_END,
)

__all__ = ["RoundRecord", "RunResult", "MetricsReducer", "run_result_from_trace"]


@dataclass
class RoundRecord:
    """Everything measured in one aggregation step.

    For synchronous engines one record is one communication round; for
    asynchronous engines one record is one server model update.
    """

    round_index: int
    sim_time_s: float
    num_uploads: int
    bytes_up: int
    bytes_down: int
    participants: list[int] = field(default_factory=list)
    accuracy: float | None = None
    loss: float | None = None
    upload_sizes: list[int] = field(default_factory=list)
    dropped_uploads: int = 0
    # Uploads that arrived but were refused by server-side validation
    # (trace reasons "corrupt"/"stale") — counted separately from
    # dropped_uploads, which covers work lost in transit.
    rejected_uploads: int = 0


@dataclass
class RunResult:
    """Summary of one federated training run."""

    method: str
    num_clients: int
    records: list[RoundRecord] = field(default_factory=list)
    model_bytes: int = 0  # dense size of one model/gradient payload

    # ------------------------------------------------------------------
    # Curves
    # ------------------------------------------------------------------
    def accuracy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(round indices, accuracy) at evaluated rounds."""
        pts = [(r.round_index, r.accuracy) for r in self.records if r.accuracy is not None]
        if not pts:
            return np.zeros(0), np.zeros(0)
        rounds, accs = zip(*pts)
        return np.asarray(rounds, dtype=np.int64), np.asarray(accs)

    def time_accuracy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(simulated seconds, accuracy) at evaluated rounds."""
        pts = [(r.sim_time_s, r.accuracy) for r in self.records if r.accuracy is not None]
        if not pts:
            return np.zeros(0), np.zeros(0)
        times, accs = zip(*pts)
        return np.asarray(times), np.asarray(accs)

    # ------------------------------------------------------------------
    # Scalar summaries (Table I / II columns)
    # ------------------------------------------------------------------
    @property
    def final_accuracy(self) -> float:
        """Last evaluated accuracy (NaN if never evaluated)."""
        for record in reversed(self.records):
            if record.accuracy is not None:
                return record.accuracy
        return float("nan")

    @property
    def best_accuracy(self) -> float:
        accs = [r.accuracy for r in self.records if r.accuracy is not None]
        return max(accs) if accs else float("nan")

    @property
    def total_uploads(self) -> int:
        """Client-to-server updates delivered (paper's "Update Freq.")."""
        return sum(r.num_uploads for r in self.records)

    @property
    def total_dropped(self) -> int:
        return sum(r.dropped_uploads for r in self.records)

    @property
    def total_rejected(self) -> int:
        """Uploads refused by server-side validation across the run."""
        return sum(r.rejected_uploads for r in self.records)

    @property
    def total_bytes_up(self) -> int:
        return sum(r.bytes_up for r in self.records)

    @property
    def total_bytes_down(self) -> int:
        return sum(r.bytes_down for r in self.records)

    @property
    def total_bytes(self) -> int:
        return self.total_bytes_up + self.total_bytes_down

    @property
    def total_sim_time(self) -> float:
        return self.records[-1].sim_time_s if self.records else 0.0

    def upload_sizes(self) -> np.ndarray:
        """All delivered upload payload sizes, in bytes."""
        sizes: list[int] = []
        for r in self.records:
            sizes.extend(r.upload_sizes)
        return np.asarray(sizes, dtype=np.int64)

    def gradient_size_range(self) -> tuple[int, int]:
        """(min, max) upload payload size — the Table I "Gradient Size" column."""
        sizes = self.upload_sizes()
        if sizes.size == 0:
            return (0, 0)
        return int(sizes.min()), int(sizes.max())

    def compression_ratio_range(self) -> tuple[float, float]:
        """(max, min) achieved compression ratio, as the paper reports it."""
        sizes = self.upload_sizes()
        if sizes.size == 0 or self.model_bytes == 0:
            return (1.0, 1.0)
        ratios = self.model_bytes / sizes
        return float(ratios.max()), float(ratios.min())

    def update_cost_reduction(self, ideal_updates: int) -> float:
        """Fractional reduction of update count vs full participation.

        Table I/II's "Cost Reduc." column: 1 - updates/ideal, where the
        ideal counts every client updating every round (800 in the
        paper's setup).
        """
        if ideal_updates <= 0:
            raise ValueError("ideal_updates must be positive")
        return 1.0 - self.total_uploads / ideal_updates

    def byte_cost_reduction(self, ideal_updates: int) -> float:
        """Fractional reduction in uplink bytes vs dense full participation."""
        if ideal_updates <= 0:
            raise ValueError("ideal_updates must be positive")
        ideal_bytes = ideal_updates * self.model_bytes
        if ideal_bytes == 0:
            return 0.0
        return 1.0 - self.total_bytes_up / ideal_bytes

    def mean_participation_rate(self) -> float:
        """Average fraction of clients uploading per aggregation step."""
        if not self.records or self.num_clients == 0:
            return 0.0
        per_round = [r.num_uploads / self.num_clients for r in self.records]
        return float(np.mean(per_round))

    def time_to_accuracy(self, target: float) -> float | None:
        """First simulated time at which accuracy >= target, else None."""
        for r in self.records:
            if r.accuracy is not None and r.accuracy >= target:
                return r.sim_time_s
        return None

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round index at which accuracy >= target, else None."""
        for r in self.records:
            if r.accuracy is not None and r.accuracy >= target:
                return r.round_index
        return None


class MetricsReducer(TraceSink):
    """Folds the engine event stream into :class:`RoundRecord` objects.

    The reducer is the *only* producer of round records: the engines
    attach one to their trace bus and read records back from it, so a
    run's metrics are by construction a pure function of its trace.

    Accounting rules (matching the engines' historical semantics):

    * ``downlink_end`` always charges its bytes — a lost broadcast
      still consumed the link, and retries are charged per attempt;
    * ``uplink_end`` with ``ok`` parks the payload size; it only counts
      toward ``bytes_up``/``upload_sizes`` if a later ``aggregated``
      event lists the client as a participant (a deadline or fault drop
      after a successful transfer discards it);
    * ``dropped`` increments ``dropped_uploads`` only for
      :data:`~repro.sim.trace.COUNTED_DROP_REASONS` — ``offline``
      clients never entered the round — and ``rejected_uploads`` for
      :data:`~repro.sim.trace.REJECTED_DROP_REASONS` (validation
      refusals);
    * ``aggregated`` closes one record: with a ``participants`` list it
      is a synchronous barrier, otherwise one absorbed async update;
    * ``evaluated`` attaches accuracy/loss to the last closed record.
    """

    def __init__(self) -> None:
        self.header: dict = {}
        self.records: list[RoundRecord] = []
        self._bytes_down = 0
        self._dropped = 0
        self._rejected = 0
        self._pending: dict[int, int] = {}

    # -- TraceSink -----------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        etype = event.type
        if etype == DOWNLINK_END:
            self._bytes_down += int(event.data.get("nbytes", 0))
        elif etype == UPLINK_END:
            if event.data.get("ok", True) and event.client is not None:
                self._pending[event.client] = int(event.data.get("nbytes", 0))
        elif etype == DROPPED:
            reason = event.data.get("reason")
            if reason in COUNTED_DROP_REASONS:
                self._dropped += 1
            elif reason in REJECTED_DROP_REASONS:
                self._rejected += 1
        elif etype == AGGREGATED:
            self._close_record(event)
        elif etype == EVALUATED:
            if self.records:
                self.records[-1].accuracy = event.data.get("accuracy")
                self.records[-1].loss = event.data.get("loss")
        elif etype == RUN_START:
            self.header = dict(event.data)

    def _close_record(self, event: TraceEvent) -> None:
        data = event.data
        if "participants" in data:
            # Synchronous barrier: commit parked uploads in aggregation
            # order (preserves the engine's upload_sizes ordering).
            participants = [int(c) for c in data["participants"]]
            sizes = [self._pending[c] for c in participants]
            round_index = int(data.get("round", len(self.records)))
        else:
            # Asynchronous: one absorbed update from one client.
            participants = [] if event.client is None else [int(event.client)]
            sizes = [int(data["nbytes"])] if "nbytes" in data else []
            round_index = int(data.get("update", len(self.records)))
        self.records.append(
            RoundRecord(
                round_index=round_index,
                sim_time_s=event.t,
                num_uploads=len(participants),
                bytes_up=sum(sizes),
                bytes_down=self._bytes_down,
                participants=participants,
                upload_sizes=sizes,
                dropped_uploads=self._dropped,
                rejected_uploads=self._rejected,
            )
        )
        self._bytes_down = 0
        self._dropped = 0
        self._rejected = 0
        self._pending = {}

    # -- results -------------------------------------------------------
    def result(self) -> RunResult:
        """The :class:`RunResult` reduced so far."""
        return RunResult(
            method=str(self.header.get("method", "")),
            num_clients=int(self.header.get("num_clients", 0)),
            records=list(self.records),
            model_bytes=int(self.header.get("model_bytes", 0)),
        )


def run_result_from_trace(events: Iterable[TraceEvent]) -> RunResult:
    """Replay a recorded trace (e.g. from ``load_trace``) into a result."""
    reducer = MetricsReducer()
    for event in events:
        reducer.emit(event)
    return reducer.result()
