"""Run metrics: per-round records and whole-run summaries.

The paper's evaluation reduces to a handful of quantities per run —
accuracy over rounds/time, client-to-server update count, bytes moved,
and per-update payload sizes.  :class:`RunResult` carries all of them
and derives the Table I/II columns (update frequency, cost reduction,
gradient size range, compression ratio range).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "RunResult"]


@dataclass
class RoundRecord:
    """Everything measured in one aggregation step.

    For synchronous engines one record is one communication round; for
    asynchronous engines one record is one server model update.
    """

    round_index: int
    sim_time_s: float
    num_uploads: int
    bytes_up: int
    bytes_down: int
    participants: list[int] = field(default_factory=list)
    accuracy: float | None = None
    loss: float | None = None
    upload_sizes: list[int] = field(default_factory=list)
    dropped_uploads: int = 0


@dataclass
class RunResult:
    """Summary of one federated training run."""

    method: str
    num_clients: int
    records: list[RoundRecord] = field(default_factory=list)
    model_bytes: int = 0  # dense size of one model/gradient payload

    # ------------------------------------------------------------------
    # Curves
    # ------------------------------------------------------------------
    def accuracy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(round indices, accuracy) at evaluated rounds."""
        pts = [(r.round_index, r.accuracy) for r in self.records if r.accuracy is not None]
        if not pts:
            return np.zeros(0), np.zeros(0)
        rounds, accs = zip(*pts)
        return np.asarray(rounds, dtype=np.int64), np.asarray(accs)

    def time_accuracy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(simulated seconds, accuracy) at evaluated rounds."""
        pts = [(r.sim_time_s, r.accuracy) for r in self.records if r.accuracy is not None]
        if not pts:
            return np.zeros(0), np.zeros(0)
        times, accs = zip(*pts)
        return np.asarray(times), np.asarray(accs)

    # ------------------------------------------------------------------
    # Scalar summaries (Table I / II columns)
    # ------------------------------------------------------------------
    @property
    def final_accuracy(self) -> float:
        """Last evaluated accuracy (NaN if never evaluated)."""
        for record in reversed(self.records):
            if record.accuracy is not None:
                return record.accuracy
        return float("nan")

    @property
    def best_accuracy(self) -> float:
        accs = [r.accuracy for r in self.records if r.accuracy is not None]
        return max(accs) if accs else float("nan")

    @property
    def total_uploads(self) -> int:
        """Client-to-server updates delivered (paper's "Update Freq.")."""
        return sum(r.num_uploads for r in self.records)

    @property
    def total_dropped(self) -> int:
        return sum(r.dropped_uploads for r in self.records)

    @property
    def total_bytes_up(self) -> int:
        return sum(r.bytes_up for r in self.records)

    @property
    def total_bytes_down(self) -> int:
        return sum(r.bytes_down for r in self.records)

    @property
    def total_bytes(self) -> int:
        return self.total_bytes_up + self.total_bytes_down

    @property
    def total_sim_time(self) -> float:
        return self.records[-1].sim_time_s if self.records else 0.0

    def upload_sizes(self) -> np.ndarray:
        """All delivered upload payload sizes, in bytes."""
        sizes: list[int] = []
        for r in self.records:
            sizes.extend(r.upload_sizes)
        return np.asarray(sizes, dtype=np.int64)

    def gradient_size_range(self) -> tuple[int, int]:
        """(min, max) upload payload size — the Table I "Gradient Size" column."""
        sizes = self.upload_sizes()
        if sizes.size == 0:
            return (0, 0)
        return int(sizes.min()), int(sizes.max())

    def compression_ratio_range(self) -> tuple[float, float]:
        """(max, min) achieved compression ratio, as the paper reports it."""
        sizes = self.upload_sizes()
        if sizes.size == 0 or self.model_bytes == 0:
            return (1.0, 1.0)
        ratios = self.model_bytes / sizes
        return float(ratios.max()), float(ratios.min())

    def update_cost_reduction(self, ideal_updates: int) -> float:
        """Fractional reduction of update count vs full participation.

        Table I/II's "Cost Reduc." column: 1 - updates/ideal, where the
        ideal counts every client updating every round (800 in the
        paper's setup).
        """
        if ideal_updates <= 0:
            raise ValueError("ideal_updates must be positive")
        return 1.0 - self.total_uploads / ideal_updates

    def byte_cost_reduction(self, ideal_updates: int) -> float:
        """Fractional reduction in uplink bytes vs dense full participation."""
        if ideal_updates <= 0:
            raise ValueError("ideal_updates must be positive")
        ideal_bytes = ideal_updates * self.model_bytes
        if ideal_bytes == 0:
            return 0.0
        return 1.0 - self.total_bytes_up / ideal_bytes

    def mean_participation_rate(self) -> float:
        """Average fraction of clients uploading per aggregation step."""
        if not self.records or self.num_clients == 0:
            return 0.0
        per_round = [r.num_uploads / self.num_clients for r in self.records]
        return float(np.mean(per_round))

    def time_to_accuracy(self, target: float) -> float | None:
        """First simulated time at which accuracy >= target, else None."""
        for r in self.records:
            if r.accuracy is not None and r.accuracy >= target:
                return r.sim_time_s
        return None

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round index at which accuracy >= target, else None."""
        for r in self.records:
            if r.accuracy is not None and r.accuracy >= target:
                return r.round_index
        return None
