"""Persistence: save/load run results and model checkpoints.

``RunResult`` serialises to a single JSON document (curves, byte
accounting, per-round records) so experiment outputs can be archived
and re-plotted without re-running; model parameters round-trip through
``.npz`` checkpoints.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.fl.metrics import RoundRecord, RunResult
from repro.nn.sequential import Sequential
from repro.wire.codecs import decode_frame, encode_frame
from repro.wire.frame import Frame

__all__ = [
    "run_result_to_dict",
    "run_result_from_dict",
    "save_run_result",
    "load_run_result",
    "save_checkpoint",
    "load_checkpoint",
]

# Version 2 adds per-round ``rejected_uploads`` (validation refusals).
# Version-1 documents predate update validation and load with zero.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def run_result_to_dict(result: RunResult) -> dict:
    """JSON-serialisable representation of a run."""
    return {
        "format_version": _FORMAT_VERSION,
        "method": result.method,
        "num_clients": result.num_clients,
        "model_bytes": result.model_bytes,
        "records": [
            {
                "round_index": r.round_index,
                "sim_time_s": r.sim_time_s,
                "num_uploads": r.num_uploads,
                "bytes_up": r.bytes_up,
                "bytes_down": r.bytes_down,
                "participants": list(r.participants),
                "accuracy": r.accuracy,
                "loss": r.loss,
                "upload_sizes": [int(s) for s in r.upload_sizes],
                "dropped_uploads": r.dropped_uploads,
                "rejected_uploads": r.rejected_uploads,
            }
            for r in result.records
        ],
    }


def run_result_from_dict(payload: dict) -> RunResult:
    """Inverse of :func:`run_result_to_dict` (accepts v1 and v2 files)."""
    version = payload.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported run-result format version {version!r}")
    result = RunResult(
        method=payload["method"],
        num_clients=payload["num_clients"],
        model_bytes=payload["model_bytes"],
    )
    for rec in payload["records"]:
        result.records.append(
            RoundRecord(
                round_index=rec["round_index"],
                sim_time_s=rec["sim_time_s"],
                num_uploads=rec["num_uploads"],
                bytes_up=rec["bytes_up"],
                bytes_down=rec["bytes_down"],
                participants=list(rec["participants"]),
                accuracy=rec["accuracy"],
                loss=rec["loss"],
                upload_sizes=list(rec["upload_sizes"]),
                dropped_uploads=rec["dropped_uploads"],
                rejected_uploads=rec.get("rejected_uploads", 0),
            )
        )
    return result


def save_run_result(result: RunResult, path: str | Path) -> Path:
    """Write a run result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(run_result_to_dict(result), indent=1))
    return path


def load_run_result(path: str | Path) -> RunResult:
    """Read a run result previously written by :func:`save_run_result`."""
    return run_result_from_dict(json.loads(Path(path).read_text()))


def save_checkpoint(
    model: Sequential,
    path: str | Path,
    metadata: dict | None = None,
) -> Path:
    """Write model parameters (and optional metadata) to ``.npz``.

    Parameters are stored as a ``dense64`` wire frame, so checkpoints
    get the same CRC-32 integrity check as in-flight payloads: a
    corrupted file fails loudly at load instead of silently restoring
    damaged weights.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = json.dumps(metadata or {})
    params = model.get_flat_params()
    frame = encode_frame("dense64", params.size, {"values": params})
    np.savez(
        path,
        frame=np.frombuffer(frame.to_bytes(), dtype=np.uint8),
        metadata=np.array(meta),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(model: Sequential, path: str | Path) -> dict:
    """Load parameters into ``model``; returns the stored metadata.

    Framed checkpoints are CRC-verified before any weight is restored
    (a :class:`repro.wire.frame.FrameCorruptionError` propagates);
    pre-frame checkpoints storing a bare ``params`` array still load.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if "frame" in archive:
            _, data = decode_frame(Frame.from_bytes(archive["frame"].tobytes()))
            params = np.asarray(data["values"], dtype=np.float64)
        else:
            params = archive["params"]
        meta = json.loads(str(archive["metadata"]))
    model.set_flat_params(params)
    return meta
