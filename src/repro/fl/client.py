"""The FL client: local training, deltas, and cached gradients.

A client owns a private model replica (rebuilt from the shared
architecture), its local dataset shard, and any stateful machinery a
strategy attaches (SCAFFOLD control variates, a DGC compressor for
AdaFL).  ``local_train`` returns a :class:`ClientUpdate` whose
``delta = w_local - w_global`` is the pseudo-gradient every
aggregation rule in this package consumes.

After each round the client caches its (uncompressed) delta.  AdaFL's
utility score compares this cached local direction against the global
direction — an O(d) dot product, which is why the paper measures only
~0.05% CPU overhead for scoring (§V, Q3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.config import LocalTrainingConfig
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.nn.sequential import Sequential
from repro.nn.subspace import ParamSubspace

__all__ = ["ClientUpdate", "Client"]

# Backward pass costs roughly 2x the forward pass; the standard
# rule-of-thumb factor of 3 covers forward + backward together.
_TRAIN_FLOP_FACTOR = 3


@dataclass
class ClientUpdate:
    """What a client hands to the server after local work."""

    client_id: int
    round_index: int
    num_samples: int
    delta: np.ndarray  # w_local - w_global (dense, float64)
    train_loss: float
    flops: int  # arithmetic performed during this local round
    extras: dict[str, Any] = field(default_factory=dict)


class Client:
    """One federated participant."""

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model_fn: Callable[[], Sequential],
        seed: int = 0,
    ):
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} has an empty dataset")
        self.client_id = client_id
        self.dataset = dataset
        self._model = model_fn()
        self._rng = np.random.default_rng(seed)
        self._loss_fn = SoftmaxCrossEntropy()
        # Strategy-attached state ----------------------------------------
        self.control_variate: np.ndarray | None = None  # SCAFFOLD c_i
        self.compressor = None  # AdaFL attaches a DGCCompressor
        self.last_delta: np.ndarray | None = None  # cached local direction
        self.halted = False  # AdaFL async: paused until next global model
        # Hoisted local optimiser: built once over the model's flat
        # parameter and reconfigured per round, so repeated rounds
        # reuse the momentum buffers instead of reallocating them.
        self._optimizer: SGD | None = None

    def __getstate__(self) -> dict:
        # The hoisted optimiser wraps live views into the model's
        # backing buffers; pickling it would materialise detached copies and
        # break the aliasing, so it is dropped and lazily rebuilt.
        state = self.__dict__.copy()
        state["_optimizer"] = None
        return state

    # ------------------------------------------------------------------
    # Eviction support (repro.fl.population)
    # ------------------------------------------------------------------
    def extract_state(self) -> dict:
        """Cross-round state that must survive eviction.

        Everything *not* regenerable from ``(client_id, dataset,
        model_fn, seed)`` alone: the shuffling RNG position, layer
        runtime state (dropout RNGs, batch-norm running stats),
        strategy attachments (SCAFFOLD variate, cached delta, halt
        flag), and compressor residual/momentum buffers.  Model
        parameters and optimiser momentum are deliberately excluded:
        ``local_train`` overwrites the parameters from the broadcast at
        entry and resets the optimiser state every round, so neither
        carries information across rounds.
        """
        compressor = self.compressor
        return {
            "rng": self._rng.bit_generator.state,
            "halted": self.halted,
            "control_variate": self.control_variate,
            "last_delta": self.last_delta,
            "compressor": None if compressor is None else compressor.export_state(),
            "layers": _layer_runtime_state(self._model),
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`extract_state` output onto a fresh replica.

        A compressor already attached by a materialization hook is
        refilled in place; otherwise one is rebuilt from the exported
        state (currently DGC, the only compressor strategies attach).
        """
        self._rng.bit_generator.state = state["rng"]
        self.halted = bool(state["halted"])
        self.control_variate = state["control_variate"]
        self.last_delta = state["last_delta"]
        comp_state = state["compressor"]
        if comp_state is not None:
            if self.compressor is not None:
                self.compressor.import_state(comp_state)
            elif comp_state.get("kind") == "dgc":
                from repro.compression.dgc import DGCCompressor

                self.compressor = DGCCompressor.from_state(comp_state)
            else:
                raise ValueError(
                    f"cannot rebuild compressor kind {comp_state.get('kind')!r}; "
                    "attach one via a population materialization hook"
                )
        _restore_layer_runtime_state(self._model, state["layers"])

    def state_nbytes(self) -> int:
        """Approximate heavy bytes this materialised client holds.

        Counts the dominant O(d)/O(data) arrays — flat parameter and
        gradient buffers, optimiser momentum, the dataset shard, and
        strategy attachments — which is what the population registry's
        peak-RSS proxy accounts.
        """
        d = self._model.num_params
        total = 2 * 8 * d  # flat parameter + gradient buffers
        total += self.dataset.x.nbytes + self.dataset.y.nbytes
        if self._optimizer is not None:
            total += 8 * d  # hoisted momentum buffer
        for arr in (self.control_variate, self.last_delta):
            if arr is not None:
                total += arr.nbytes
        if self.compressor is not None:
            total += self.compressor.state_nbytes()
        return total

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    @property
    def model_dim(self) -> int:
        return self._model.num_params

    # ------------------------------------------------------------------
    def local_train(
        self,
        global_params: np.ndarray,
        config: LocalTrainingConfig,
        round_index: int = 0,
        server_control: np.ndarray | None = None,
        subspace: ParamSubspace | None = None,
    ) -> ClientUpdate:
        """Run local SGD from ``global_params`` and return the delta.

        ``server_control`` activates the SCAFFOLD correction
        ``g - c_i + c``; the updated client control variate and its
        change are returned in ``extras`` ("control_delta").
        ``config.prox_mu > 0`` activates the FedProx proximal term.

        ``subspace`` restricts training to a sub-model (Adaptive
        Federated Dropout): gradients outside the covered coordinates
        are zeroed before every optimiser step, and the returned delta
        is guaranteed zero off the subspace — even against indirect
        movement like weight decay — so the server can trust the
        packet's mask.
        """
        model = self._model
        model.set_flat_params(global_params)
        # The whole model is optimised as one flat parameter over the
        # backing buffers — bit-identical to per-layer updates, minus
        # the Python loop over layers.  The optimiser object (and its
        # momentum buffer) is reused across rounds; reconfiguring and
        # zeroing its state in place matches a fresh build bit for bit.
        optimizer = self._optimizer
        if optimizer is None:
            optimizer = SGD(
                [model.flat_parameter()],
                lr=config.lr,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
            )
            self._optimizer = optimizer
        else:
            optimizer.configure(
                config.lr,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
            )
            optimizer.reset_state()

        use_scaffold = server_control is not None
        if use_scaffold and self.control_variate is None:
            self.control_variate = np.zeros_like(global_params)
        if use_scaffold:
            scaffold_correction = server_control - self.control_variate

        # Live views into the model's backing buffers: per-batch flat
        # corrections below mutate them in place, with no
        # concatenate/scatter round-trips.
        flat_params = model.get_flat_params()
        flat_grads = model.get_flat_grads()

        # Sub-model training: coordinates off the subspace are frozen
        # by zeroing their gradient each step (scalar fill, no
        # allocation).  A full subspace is the legacy path, bit for bit.
        frozen: np.ndarray | None = None
        if subspace is not None and not subspace.is_full:
            if subspace.dim != flat_params.size:
                raise ValueError(
                    f"subspace dim {subspace.dim} != model dim {flat_params.size}"
                )
            frozen = subspace.complement().indices

        losses: list[float] = []
        steps = 0
        samples_seen = 0
        for _ in range(config.local_epochs):
            for batch_index, (xb, yb) in enumerate(
                self.dataset.batches(config.batch_size, self._rng)
            ):
                if config.max_batches is not None and batch_index >= config.max_batches:
                    break
                model.zero_grad()
                logits = model.forward(xb, training=True)
                loss = self._loss_fn.forward(logits, yb)
                model.backward(self._loss_fn.backward())

                if config.prox_mu > 0.0:
                    # FedProx: grad += mu * (w - w_global), applied flat.
                    flat_grads += config.prox_mu * (flat_params - global_params)
                if use_scaffold:
                    flat_grads += scaffold_correction
                if frozen is not None:
                    flat_grads[frozen] = 0.0

                optimizer.step()
                losses.append(loss)
                steps += 1
                samples_seen += xb.shape[0]

        local_params = flat_params
        delta = local_params - global_params
        if frozen is not None:
            # Hard guarantee: zero off-subspace, whatever the optimiser
            # did there indirectly (weight decay moves frozen params).
            delta[frozen] = 0.0
        self.last_delta = delta

        extras: dict[str, Any] = {}
        if use_scaffold and steps > 0:
            # SCAFFOLD option II: c_i+ = c_i - c + (w_g - w_l) / (K * lr).
            new_control = (
                self.control_variate
                - server_control
                + (global_params - local_params) / (steps * config.lr)
            )
            extras["control_delta"] = new_control - self.control_variate
            self.control_variate = new_control

        flops = _TRAIN_FLOP_FACTOR * model.flops_per_sample() * samples_seen
        return ClientUpdate(
            client_id=self.client_id,
            round_index=round_index,
            num_samples=self.num_samples,
            delta=delta,
            train_loss=float(np.mean(losses)) if losses else 0.0,
            flops=flops,
            extras=extras,
        )

    # ------------------------------------------------------------------
    def probe_delta(
        self, global_params: np.ndarray, config: LocalTrainingConfig
    ) -> np.ndarray:
        """Refresh the cached local direction with a one-minibatch probe.

        The paper's clients interrupt their ongoing local training to
        score the freshly received global model (§IV); a client that
        was not selected recently therefore still holds a *current*
        local gradient.  The selected-clients-only engine emulates that
        with a single minibatch gradient at ``global_params``, scaled
        to a pseudo-delta (``-lr * g``) so it is directly comparable to
        cached training deltas.  Updates ``last_delta`` and returns it.
        """
        model = self._model
        model.set_flat_params(global_params)
        xb, yb = next(self.dataset.batches(config.batch_size, self._rng))
        model.zero_grad()
        logits = model.forward(xb, training=True)
        self._loss_fn.forward(logits, yb)
        model.backward(self._loss_fn.backward())
        probe = -config.lr * model.get_flat_grads()
        self.last_delta = probe
        return probe

    def training_flops(self, config: LocalTrainingConfig) -> int:
        """Arithmetic one local round costs, without running it."""
        per_epoch = len(self.dataset)
        if config.max_batches is not None:
            per_epoch = min(per_epoch, config.max_batches * config.batch_size)
        samples = per_epoch * config.local_epochs
        return _TRAIN_FLOP_FACTOR * self._model.flops_per_sample() * samples

    def evaluate(
        self, global_params: np.ndarray, dataset: Dataset, batch_size: int = 256
    ) -> float:
        """Accuracy of ``global_params`` on an arbitrary dataset.

        Evaluation is chunked (``batch_size``) so conv models never
        materialise a whole-dataset im2col expansion; per-sample
        predictions are independent, so results are identical to a
        single full-dataset forward.
        """
        self._model.set_flat_params(global_params)
        preds = self._model.predict(dataset.x, batch_size=batch_size)
        return float((preds == dataset.y).mean())


def _layer_runtime_state(model: Sequential) -> list[dict | None]:
    """Per-layer non-parameter state: dropout RNGs, batch-norm stats.

    Parameters live in the flat buffers and are overwritten from the
    broadcast, but a Dropout layer owns a persistent RNG and BatchNorm
    accumulates running statistics — both must survive eviction for
    re-materialised replicas to be bit-identical.
    """
    entries: list[dict | None] = []
    for layer in model.layers:
        entry: dict = {}
        rng = getattr(layer, "_rng", None)
        if isinstance(rng, np.random.Generator):
            entry["rng"] = rng.bit_generator.state
        mean = getattr(layer, "running_mean", None)
        if isinstance(mean, np.ndarray):
            # Eviction-time capture, not per-step work: the snapshot
            # must own its arrays so later training can't mutate it.
            entry["running_mean"] = mean.copy()  # reprolint: allow[R402]
            entry["running_var"] = layer.running_var.copy()  # reprolint: allow[R402]
        entries.append(entry or None)
    return entries


def _restore_layer_runtime_state(
    model: Sequential, entries: list[dict | None]
) -> None:
    if len(entries) != len(model.layers):
        raise ValueError("layer state does not match the model architecture")
    for layer, entry in zip(model.layers, entries):
        if not entry:
            continue
        if "rng" in entry:
            layer._rng.bit_generator.state = entry["rng"]
        if "running_mean" in entry:
            layer.running_mean[...] = entry["running_mean"]
            layer.running_var[...] = entry["running_var"]
