"""FedAT — tier-based semi-asynchronous FL (Chai et al., SC'21).

Cited in the paper's related work as the protocol-level alternative to
AdaFL: clients are grouped into *tiers* by responsiveness, each tier
aggregates synchronously (a tier round completes when every member has
contributed once), and tier rounds land on the global model
asynchronously with weights that favour infrequently-updating tiers to
counter the fast-tier bias.

This implementation runs inside :class:`repro.fl.async_engine.AsyncEngine`:
per-client updates stream in; the strategy buffers them per tier and
flushes a tier round when the tier's membership is covered.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client, ClientUpdate
from repro.fl.server import Server
from repro.fl.strategy import AsyncStrategy

__all__ = ["assign_tiers", "FedAT"]


def assign_tiers(response_times: np.ndarray, num_tiers: int) -> list[int]:
    """Group clients into tiers by expected response time.

    Returns a tier index per client; tier 0 is the fastest.  Clients
    are split into equal-size groups along the sorted response times
    (FedAT's profiling step).
    """
    response_times = np.asarray(response_times, dtype=np.float64)
    if response_times.ndim != 1 or response_times.size == 0:
        raise ValueError("response_times must be a non-empty 1-D array")
    if num_tiers < 1 or num_tiers > response_times.size:
        raise ValueError("num_tiers must be in [1, num_clients]")
    order = np.argsort(response_times, kind="stable")
    tiers = np.empty(response_times.size, dtype=np.int64)
    for tier, chunk in enumerate(np.array_split(order, num_tiers)):
        tiers[chunk] = tier
    return tiers.tolist()


class FedAT(AsyncStrategy):
    """Tiered asynchronous aggregation."""

    name = "fedat"

    def __init__(self, tiers: list[int], server_lr: float = 1.0):
        """``tiers[i]`` is the tier index of client ``i``."""
        if not tiers:
            raise ValueError("tiers must be non-empty")
        if min(tiers) < 0:
            raise ValueError("tier indices must be non-negative")
        if server_lr <= 0:
            raise ValueError("server_lr must be positive")
        self.tiers = list(tiers)
        self.num_tiers = max(tiers) + 1
        self.server_lr = server_lr
        self._members: list[set[int]] = [
            {cid for cid, t in enumerate(tiers) if t == tier}
            for tier in range(self.num_tiers)
        ]
        if any(not members for members in self._members):
            raise ValueError("every tier must have at least one client")
        self._pending: list[dict[int, np.ndarray]] = [
            {} for _ in range(self.num_tiers)
        ]
        self._tier_rounds = np.zeros(self.num_tiers, dtype=np.int64)

    def prepare(self, server: Server, clients: list[Client]) -> None:
        if len(clients) != len(self.tiers):
            raise ValueError("tier assignment does not match client count")
        self._pending = [{} for _ in range(self.num_tiers)]
        self._tier_rounds = np.zeros(self.num_tiers, dtype=np.int64)

    def _tier_weight(self, tier: int) -> float:
        """Cross-tier weight: slower (less frequent) tiers count more.

        FedAT weights tier m by the update count of its mirror in the
        frequency ranking, normalising over all tiers; before any
        flush every tier weighs equally.
        """
        counts = self._tier_rounds.astype(np.float64) + 1.0
        order = np.argsort(counts, kind="stable")  # ascending frequency
        mirrored = np.empty_like(counts)
        mirrored[order] = counts[order[::-1]]
        return float(mirrored[tier] / mirrored.sum())

    def on_update(
        self,
        server: Server,
        update: ClientUpdate,
        delta: np.ndarray,
        staleness: int,
    ) -> bool:
        del staleness  # tier synchrony bounds staleness by construction
        cid = update.client_id
        tier = self.tiers[cid]
        self._pending[tier][cid] = delta
        if set(self._pending[tier]) != self._members[tier]:
            return False
        # Tier round complete: intra-tier FedAvg, cross-tier weighting.
        tier_delta = np.mean(list(self._pending[tier].values()), axis=0)
        weight = self._tier_weight(tier)
        server.apply_delta(self.server_lr * weight * self.num_tiers * tier_delta)
        self._pending[tier] = {}
        self._tier_rounds[tier] += 1
        return True
