"""Virtual client population: a registry with lazy materialization.

The paper targets fleets of embedded devices, but a naive simulation
materialises every :class:`~repro.fl.client.Client` eagerly — a full
model replica, optimizer buffers, and (for AdaFL) ~O(d) of DGC
residual + momentum state per client.  That caps runs at a few dozen
clients while real federations have thousands to millions.

:class:`ClientPopulation` decouples the two scales:

* every client always has a cheap **descriptor** — its id plus scalar
  metadata kept in preallocated numpy arrays (utility score, last
  upload round, last seen round), a few bytes per client;
* the heavy **state** (the ``Client`` object: model replica, dataset
  shard, SCAFFOLD variate, DGC residuals, hoisted SGD momentum) exists
  only while the client is *materialised* — typically just the active
  cohort of a round.

Eviction follows a :class:`RetentionPolicy`:

* ``"live"`` — the compat path: every client stays materialised
  forever.  Constructing a population from a ``list[Client]`` uses
  this mode, so existing engines and the six pinned equivalence
  trajectories are bit-identical by construction.
* ``"spill"`` — on eviction the client's cross-round state (RNG
  streams, control variate, cached delta, compressor residuals) is
  sealed into a :mod:`repro.wire` blob frame on disk; RAM cost per
  evicted client is O(1).
* ``"regenerate"`` — everything derivable from the client factory
  (model, optimizer, dataset shard) is dropped and rebuilt from seed
  on the next materialization; only the irreducible cross-round state
  stays in RAM.  For stateless strategies (FedAvg/FedAsync without
  compressors) that is just an RNG state — a few hundred bytes.

All three policies produce **bit-identical trajectories**: the
extract/restore split on :class:`~repro.fl.client.Client` captures
every cross-round observable (shuffling RNG, dropout RNGs, batch-norm
running stats, control variates, cached deltas, compressor buffers),
and the pinned equivalence suite asserts it.

Materialization hooks let strategies attach per-client machinery
(AdaFL's DGC compressors) without ever iterating the full population;
eviction watchers let engines invalidate caches keyed on client
identity (the batched-compute trainer cache).  Watchers are
deliberately transient — they are dropped on pickling and re-registered
by the engine constructor on snapshot resume — while materialization
hooks (bound strategy methods) travel with the snapshot.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.fl.client import Client
from repro.wire.frame import seal, unseal

__all__ = ["RetentionPolicy", "ClientPopulation", "PopulationStats"]

_MODES = ("live", "spill", "regenerate")


@dataclass(frozen=True)
class RetentionPolicy:
    """What happens to a materialised client once the round moves on.

    ``max_live`` is the LRU cap on simultaneously materialised clients
    enforced by :meth:`ClientPopulation.evict_to_cap`; a round whose
    cohort exceeds the cap simply peaks above it until the engine's
    end-of-round trim.  ``spill_dir`` is required by (and only used
    with) the ``"spill"`` mode.  ``drop_delta_cache`` discards the
    cached ``last_delta`` on eviction — safe for strategies that never
    read it (all the dense baselines), an O(d)-per-client saving in
    ``"regenerate"`` mode, but it changes AdaFL trajectories, so it
    defaults to off.
    """

    mode: str = "live"
    max_live: int = 64
    spill_dir: str | Path | None = None
    drop_delta_cache: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown retention mode {self.mode!r}; expected {_MODES}")
        if self.max_live < 1:
            raise ValueError("max_live must be at least 1")
        if self.mode == "spill" and self.spill_dir is None:
            raise ValueError("spill mode requires a spill_dir")


@dataclass
class PopulationStats:
    """Lifecycle accounting — the bench's peak-RSS proxy."""

    materializations: int = 0
    restores: int = 0
    evictions: int = 0
    spills: int = 0
    peak_live: int = 0
    peak_live_nbytes: int = 0


class ClientPopulation:
    """Registry of client descriptors with lazy heavy-state lifecycle.

    Engines index it exactly like the ``list[Client]`` it replaces
    (``population[cid]`` materialises and returns the client), so the
    always-live compat mode is a drop-in wrapper around existing
    client lists.
    """

    # Registry-facade marker recognised by :meth:`ensure` (shared with
    # non-subclass facades like the transport's remote population).
    is_population = True

    def __init__(
        self,
        clients: list[Client] | None = None,
        *,
        num_clients: int | None = None,
        client_fn: Callable[[int], Client] | None = None,
        policy: RetentionPolicy | None = None,
    ):
        if clients is not None:
            if num_clients is not None or client_fn is not None:
                raise ValueError("pass either clients or num_clients/client_fn")
            if policy is not None and policy.mode != "live":
                raise ValueError("a population built from live clients is always-live")
            for pos, c in enumerate(clients):
                if c.client_id != pos:
                    raise ValueError(
                        f"client at position {pos} has id {c.client_id}; "
                        "populations require contiguous ids from 0"
                    )
            self._policy = policy or RetentionPolicy(mode="live")
            self._client_fn = None
            self._num = len(clients)
            self._live: dict[int, Client] = {c.client_id: c for c in clients}
        else:
            if num_clients is None or client_fn is None:
                raise ValueError("virtual populations need num_clients and client_fn")
            if num_clients < 1:
                raise ValueError("num_clients must be positive")
            if policy is None or policy.mode == "live":
                raise ValueError(
                    "virtual populations need a spill or regenerate policy"
                )
            self._policy = policy
            self._client_fn = client_fn
            self._num = int(num_clients)
            self._live = {}
        # Cross-round state of evicted clients (regenerate mode keeps
        # it in RAM; spill mode only parks live-at-snapshot state here).
        self._retained: dict[int, dict] = {}
        self._spilled: set[int] = set()
        # Preallocated per-client scalar metadata (the descriptors).
        self.scores = np.full(self._num, np.nan, dtype=np.float64)
        self.last_upload_round = np.full(self._num, -1, dtype=np.int64)
        self.last_seen_round = np.full(self._num, -1, dtype=np.int64)
        self._materialize_hooks: list[Callable[[Client], None]] = []
        self._evict_watchers: list[Callable[[int], None]] = []
        self.stats = PopulationStats()
        self._all_ids: list[int] | None = None
        self._all_ids_array: np.ndarray | None = None

    # -- registry ------------------------------------------------------
    def __len__(self) -> int:
        return self._num

    @property
    def policy(self) -> RetentionPolicy:
        """The retention policy governing eviction."""
        return self._policy

    @property
    def always_live(self) -> bool:
        """True on the compat path (population built from live clients)."""
        return self._client_fn is None

    def ids(self) -> range:
        """Every client id, cheapest possible iteration."""
        return range(self._num)

    def all_ids(self) -> list[int]:
        """Cached list of every id; callers must not mutate it."""
        if self._all_ids is None:
            self._all_ids = list(range(self._num))
        return self._all_ids

    def all_ids_array(self) -> np.ndarray:
        """Cached int64 array of every id; callers must not mutate it."""
        if self._all_ids_array is None:
            self._all_ids_array = np.arange(self._num, dtype=np.int64)
        return self._all_ids_array

    def initial_ids(self, limit: int | None) -> range:
        """The ids an async engine boots with (``limit`` caps the fan-out)."""
        if limit is None:
            return range(self._num)
        return range(min(int(limit), self._num))

    # -- materialization -----------------------------------------------
    def __getitem__(self, cid: int) -> Client:
        return self.client(cid)

    def client(self, cid: int) -> Client:
        """Materialise (or fetch) one client, touching its LRU slot."""
        live = self._live
        c = live.get(cid)
        if c is not None:
            if not self.always_live:
                # dict preserves insertion order; re-inserting moves the
                # client to the most-recently-used end.
                del live[cid]
                live[cid] = c
            return c
        if self._client_fn is None:
            raise KeyError(f"client id {cid} out of range")
        if not 0 <= cid < self._num:
            raise KeyError(f"client id {cid} out of range")
        c = self._client_fn(cid)
        if c.client_id != cid:
            raise ValueError(
                f"client_fn({cid}) built a client with id {c.client_id}"
            )
        for hook in self._materialize_hooks:
            hook(c)
        state = self._take_state(cid)
        if state is not None:
            c.restore_state(state)
            self.stats.restores += 1
        live[cid] = c
        self.stats.materializations += 1
        if len(live) > self.stats.peak_live:
            self.stats.peak_live = len(live)
            self.stats.peak_live_nbytes = max(
                self.stats.peak_live_nbytes, self.live_nbytes()
            )
        return c

    def _take_state(self, cid: int) -> dict | None:
        state = self._retained.pop(cid, None)
        if state is not None:
            return state
        if cid in self._spilled:
            # Read and decode *before* dropping the spill marker: a
            # failed read must leave the blob claimable, or the client
            # silently restarts from a fresh trajectory.
            blob = self._spill_path(cid).read_bytes()
            state = pickle.loads(unseal(blob))
            self._spilled.discard(cid)
            return state
        return None

    def _spill_path(self, cid: int) -> Path:
        return Path(self._policy.spill_dir) / f"client-{cid:08d}.blob"

    # -- eviction ------------------------------------------------------
    def release(self, cid: int) -> None:
        """Evict one client immediately (no-op when always-live or absent)."""
        if self.always_live:
            return
        c = self._live.pop(cid, None)
        if c is not None:
            self._evict(cid, c)

    def evict_to_cap(self) -> None:
        """Trim live clients to ``policy.max_live``, least-recent first."""
        if self.always_live:
            return
        live = self._live
        if live:
            # Clients gain weight after materialization (optimizer
            # buffers, attached compressors), so re-sample the byte
            # peak at trim time, when the cohort is fully loaded.
            self.stats.peak_live_nbytes = max(
                self.stats.peak_live_nbytes, self.live_nbytes()
            )
        cap = self._policy.max_live
        while len(live) > cap:
            cid = next(iter(live))
            self._evict(cid, live.pop(cid))

    def _evict(self, cid: int, client: Client) -> None:
        state = client.extract_state()
        if self._policy.drop_delta_cache:
            state["last_delta"] = None
        if self._policy.mode == "spill":
            path = self._spill_path(cid)
            os.makedirs(path.parent, exist_ok=True)
            blob = seal(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
            tmp = path.with_name(path.name + ".tmp")
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
            self._spilled.add(cid)
            self.stats.spills += 1
        else:
            self._retained[cid] = state
        self.stats.evictions += 1
        for watcher in self._evict_watchers:
            watcher(cid)

    # -- hooks ---------------------------------------------------------
    def on_materialize(self, hook: Callable[[Client], None]) -> None:
        """Run ``hook(client)`` on every fresh materialization.

        On the always-live path the hook is applied to every client
        immediately (in id order) and not stored — matching the eager
        attach loop it replaces.  Virtual populations store the hook;
        it must be picklable (e.g. a bound strategy method) so snapshot
        resume keeps re-attaching state.
        """
        if self.always_live:
            for cid in range(self._num):
                hook(self._live[cid])
            return
        self._materialize_hooks.append(hook)

    def on_evict(self, watcher: Callable[[int], None]) -> None:
        """Run ``watcher(cid)`` after each eviction.

        Watchers are transient (dropped on pickling): engines use them
        for session-local caches and re-register at construction.
        """
        self._evict_watchers.append(watcher)

    # -- metadata ------------------------------------------------------
    def note_seen(self, ids, round_index: int) -> None:
        """Stamp ``last_seen_round`` for a cohort of ids."""
        if len(ids):
            self.last_seen_round[np.asarray(ids, dtype=np.int64)] = round_index

    # -- accounting ----------------------------------------------------
    @property
    def live_count(self) -> int:
        """How many clients are materialised right now."""
        return len(self._live)

    def live_ids(self) -> Iterator[int]:
        """Ids of currently materialised clients, LRU order."""
        return iter(self._live)

    def live_nbytes(self) -> int:
        """Heavy bytes held by materialised clients (peak-RSS proxy)."""
        return sum(c.state_nbytes() for c in self._live.values())

    def retained_nbytes(self) -> int:
        """Bytes of evicted cross-round state kept in RAM."""
        return sum(_state_nbytes(s) for s in self._retained.values())

    def descriptor_nbytes(self) -> int:
        """Bytes of the always-resident per-client metadata arrays."""
        return (
            self.scores.nbytes
            + self.last_upload_round.nbytes
            + self.last_seen_round.nbytes
        )

    # -- snapshots -----------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_evict_watchers"] = []
        if not self.always_live:
            # Snapshot cost is O(retained + live), never O(population):
            # live clients collapse to their extracted cross-round
            # state and re-materialise lazily after resume.
            retained = dict(state["_retained"])
            for cid, c in state["_live"].items():
                retained[cid] = c.extract_state()
            state["_retained"] = retained
            state["_live"] = {}
            state["_spilled"] = set(state["_spilled"]) - set(retained)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- construction helpers ------------------------------------------
    @classmethod
    def ensure(cls, clients) -> "ClientPopulation":
        """Wrap a ``list[Client]`` (compat) or pass a population through.

        The duck check (``is_population``) admits registry facades that
        are not subclasses — e.g. the socket transport's remote
        population, whose clients live in worker processes.
        """
        if isinstance(clients, cls) or getattr(clients, "is_population", False):
            return clients
        return cls(list(clients))


def _state_nbytes(state: dict) -> int:
    total = 0
    for value in state.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            total += _state_nbytes(value)
        elif isinstance(value, (list, tuple)):
            total += sum(_state_nbytes(v) for v in value if isinstance(v, dict))
    return total
