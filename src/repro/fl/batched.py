"""Engine glue for the batched multi-client compute kernel.

:func:`train_clients_batched` runs a cohort of clients through
:class:`repro.nn.batched.MultiClientTrainer` and rebuilds the exact
per-client :class:`~repro.fl.client.ClientUpdate` objects the serial
``Client.local_train`` loop would have produced — same deltas, same
losses, same SCAFFOLD control-variate evolution, bit for bit.

The function returns ``None`` whenever the cohort cannot be fused
(fewer than two clients, strategy kwargs beyond SCAFFOLD's
``server_control``, mixed scaffold/non-scaffold cohorts, or a model
outside the kernel's layer support); the engines then fall back to the
serial oracle path.  Unsupported cohorts are negatively cached so the
construction cost is paid once, not per round.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.fl.client import _TRAIN_FLOP_FACTOR, Client, ClientUpdate
from repro.fl.config import LocalTrainingConfig
from repro.nn.batched import MultiClientTrainer, UnsupportedModelError

__all__ = ["train_clients_batched"]

# Negative-cache sentinel: this cohort/model combination cannot batch.
_UNSUPPORTED = object()


def train_clients_batched(
    cohort: list[Client],
    global_params: np.ndarray,
    config: LocalTrainingConfig,
    round_index: int = 0,
    kwargs_by_cid: dict[int, dict[str, Any]] | None = None,
    cache: dict | None = None,
) -> dict[int, ClientUpdate] | None:
    """Fused local training for a cohort; ``None`` means fall back.

    ``kwargs_by_cid`` carries each client's ``client_train_kwargs`` from
    the strategy; only SCAFFOLD's ``server_control`` is batchable.  When
    a ``cache`` dict is supplied, the trainer (parameter stacks, scratch
    buffers, conv workspaces) is reused across rounds for the same
    cohort and config.
    """
    if len(cohort) < 2:
        return None
    kwargs_by_cid = kwargs_by_cid or {}
    controls: list[np.ndarray | None] = []
    for c in cohort:
        kw = kwargs_by_cid.get(c.client_id, {})
        if any(k != "server_control" for k in kw):
            return None
        controls.append(kw.get("server_control"))
    use_scaffold = controls[0] is not None
    if any((sc is not None) != use_scaffold for sc in controls):
        return None

    key = (tuple(c.client_id for c in cohort), config, use_scaffold)
    trainer = cache.get(key) if cache is not None else None
    if trainer is _UNSUPPORTED:
        return None
    if trainer is None:
        try:
            trainer = MultiClientTrainer(
                [c._model for c in cohort],
                [c.dataset.x for c in cohort],
                [c.dataset.y for c in cohort],
                [c._rng for c in cohort],
                local_epochs=config.local_epochs,
                batch_size=config.batch_size,
                lr=config.lr,
                momentum=config.momentum,
                weight_decay=config.weight_decay,
                prox_mu=config.prox_mu,
                max_batches=config.max_batches,
                use_corrections=use_scaffold,
            )
        except UnsupportedModelError:
            if cache is not None:
                cache[key] = _UNSUPPORTED
            return None
        if cache is not None:
            cache[key] = trainer

    corrections = None
    if use_scaffold:
        for c in cohort:
            if c.control_variate is None:
                c.control_variate = np.zeros_like(global_params)
        corrections = [
            sc - c.control_variate for c, sc in zip(cohort, controls)
        ]

    results = trainer.run(global_params, corrections=corrections)

    updates: dict[int, ClientUpdate] = {}
    for c, sc, res in zip(cohort, controls, results):
        local_params = c._model.get_flat_params()
        delta = local_params - global_params
        c.last_delta = delta
        extras: dict[str, Any] = {}
        if use_scaffold and res.steps > 0:
            # SCAFFOLD option II, exactly as in Client.local_train.
            new_control = (
                c.control_variate
                - sc
                + (global_params - local_params) / (res.steps * config.lr)
            )
            extras["control_delta"] = new_control - c.control_variate
            c.control_variate = new_control
        flops = _TRAIN_FLOP_FACTOR * c._model.flops_per_sample() * res.samples_seen
        updates[c.client_id] = ClientUpdate(
            client_id=c.client_id,
            round_index=round_index,
            num_samples=c.num_samples,
            delta=delta,
            train_loss=float(np.mean(res.losses)) if res.losses else 0.0,
            flops=flops,
            extras=extras,
        )
    return updates
