"""Crash-safe run snapshots with bit-identical resume.

A snapshot is a single pickle of everything a run needs to continue
exactly where it stopped: the global model vector, every client's
local state (model buffers, shuffling RNG, control variates), the
strategy, the fault/chaos models, the kernel clock with its pending
event queue, and the exact state of every RNG stream.  Because the
whole state is one ``pickle.dump``, shared references inside the run
(e.g. a delta aliased by two queued duplicate deliveries) survive the
round trip intact.

Two properties make resume *bit-identical* rather than merely
approximate:

* every source of randomness — the kernel root generator, per-client
  streams, derived fault/retry streams, client shuffling RNGs — is
  captured and restored in place, so the continued run draws the exact
  sequence the uninterrupted run would have drawn;
* the trace sequence counter and the metrics reducer travel with the
  snapshot, so the resumed engine's JSONL trace is the byte-for-byte
  suffix of the uninterrupted run's trace and its final
  :class:`~repro.fl.metrics.RunResult` covers the whole run.

Writes are atomic (temp file + ``os.replace``): a crash mid-write
leaves the previous snapshot intact.  Live trace sinks (open files)
are deliberately *not* part of the snapshot — a resumed run attaches
fresh sinks via ``load_snapshot(..., trace=...)``.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.sim import EventTrace, SimKernel
from repro.wire.frame import MAGIC, seal, unseal

__all__ = ["SNAPSHOT_VERSION", "save_snapshot", "load_snapshot", "kernel_state"]

SNAPSHOT_VERSION = 1


def kernel_state(kernel: SimKernel) -> dict:
    """The kernel's mutable state (clock, queue, RNG streams)."""
    return {
        "now": kernel.queue.now,
        "heap": list(kernel.queue._heap),
        "queue_seq": kernel.queue._seq,
        "rng": kernel.rng,
        "client_rngs": dict(kernel._client_rngs),
        "streams": dict(kernel._streams),
    }


def _restore_kernel(kernel: SimKernel, state: dict) -> None:
    kernel.queue.now = state["now"]
    kernel.queue._heap = list(state["heap"])
    kernel.queue._seq = state["queue_seq"]
    # The engine aliases ``kernel.rng`` at construction, so restore the
    # generator's state in place rather than rebinding the attribute.
    kernel.rng.bit_generator.state = state["rng"].bit_generator.state
    kernel._client_rngs.update(state["client_rngs"])
    kernel._streams.update(state["streams"])


def save_snapshot(engine, path) -> Path:
    """Atomically persist a running engine's full state to ``path``."""
    state = engine.snapshot_state()
    state["snapshot_version"] = SNAPSHOT_VERSION
    state["snapshot_every"] = engine.snapshot_every
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    # The pickle travels inside a sealed wire envelope, so a torn or
    # bit-rotted snapshot fails its CRC-32 at load instead of feeding
    # pickle a corrupted stream.
    blob = seal(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)
    return path


def load_snapshot(path, trace: EventTrace | None = None, keep_snapshotting: bool = True):
    """Rebuild an engine from a snapshot, ready to ``resume()``.

    ``trace`` attaches fresh sinks (e.g. a new JSONL file) to the
    resumed run; the restored trace continues the snapshotted sequence
    numbering, so concatenating the pre-crash and post-resume JSONL
    files reproduces the uninterrupted trace byte-for-byte.  With
    ``keep_snapshotting`` the resumed run stays crash-safe, writing
    future snapshots back to the same file.
    """
    path = Path(path)
    raw = path.read_bytes()
    if raw[: len(MAGIC)] == MAGIC:
        state = pickle.loads(unseal(raw))
    else:  # pre-envelope snapshot: a bare pickle stream
        state = pickle.loads(raw)
    version = state.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {version!r}")

    common = dict(
        server=state["server"],
        clients=state["clients"],
        strategy=state["strategy"],
        config=state["config"],
        network=state["network"],
        device_flops=state["device_flops"],
        churn=state["churn"],
        faults=state["faults"],
        chaos=state["chaos"],
        trace=trace,
        snapshot_path=path if keep_snapshotting else None,
        snapshot_every=state["snapshot_every"],
    )
    if state["mode"] == "sync":
        from repro.fl.sync_engine import SyncEngine

        engine = SyncEngine(**common)
    elif state["mode"] == "async":
        from repro.fl.async_engine import AsyncEngine

        engine = AsyncEngine(**common)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown engine mode {state['mode']!r}")

    _restore_kernel(engine._kernel, state["kernel"])
    engine._trace._seq = state["trace_seq"]
    # The constructor attached a fresh reducer; swap the snapshotted
    # one (which holds the already-closed records) back in.
    engine._trace._sinks.remove(engine._reducer)
    engine._reducer = engine._trace.add_sink(state["reducer"])
    engine._validator = state["validator"]
    engine.restore_extra(state["extra"])
    return engine
