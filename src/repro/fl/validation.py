"""Server-side update validation and robust aggregation guards.

The server historically trusted every delivered payload bit-for-bit;
one NaN-poisoned upload therefore poisons the global model forever
(NaN propagates through every weighted average).  This module screens
updates before they reach the model:

* **frame integrity** — every upload travels as a
  :class:`repro.wire.frame.Frame` whose header carries a CRC-32 of the
  payload; :func:`verify_frame` turns a failed parse into the
  ``"corrupt_frame"`` rejection (the detector for in-flight bit
  corruption, which no numeric screen can see reliably);
* **non-finite screening** — a single ``np.sum`` pass is a sound
  detector (any NaN/Inf coordinate makes the sum non-finite);
* **L2-norm screening** — rejects norm blow-ups above ``max_norm``;
* **duplicate rejection** — engines stamp every produced update with a
  monotone ``upload_serial`` (in ``ClientUpdate.extras``); a serial
  seen twice is a replay.  Serial-based, not (client, version)-based,
  because buffered-async strategies legitimately accept two uploads
  trained from the same base version;
* **staleness gating** — asynchronous updates older than
  ``max_staleness`` server versions are refused;
* **trimmed-mean fallback** — when at least one update was rejected in
  a synchronous round, the remaining deltas can be folded with a
  coordinate-wise trimmed mean instead of the strategy's aggregator,
  bounding the influence of any corruption the screens missed.

Cost model (see ``benchmarks/bench_hotpath.py``, section
``resilience``): the O(d) screens run *per update* only in
``prescreen`` mode (or when ``max_norm`` is set, which needs per-update
norms).  The default is deferred screening — the engine aggregates
optimistically, screens the single aggregate once, and only on a hit
walks back to find the culprits, rolls the server back, and
re-aggregates the survivors.  One O(d) pass per round amortises over
the fleet, keeping validation under the 5% aggregation-overhead
budget.  The rollback path re-runs aggregation, so strategies whose
``aggregate`` has side effects (server momentum, Adam moments) may
advance that internal state twice in rounds where corruption actually
fired; use ``prescreen=True`` (or the trimmed-mean fallback) when
studying corruption under such strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.wire.frame import FrameError
from repro.wire.frame import Frame as _Frame

__all__ = ["ValidationConfig", "UpdateValidator", "trimmed_mean", "verify_frame"]


def verify_frame(
    frame_bytes: bytes, max_payload_nbytes: int | None = None
) -> str | None:
    """``"corrupt_frame"`` if the buffer fails frame validation.

    Parses the wire frame and checks the header CRC-32 against the
    payload; any malformation — bad magic, truncated payload, a
    declared length above ``max_payload_nbytes``, CRC mismatch from a
    flipped bit — yields the rejection reason.  Unlike the numeric
    screens this runs unconditionally: a damaged frame is never
    decodable, whatever the validation config says.
    """
    try:
        _Frame.from_bytes(frame_bytes, max_payload_nbytes=max_payload_nbytes)
    except FrameError:
        return "corrupt_frame"
    return None


@dataclass(frozen=True)
class ValidationConfig:
    """What the server refuses, and how it recovers."""

    forbid_nonfinite: bool = True
    max_norm: float | None = None
    reject_duplicates: bool = True
    max_staleness: int | None = None
    prescreen: bool = False
    trimmed_mean_fallback: bool = False
    trim_ratio: float = 0.2

    def __post_init__(self) -> None:
        if self.max_norm is not None and self.max_norm <= 0:
            raise ValueError("max_norm must be positive or None")
        if self.max_staleness is not None and self.max_staleness < 0:
            raise ValueError("max_staleness must be non-negative or None")
        if not 0.0 <= self.trim_ratio < 0.5:
            raise ValueError("trim_ratio must be in [0, 0.5)")

    @property
    def per_update_screen(self) -> bool:
        """Whether O(d) screens must run per update (vs once per round)."""
        return self.prescreen or self.max_norm is not None


def trimmed_mean(deltas: list[np.ndarray], trim_ratio: float = 0.2) -> np.ndarray:
    """Coordinate-wise trimmed mean of client deltas.

    Discards the ``floor(trim_ratio * n)`` smallest and largest values
    per coordinate before averaging — the classic robust aggregator.
    NaN partitions to the top, so poisoned coordinates fall inside the
    trimmed tail whenever the number of corrupted updates is at most
    the trim count.

    Implementation: a multi-``kth`` :func:`np.partition` pins every
    position in ``[k, n - k)`` to exactly the value a full sort would
    put there — O(n) per coordinate instead of O(n log n), and the
    surviving slice (hence the mean) is bit-identical to the previous
    full-sort implementation.
    """
    if not deltas:
        raise ValueError("cannot trim-average zero deltas")
    if not 0.0 <= trim_ratio < 0.5:
        raise ValueError("trim_ratio must be in [0, 0.5)")
    stack = np.stack(deltas)
    n = stack.shape[0]
    k = int(math.floor(trim_ratio * n))
    if 2 * k >= n:
        k = (n - 1) // 2
    if k == 0:
        return stack.mean(axis=0)
    stack.partition(np.arange(k, n - k, dtype=np.intp), axis=0)
    return stack[k : n - k].mean(axis=0)


class UpdateValidator:
    """Stateful screening pipeline attached to an engine.

    Owns the monotone upload-serial counter and the set of serials the
    server has already accepted or refused, so duplicates are caught
    across rounds.  Screening verdicts are returned as trace drop
    reasons (``"corrupt"`` / ``"stale"``) or None for a clean update.
    """

    def __init__(self, config: ValidationConfig):
        self.config = config
        self._next_serial = 0
        self._seen: set[int] = set()

    # -- serial stamping ----------------------------------------------
    def stamp(self, update) -> None:
        """Assign the next upload serial to a freshly produced update."""
        update.extras["upload_serial"] = self._next_serial
        self._next_serial += 1

    # -- O(1) checks ---------------------------------------------------
    def check_replay(self, update) -> str | None:
        """``"stale"`` if this exact upload was already processed."""
        if not self.config.reject_duplicates:
            return None
        serial = update.extras.get("upload_serial")
        if serial is None:
            return None
        if serial in self._seen:
            return "stale"
        self._seen.add(serial)
        return None

    def check_staleness(self, staleness: int) -> str | None:
        """``"stale"`` if the update exceeds the staleness bound."""
        limit = self.config.max_staleness
        if limit is not None and staleness > limit:
            return "stale"
        return None

    # -- O(d) screens --------------------------------------------------
    def screen(self, delta: np.ndarray) -> str | None:
        """``"corrupt"`` if the vector is non-finite or over-norm."""
        if self.config.forbid_nonfinite:
            # One reduction pass: any NaN/Inf coordinate makes the sum
            # non-finite (opposite infinities yield NaN), and a finite
            # sum can never arise from non-finite inputs.
            if not math.isfinite(float(np.sum(delta))):
                return "corrupt"
        if self.config.max_norm is not None:
            sq = float(np.dot(delta, delta))
            if not math.isfinite(sq) or sq > self.config.max_norm**2:
                return "corrupt"
        return None

    def screen_aggregate(self, params: np.ndarray) -> bool:
        """Did aggregation let corruption through?  (Deferred mode.)

        Only the non-finite screen applies to an aggregate — a sum of
        clean deltas may legitimately exceed any per-update norm bound.
        """
        if not self.config.forbid_nonfinite:
            return False
        return not math.isfinite(float(np.sum(params)))
