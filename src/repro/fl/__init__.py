"""Federated-learning framework: clients, server, strategies, engines."""

from repro.fl.async_engine import AsyncEngine
from repro.fl.baselines import (
    ASYNC_BASELINES,
    SYNC_BASELINES,
    FedAdam,
    FedAsync,
    FedAvg,
    FedAvgM,
    FedBuff,
    FedProx,
    Scaffold,
)
from repro.fl.client import Client, ClientUpdate
from repro.fl.config import FederationConfig, LocalTrainingConfig
from repro.fl.faults import FaultInjector
from repro.fl.fedat import FedAT, assign_tiers
from repro.fl.metrics import RoundRecord, RunResult
from repro.fl.persist import (
    load_checkpoint,
    load_run_result,
    save_checkpoint,
    save_run_result,
)
from repro.fl.population import ClientPopulation, PopulationStats, RetentionPolicy
from repro.fl.server import Server
from repro.fl.snapshot import load_snapshot, save_snapshot
from repro.fl.strategy import (
    AsyncStrategy,
    RoundContext,
    SyncStrategy,
    UploadPacket,
    masked_weighted_average,
    weighted_average,
)
from repro.fl.sync_engine import SyncEngine
from repro.fl.validation import UpdateValidator, ValidationConfig, trimmed_mean

__all__ = [
    "Client",
    "ClientUpdate",
    "ClientPopulation",
    "RetentionPolicy",
    "PopulationStats",
    "Server",
    "LocalTrainingConfig",
    "FederationConfig",
    "RoundRecord",
    "save_run_result",
    "load_run_result",
    "save_checkpoint",
    "load_checkpoint",
    "RunResult",
    "FaultInjector",
    "FedAT",
    "assign_tiers",
    "SyncStrategy",
    "AsyncStrategy",
    "RoundContext",
    "UploadPacket",
    "weighted_average",
    "masked_weighted_average",
    "FedAvg",
    "FedAvgM",
    "FedProx",
    "FedAdam",
    "Scaffold",
    "FedAsync",
    "FedBuff",
    "SYNC_BASELINES",
    "ASYNC_BASELINES",
    "SyncEngine",
    "AsyncEngine",
    "ValidationConfig",
    "UpdateValidator",
    "trimmed_mean",
    "save_snapshot",
    "load_snapshot",
]
