"""Gradient-geometry diagnostics.

The paper's design rests on gradient similarity being informative:
aligned clients help convergence, misaligned ones inject noise.  These
helpers make that geometry observable — pairwise client similarity
matrices, per-client alignment with the aggregate, and a dispersion
summary that quantifies how non-IID a federation *looks* from its
gradients (useful to sanity-check a partitioner, or to explain a
selection policy's behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.utility import cosine_similarity

__all__ = [
    "pairwise_similarity",
    "alignment_with_mean",
    "GradientDispersion",
    "gradient_dispersion",
]


def _stack(deltas: list[np.ndarray]) -> np.ndarray:
    if not deltas:
        raise ValueError("need at least one delta")
    dims = {d.shape for d in deltas}
    if len(dims) != 1:
        raise ValueError(f"deltas have mismatched shapes: {dims}")
    return np.stack([np.asarray(d, dtype=np.float64).ravel() for d in deltas])


def pairwise_similarity(deltas: list[np.ndarray]) -> np.ndarray:
    """Symmetric matrix of cosine similarities between client deltas."""
    stacked = _stack(deltas)
    n = stacked.shape[0]
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            matrix[i, j] = matrix[j, i] = cosine_similarity(stacked[i], stacked[j])
    return matrix


def alignment_with_mean(deltas: list[np.ndarray]) -> np.ndarray:
    """Cosine of each delta against the fleet mean direction.

    This is exactly the similarity AdaFL's utility score sees one round
    later (the aggregate becomes the next global gradient).
    """
    stacked = _stack(deltas)
    mean = stacked.mean(axis=0)
    return np.array([cosine_similarity(row, mean) for row in stacked])


@dataclass(frozen=True)
class GradientDispersion:
    """Summary of how spread-out a federation's gradients are."""

    mean_pairwise_cosine: float
    min_pairwise_cosine: float
    mean_alignment: float  # with the fleet mean
    fraction_conflicting: float  # pairs with negative cosine

    @property
    def looks_iid(self) -> bool:
        """Heuristic: IID shards produce strongly clustered gradients."""
        return self.mean_pairwise_cosine > 0.5 and self.fraction_conflicting == 0.0


def gradient_dispersion(deltas: list[np.ndarray]) -> GradientDispersion:
    """Compute dispersion statistics for one round of client deltas."""
    matrix = pairwise_similarity(deltas)
    n = matrix.shape[0]
    if n < 2:
        return GradientDispersion(
            mean_pairwise_cosine=1.0,
            min_pairwise_cosine=1.0,
            mean_alignment=1.0,
            fraction_conflicting=0.0,
        )
    iu = np.triu_indices(n, k=1)
    off_diag = matrix[iu]
    return GradientDispersion(
        mean_pairwise_cosine=float(off_diag.mean()),
        min_pairwise_cosine=float(off_diag.min()),
        mean_alignment=float(alignment_with_mean(deltas).mean()),
        fraction_conflicting=float(np.mean(off_diag < 0.0)),
    )
