"""AdaFL: the paper's adaptive federated-learning framework.

Two strategies implement the design of §IV on top of the engines in
:mod:`repro.fl`:

* :class:`AdaFLSync` — top-k client selection by utility score
  (Algorithm 1) plus per-client adaptive DGC compression, run under
  the synchronous engine;
* :class:`AdaFLAsync` — fully asynchronous variant: every arriving
  update is applied FedAsync-style, clients with utility below ``tau``
  *halt* until the next global model version (saving their training
  and upload entirely), and upload compression follows the utility
  score.

Scoring note: in a deployment each client computes its own utility
score (an O(d) dot product against the last global gradient — the
~0.05% overhead of §V Q3) and reports it in a few bytes.  The
simulation lets the server read the client's cached local delta
directly; the report is charged at ``SCORE_REPORT_BYTES`` per upload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.dgc import DGCCompressor
from repro.core.compression_policy import AdaptiveCompressionPolicy
from repro.core.selection import SelectionResult, select_from_scores
from repro.core.utility import UtilityScorer
from repro.fl.client import Client, ClientUpdate
from repro.fl.baselines import FedAsync
from repro.fl.population import ClientPopulation
from repro.fl.server import Server
from repro.fl.strategy import (
    AsyncStrategy,
    RoundContext,
    SyncStrategy,
    UploadPacket,
    weighted_average,
)

__all__ = ["AdaFLConfig", "AdaFLSync", "AdaFLAsync", "SCORE_REPORT_BYTES"]

SCORE_REPORT_BYTES = 8  # one float64 utility score piggybacked per upload

# Fallback bandwidths when the run is configured without a network
# model: treated as a healthy symmetric link at the scorer's reference
# rate, so the bandwidth term saturates and selection is purely
# similarity-driven.
_DEFAULT_BW_MBPS = 100.0


@dataclass(frozen=True)
class AdaFLConfig:
    """Knobs shared by both AdaFL variants.

    ``tau_mode`` controls how the Algorithm-1 threshold is applied:

    * ``"absolute"`` — ``tau`` is the literal score threshold, exactly
      as Algorithm 1 states it.
    * ``"relative"`` — ``tau`` is a quantile of the current round's
      score distribution (e.g. 0.7 filters the lowest 70% of clients).
      Utility-score distributions shift as training converges, so a
      fixed absolute threshold either never binds or starves the
      federation; the relative mode keeps the *adaptive participation
      rate* behaviour the paper reports (r_p well below the baselines'
      0.5) robust across workloads.

    ``min_selected`` is a progress guarantee for absolute mode: if the
    threshold filters out every client, the top-``min_selected`` are
    selected anyway.  Without it the federation deadlocks — unselected
    clients never refresh the cached gradients their scores are
    computed from, so no score can ever rise back above ``tau``.

    Two optional stabilisers address the directional oscillation the
    paper's §IV discusses (cosine scores from minibatch gradients are
    noisy, and similarity-based selection self-reinforces under
    non-IID data):

    * ``score_smoothing`` — exponential moving average over each
      client's score (0 disables; 0.5 halves the noise);
    * ``rotation_bonus`` — a ranking bonus that grows linearly over
      ``rotation_horizon`` rounds since a client's last upload, so
      persistently unselected shards re-enter the federation instead
      of being starved.  The bonus affects ranking only; compression
      ratios still follow the raw utility.
    """

    k_max: int = 5
    tau: float = 0.5
    tau_mode: str = "absolute"
    min_selected: int = 1
    score_smoothing: float = 0.0
    rotation_bonus: float = 0.0
    rotation_horizon: int = 10
    scorer: UtilityScorer = field(default_factory=UtilityScorer)
    policy: AdaptiveCompressionPolicy = field(default_factory=AdaptiveCompressionPolicy)
    dgc_momentum: float = 0.9
    dgc_clip_norm: float | None = 5.0

    def __post_init__(self) -> None:
        if self.k_max < 1:
            raise ValueError("k_max must be at least 1")
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        if self.tau_mode not in ("absolute", "relative"):
            raise ValueError("tau_mode must be 'absolute' or 'relative'")
        if self.min_selected < 0:
            raise ValueError("min_selected must be non-negative")
        if not 0.0 <= self.score_smoothing < 1.0:
            raise ValueError("score_smoothing must be in [0, 1)")
        if self.rotation_bonus < 0:
            raise ValueError("rotation_bonus must be non-negative")
        if self.rotation_horizon < 1:
            raise ValueError("rotation_horizon must be positive")


class _AdaFLBase:
    """Shared scoring and compression machinery.

    Utility scores and upload-round bookkeeping live in the client
    registry's preallocated metadata arrays once :meth:`_bind_population`
    has run (NaN / -1 are the "never scored / never uploaded"
    sentinels), so per-round work never builds an O(population) dict.
    The pre-``prepare`` dict fallbacks keep the strategies unit-testable
    in isolation.  Compressors are owned by the clients themselves and
    attached through a registry materialization hook — a bound method,
    so it survives snapshot pickling and keeps re-attaching state after
    resume — never by an eager loop over the full population.
    """

    def __init__(self, config: AdaFLConfig):
        self.config = config
        self._scores: dict[int, float] = {}
        self._last_upload_round: dict[int, int] = {}
        self._in_flight: dict[int, object] = {}  # last un-ACKed payload per client
        self._pop: ClientPopulation | None = None
        self._dim = 0
        self._num_workers = 1

    def _bind_population(self, server: Server, clients) -> None:
        """One-time ``prepare`` body: adopt the registry, hook attach."""
        pop = ClientPopulation.ensure(clients)
        self._pop = pop
        self._dim = server.dim
        self._num_workers = len(pop)
        pop.on_materialize(self._attach_compressor)

    def _attach_compressor(self, client: Client) -> None:
        """Materialization hook: give the client its DGC compressor.

        Runs eagerly over every client on the always-live compat path
        and per-materialization on virtual populations; restored
        eviction state is imported into the fresh compressor afterwards
        by :meth:`~repro.fl.client.Client.restore_state`.
        """
        client.compressor = DGCCompressor(
            dim=self._dim,
            momentum=self.config.dgc_momentum,
            clip_norm=self.config.dgc_clip_norm,
            num_workers=self._num_workers,
        )

    # -- score storage (registry metadata arrays, dict fallback) -------
    def _prev_score(self, cid: int) -> float | None:
        if self._pop is not None:
            value = float(self._pop.scores[cid])
            return None if np.isnan(value) else value
        return self._scores.get(cid)

    def _store_score(self, cid: int, score: float) -> None:
        if self._pop is not None:
            self._pop.scores[cid] = score
        else:
            self._scores[cid] = score

    def _note_upload(self, cid: int, round_index: int) -> None:
        if self._pop is not None:
            self._pop.last_upload_round[cid] = round_index
        else:
            self._last_upload_round[cid] = round_index

    def _bandwidths(self, network, cid: int, t: float) -> tuple[float, float]:
        if network is None:
            return _DEFAULT_BW_MBPS, _DEFAULT_BW_MBPS
        endpoint = network[cid]
        return endpoint.downlink_bandwidth(t), endpoint.uplink_bandwidth(t)

    def _score_client(
        self, client: Client, server: Server, bw_down: float, bw_up: float
    ) -> float:
        score = self.config.scorer.score(
            bw_down, bw_up, client.last_delta, server.global_delta
        )
        smoothing = self.config.score_smoothing
        if smoothing > 0.0:
            prev = self._prev_score(client.client_id)
            if prev is not None:
                score = smoothing * prev + (1.0 - smoothing) * score
        self._store_score(client.client_id, score)
        return score

    def _rotation_adjusted(self, cid: int, score: float, round_index: int) -> float:
        """Ranking score with the anti-starvation rotation bonus."""
        if self.config.rotation_bonus == 0.0:
            return score
        if self._pop is not None:
            last_round = int(self._pop.last_upload_round[cid])
            last = None if last_round < 0 else last_round
        else:
            last = self._last_upload_round.get(cid)
        waited = round_index if last is None else round_index - last
        fraction = min(1.0, waited / self.config.rotation_horizon)
        return score + self.config.rotation_bonus * fraction

    def _compress(
        self, client: Client, update: ClientUpdate, round_index: int, model_version: int
    ) -> UploadPacket:
        compressor = client.compressor
        if compressor is None:
            raise RuntimeError("AdaFL compressor missing — was prepare() run?")
        utility = self._prev_score(client.client_id)
        if utility is None:
            utility = 1.0
        ratio = self.config.policy.ratio_for(utility, round_index)
        payload = compressor.compress(update.delta, ratio=ratio)
        self._in_flight[client.client_id] = payload
        delta = compressor.decompress(payload)
        return UploadPacket(
            delta=delta,
            frame=payload.to_frame(model_version),
            extra_bytes=SCORE_REPORT_BYTES,
        )

    def _handle_upload_result(self, client: Client, delivered: bool) -> None:
        """ACK/NACK for the client's last compressed upload.

        A NACK returns the payload's values to the client's DGC
        residual, so accumulated gradient information survives lossy
        links instead of vanishing with the dropped transfer.
        """
        payload = self._in_flight.pop(client.client_id, None)
        if payload is None or delivered:
            return
        client.compressor.restore(payload)

    @property
    def last_scores(self) -> dict[int, float]:
        """Most recent utility scores (diagnostics / overhead study).

        Built on demand from the registry's score array — O(scored),
        not O(population), since unscored entries stay NaN.
        """
        if self._pop is not None:
            scores = self._pop.scores
            return {
                int(cid): float(scores[cid]) for cid in np.flatnonzero(~np.isnan(scores))
            }
        return dict(self._scores)


class AdaFLSync(SyncStrategy, _AdaFLBase):
    """Synchronous AdaFL: Algorithm 1 selection + adaptive DGC."""

    name = "adafl"

    def __init__(self, config: AdaFLConfig | None = None):
        SyncStrategy.__init__(self, participation_rate=1.0)
        _AdaFLBase.__init__(self, config or AdaFLConfig())
        self.last_selection: SelectionResult | None = None

    def prepare(self, server: Server, clients) -> None:
        self._bind_population(server, clients)

    def select(
        self,
        available: list[int],
        rng: np.random.Generator,
        context: RoundContext,
    ) -> list[int]:
        del rng  # selection is deterministic given scores
        if not available:
            return []
        # Warm-up: equal participation from all clients "to adapt
        # gradually to diverse data patterns" (§IV).
        if self.config.policy.in_warmup(context.round_index):
            self.last_selection = None
            return sorted(available)

        # Parallel ids/scores arrays in `available` order — no
        # O(population) dict.  Scoring materialises each available
        # client (the probe needs its model); AdaFL is therefore an
        # inherently probe-everyone design, and population-scale runs
        # bound `available` via faults/churn, not via this loop.
        ids = np.fromiter(available, dtype=np.int64, count=len(available))
        scores_arr = np.empty(ids.size, dtype=np.float64)
        for pos, cid in enumerate(available):
            client = context.clients[cid]
            # Paper §IV: on receiving the global model, every client
            # interrupts its local training to compute a utility score
            # from its *current* local gradient.  Refresh the cached
            # direction with a one-minibatch probe so scores track the
            # evolving global model instead of freezing at each
            # client's last participation.
            if context.local_config is not None:
                client.probe_delta(context.server.params, context.local_config)
            bw_down, bw_up = self._bandwidths(context.network, cid, context.sim_time_s)
            raw = self._score_client(client, context.server, bw_down, bw_up)
            scores_arr[pos] = self._rotation_adjusted(cid, raw, context.round_index)

        if self.config.tau_mode == "relative":
            tau = float(np.quantile(scores_arr, self.config.tau))
            tau = min(tau, 1.0)
        else:
            tau = self.config.tau
        result = select_from_scores(ids, scores_arr, k=self.config.k_max, tau=tau)
        self.last_selection = result
        if not result.selected and self.config.min_selected > 0:
            # Progress guarantee: an empty round would freeze every
            # cached gradient (and hence every score) forever.
            fallback = select_from_scores(
                ids, scores_arr, k=self.config.min_selected, tau=0.0
            )
            return sorted(fallback.selected)
        return sorted(result.selected)

    def process_upload(
        self, client: Client, update: ClientUpdate, context: RoundContext
    ) -> UploadPacket:
        self._note_upload(client.client_id, context.round_index)
        return self._compress(
            client, update, context.round_index, context.server.version
        )

    def on_upload_result(
        self, client: Client, delivered: bool, context: RoundContext
    ) -> None:
        self._handle_upload_result(client, delivered)

    def aggregate(
        self, server: Server, updates: list[ClientUpdate], context: RoundContext
    ) -> None:
        del context
        if not updates:
            return
        server.apply_delta(weighted_average(updates))


class AdaFLAsync(AsyncStrategy, _AdaFLBase):
    """Fully asynchronous AdaFL with utility-gated halting."""

    name = "adafl-async"

    def __init__(
        self,
        config: AdaFLConfig | None = None,
        alpha: float = 0.6,
        poly_a: float = 0.5,
        network=None,
    ):
        AsyncStrategy.__init__(self)
        if config is None:
            # Table II reports the async compression span as 4x-105x.
            config = AdaFLConfig(
                policy=AdaptiveCompressionPolicy(min_ratio=4.0, max_ratio=105.0)
            )
        _AdaFLBase.__init__(self, config)
        self._mixer = FedAsync(alpha=alpha, poly_a=poly_a)
        self._network = network

    def prepare(self, server: Server, clients) -> None:
        self._bind_population(server, clients)

    def should_train(self, client: Client, server: Server, sim_time_s: float) -> bool:
        # Warm-up is measured in server versions for the async variant.
        if self.config.policy.in_warmup(server.version):
            self._store_score(client.client_id, 1.0)
            return True
        bw_down, bw_up = self._bandwidths(self._network, client.client_id, sim_time_s)
        score = self._score_client(client, server, bw_down, bw_up)
        return score >= self.config.tau

    def process_upload(
        self, client: Client, update: ClientUpdate, sim_time_s: float
    ) -> UploadPacket:
        del sim_time_s
        return self._compress(
            client,
            update,
            update.round_index,
            update.extras.get("base_version", 0),
        )

    def on_upload_result(self, client: Client, delivered: bool, sim_time_s: float) -> None:
        self._handle_upload_result(client, delivered)

    def on_update(
        self,
        server: Server,
        update: ClientUpdate,
        delta: np.ndarray,
        staleness: int,
    ) -> bool:
        alpha = self._mixer.effective_alpha(staleness)
        base_params = update.extras["base_params"]
        client_model = base_params + delta
        server.set_params(
            (1.0 - alpha) * server.params + alpha * client_model, copy=False
        )
        return True
