"""Adaptive node selection — Algorithm 1 of the paper.

Given per-client utility scores, filter out clients below the
threshold ``tau``, rank the rest by score descending, and keep at most
``K``.  The returned set satisfies the algorithm's stated constraints:

* ``|selected| <= K``;
* every selected client has ``S_i >= tau``;
* no unselected client outscores a selected one.

Two entry points share one implementation:

* :func:`select_from_scores` — the population-scale path: parallel
  ``ids``/``scores`` arrays straight from the client registry's
  metadata, ranked with ``np.argpartition`` so the cost is
  O(n + K log K), never a full O(n log n) sort of the population;
* :func:`select_clients` — the historical ``{client_id: S_i}`` dict
  API, now a thin adapter over the array path (bit-identical results,
  including the deterministic tie-break by ascending client id).

:func:`reservoir_sample` complements them for *uniform* choice: a
single-pass Algorithm-R sample over an id stream in O(k) memory, for
samplers that must never materialise an O(population) candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "SelectionResult",
    "select_clients",
    "select_from_scores",
    "reservoir_sample",
]

_EMPTY: tuple[int, ...] = ()


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selection pass."""

    selected: tuple[int, ...]
    filtered_out: tuple[int, ...]  # failed the tau threshold
    truncated: tuple[int, ...]  # passed tau but lost the top-K ranking

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def select_from_scores(
    ids: np.ndarray,
    scores: np.ndarray,
    k: int,
    tau: float,
    track_rejected: bool = True,
) -> SelectionResult:
    """Run Algorithm 1 over parallel ``ids``/``scores`` arrays.

    Ties are broken by client id (ascending) so selection is
    deterministic; the selected tuple is ordered by descending score.
    The top-K cut uses ``argpartition`` plus an exact tie resolution at
    the K-th score, so results match a full ``(-score, id)`` sort bit
    for bit without ever sorting more than the selected set.

    ``track_rejected=False`` skips building the ``filtered_out`` /
    ``truncated`` tuples — at population scale those are O(n) Python
    objects that diagnostics-only callers never read.
    """
    if k < 1:
        raise ValueError("K must be at least 1")
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")
    ids = np.asarray(ids, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if ids.shape != scores.shape or ids.ndim != 1:
        raise ValueError("ids and scores must be parallel 1-D arrays")

    pass_mask = scores >= tau  # NaN compares False: unscored never pass
    filtered_out = (
        tuple(int(i) for i in np.sort(ids[~pass_mask])) if track_rejected else _EMPTY
    )
    f_ids = ids[pass_mask]
    f_scores = scores[pass_mask]
    n = int(f_ids.size)
    k_prime = min(k, n)
    if k_prime == 0:
        return SelectionResult(_EMPTY, filtered_out, _EMPTY)

    if n > k_prime:
        # O(n) cut: the K-th ranked score, then exact (-score, id)
        # tie resolution at the boundary.
        part = np.argpartition(-f_scores, k_prime - 1)
        kth_score = f_scores[part[k_prime - 1]]
        strict_mask = f_scores > kth_score
        num_strict = int(np.count_nonzero(strict_mask))
        need = k_prime - num_strict
        tie_ids = f_ids[f_scores == kth_score]
        if need < tie_ids.size:
            tie_pick = np.partition(tie_ids, need - 1)[:need]
        else:
            tie_pick = tie_ids
        sel_ids = np.concatenate([f_ids[strict_mask], tie_pick])
        sel_scores = np.concatenate(
            [f_scores[strict_mask], np.full(tie_pick.size, kth_score)]
        )
    else:
        sel_ids = f_ids
        sel_scores = f_scores

    order = np.lexsort((sel_ids, -sel_scores))
    selected = tuple(int(i) for i in sel_ids[order])
    if track_rejected and n > k_prime:
        truncated_mask = ~np.isin(f_ids, sel_ids, assume_unique=False)
        truncated = tuple(int(i) for i in np.sort(f_ids[truncated_mask]))
    else:
        truncated = _EMPTY
    return SelectionResult(selected, filtered_out, truncated)


def select_clients(
    scores: dict[int, float],
    k: int,
    tau: float,
) -> SelectionResult:
    """Run Algorithm 1 over a ``{client_id: S_i}`` score map.

    Thin adapter over :func:`select_from_scores`; kept for callers
    holding per-round score dicts rather than registry arrays.
    """
    n = len(scores)
    ids = np.fromiter(scores.keys(), dtype=np.int64, count=n)
    vals = np.fromiter(scores.values(), dtype=np.float64, count=n)
    return select_from_scores(ids, vals, k, tau)


def reservoir_sample(
    ids: Iterable[int], k: int, rng: np.random.Generator
) -> list[int]:
    """Uniform ``k``-sample from an id stream in one pass, O(k) memory.

    Algorithm R: the candidate stream is consumed once and never
    materialised, so sampling a 100k-client registry costs the same
    memory as sampling ten clients.  The result preserves reservoir
    order (not sorted); callers needing determinism across runs pass a
    seeded generator.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    reservoir: list[int] = []
    for seen, cid in enumerate(ids):
        if seen < k:
            reservoir.append(int(cid))
            continue
        slot = int(rng.integers(0, seen + 1))
        if slot < k:
            reservoir[slot] = int(cid)
    return reservoir
