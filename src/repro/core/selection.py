"""Adaptive node selection — Algorithm 1 of the paper.

Given per-client utility scores, filter out clients below the
threshold ``tau``, rank the rest by score descending, and keep at most
``K``.  The returned set satisfies the algorithm's stated constraints:

* ``|selected| <= K``;
* every selected client has ``S_i >= tau``;
* no unselected client outscores a selected one.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SelectionResult", "select_clients"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one selection pass."""

    selected: tuple[int, ...]
    filtered_out: tuple[int, ...]  # failed the tau threshold
    truncated: tuple[int, ...]  # passed tau but lost the top-K ranking

    @property
    def num_selected(self) -> int:
        return len(self.selected)


def select_clients(
    scores: dict[int, float],
    k: int,
    tau: float,
) -> SelectionResult:
    """Run Algorithm 1 over a ``{client_id: S_i}`` score map.

    Ties are broken by client id (ascending) so selection is
    deterministic; the selected tuple is ordered by descending score.
    """
    if k < 1:
        raise ValueError("K must be at least 1")
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")

    filtered = [(cid, s) for cid, s in scores.items() if s >= tau]
    rejected = tuple(sorted(cid for cid, s in scores.items() if s < tau))
    # Sort by (-score, id): descending score, deterministic tie-break.
    filtered.sort(key=lambda item: (-item[1], item[0]))
    k_prime = min(k, len(filtered))
    selected = tuple(cid for cid, _ in filtered[:k_prime])
    truncated = tuple(sorted(cid for cid, _ in filtered[k_prime:]))
    return SelectionResult(selected=selected, filtered_out=rejected, truncated=truncated)
