"""Utility scores: Eq. 6 of the paper.

``S_i = f(B_i^down, B_i^up, U(g_i, g_hat))`` combines a gradient
similarity ``U`` between client ``i``'s local gradient and the
previous round's global gradient with the client's observable link
bandwidths.  The paper names cosine similarity as its choice of ``U``
(with L2-norm and Euclidean distance as alternatives) but leaves ``f``
unspecified; this implementation uses the convex combination

``S_i = w_sim * U_norm + w_bw * B_norm``

with ``U_norm`` the similarity mapped to [0, 1] and ``B_norm`` the
harmonic mean of uplink/downlink bandwidth normalised by a reference
rate and clipped to [0, 1].  The harmonic mean makes one dead
direction dominate (a client that cannot upload is useless no matter
how fast its downlink is).  The weights are exposed for the ablation
bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "cosine_similarity",
    "l2_similarity",
    "euclidean_similarity",
    "gradient_importance",
    "SIMILARITY_METRICS",
    "UtilityScorer",
]

_EPS = 1e-12


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of the angle between two flat vectors, in [-1, 1].

    Zero vectors yield 0 (no directional information).
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na < _EPS or nb < _EPS:
        return 0.0
    return float(np.clip(np.dot(a, b) / (na * nb), -1.0, 1.0))


def l2_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity from the L2 norm of the difference, in (0, 1].

    ``1 / (1 + ||a - b|| / (||b|| + eps))`` — scale-aware, so a local
    gradient far from the global one scores low even if aligned.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ref = float(np.linalg.norm(b))
    dist = float(np.linalg.norm(a - b))
    return 1.0 / (1.0 + dist / (ref + _EPS))


def euclidean_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Similarity from raw Euclidean distance, in (0, 1]: ``1/(1+||a-b||)``."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return 1.0 / (1.0 + float(np.linalg.norm(a - b)))


def gradient_importance(a: np.ndarray, b: np.ndarray) -> float:
    """Relative gradient magnitude in [0, 1]: ``||a|| / (||a|| + ||b||)``.

    A HeteRo-Select-style importance score: instead of asking whether
    the local direction *agrees* with the global one (cosine), it asks
    how much signal the client still carries relative to the global
    update.  Clients whose local gradient dwarfs the global delta score
    near 1 (they have something new to say); clients already in
    agreement with a large global step score near 0.  0.5 is the
    neutral point; two zero gradients yield 0 (no information).
    Plugs into :class:`UtilityScorer` beside the paper's cosine choice
    and hence into ``select_from_scores`` unchanged.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na < _EPS and nb < _EPS:
        return 0.0
    return na / (na + nb + _EPS)


SIMILARITY_METRICS = {
    "cosine": cosine_similarity,
    "l2": l2_similarity,
    "euclidean": euclidean_similarity,
    "importance": gradient_importance,
}


@dataclass(frozen=True)
class UtilityScorer:
    """Computes Eq. 6 utility scores.

    Parameters
    ----------
    metric:
        One of ``cosine`` (paper's choice), ``l2``, ``euclidean``.
    sim_weight, bw_weight:
        Convex-combination weights; must sum to a positive value (they
        are renormalised internally).
    bw_reference_mbps:
        Bandwidth at (or above) which the bandwidth term saturates at 1.
    default_similarity:
        Similarity assumed for clients with no cached gradient yet
        (before their first participation); 1.0 prioritises unknown
        clients, matching the warm-up philosophy.
    """

    metric: str = "cosine"
    sim_weight: float = 0.7
    bw_weight: float = 0.3
    bw_reference_mbps: float = 20.0
    default_similarity: float = 1.0

    def __post_init__(self) -> None:
        if self.metric not in SIMILARITY_METRICS:
            known = ", ".join(sorted(SIMILARITY_METRICS))
            raise ValueError(f"unknown metric {self.metric!r}; known: {known}")
        if self.sim_weight < 0 or self.bw_weight < 0:
            raise ValueError("weights must be non-negative")
        if self.sim_weight + self.bw_weight <= 0:
            raise ValueError("at least one weight must be positive")
        if self.bw_reference_mbps <= 0:
            raise ValueError("bw_reference_mbps must be positive")
        if not 0.0 <= self.default_similarity <= 1.0:
            raise ValueError("default_similarity must be in [0, 1]")

    # ------------------------------------------------------------------
    def similarity(self, local_grad: np.ndarray | None, global_grad: np.ndarray | None) -> float:
        """Normalised similarity ``U`` in [0, 1]."""
        if local_grad is None or global_grad is None:
            return self.default_similarity
        raw = SIMILARITY_METRICS[self.metric](local_grad, global_grad)
        if self.metric == "cosine":
            return (raw + 1.0) / 2.0  # [-1, 1] -> [0, 1]
        return raw

    def bandwidth_term(self, bw_down_mbps: float, bw_up_mbps: float) -> float:
        """Normalised bandwidth term in [0, 1] (harmonic mean of links)."""
        if bw_down_mbps < 0 or bw_up_mbps < 0:
            raise ValueError("bandwidths must be non-negative")
        if bw_down_mbps == 0.0 or bw_up_mbps == 0.0:
            return 0.0
        harmonic = 2.0 / (1.0 / bw_down_mbps + 1.0 / bw_up_mbps)
        return float(min(1.0, harmonic / self.bw_reference_mbps))

    def score(
        self,
        bw_down_mbps: float,
        bw_up_mbps: float,
        local_grad: np.ndarray | None,
        global_grad: np.ndarray | None,
    ) -> float:
        """``S_i`` in [0, 1] — Eq. 6."""
        total = self.sim_weight + self.bw_weight
        sim = self.similarity(local_grad, global_grad)
        bw = self.bandwidth_term(bw_down_mbps, bw_up_mbps)
        return (self.sim_weight * sim + self.bw_weight * bw) / total
