"""Adaptive compression-ratio policy (paper §IV, second component).

Maps a client's utility score onto a DGC compression ratio: high
utility → light compression (more information preserved), low utility
→ aggressive compression.  The interpolation is geometric — ratio
moves between ``min_ratio`` and ``max_ratio`` on a log scale — because
compression ratios in the paper span two orders of magnitude (4x to
210x in Table I).

During the warm-up rounds all clients get ``warmup_ratio`` (low),
"to ensure robust model initialization"; afterwards the ratio follows
the utility score continuously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["AdaptiveCompressionPolicy"]


@dataclass(frozen=True)
class AdaptiveCompressionPolicy:
    """Utility-score-driven compression schedule.

    Table I/II report AdaFL's sync range as 4x–210x and async range as
    4x–105x; those are the default bounds for the matching modes.
    """

    min_ratio: float = 4.0
    max_ratio: float = 210.0
    warmup_rounds: int = 5
    warmup_ratio: float = 4.0
    utility_floor: float = 0.0  # utility mapped to max_ratio
    utility_ceil: float = 1.0  # utility mapped to min_ratio

    def __post_init__(self) -> None:
        if self.min_ratio < 1.0:
            raise ValueError("min_ratio must be >= 1")
        if self.max_ratio < self.min_ratio:
            raise ValueError("max_ratio must be >= min_ratio")
        if self.warmup_rounds < 0:
            raise ValueError("warmup_rounds must be non-negative")
        if self.warmup_ratio < 1.0:
            raise ValueError("warmup_ratio must be >= 1")
        if not 0.0 <= self.utility_floor < self.utility_ceil <= 1.0:
            raise ValueError("need 0 <= utility_floor < utility_ceil <= 1")

    def in_warmup(self, round_index: int) -> bool:
        """Is this round inside the warm-up window?"""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return round_index < self.warmup_rounds

    def ratio_for(self, utility: float, round_index: int) -> float:
        """Compression ratio for a client with utility ``utility``.

        Monotone non-increasing in ``utility``: better-aligned clients
        are compressed less.
        """
        if not 0.0 <= utility <= 1.0:
            raise ValueError("utility must be in [0, 1]")
        if self.in_warmup(round_index):
            return self.warmup_ratio
        span = self.utility_ceil - self.utility_floor
        t = (utility - self.utility_floor) / span
        t = min(1.0, max(0.0, t))
        log_ratio = (1.0 - t) * math.log(self.max_ratio) + t * math.log(self.min_ratio)
        return math.exp(log_ratio)
