"""Participation-fairness metrics for selection policies.

Utility-guided selection risks starving clients whose data diverges
from the mainstream (exactly the clients non-IID FL needs).  These
metrics quantify that: per-client participation counts from a run, the
Jain fairness index over them, and coverage (fraction of clients that
participated at all).  The ablation benches use them to show what the
rotation bonus buys.
"""

from __future__ import annotations

import numpy as np

from repro.fl.metrics import RunResult

__all__ = ["participation_counts", "jain_index", "coverage", "fairness_report"]


def participation_counts(result: RunResult) -> np.ndarray:
    """Uploads delivered per client over a run, shape (num_clients,)."""
    counts = np.zeros(result.num_clients, dtype=np.int64)
    for record in result.records:
        for cid in record.participants:
            if not 0 <= cid < result.num_clients:
                raise ValueError(f"participant id {cid} out of range")
            counts[cid] += 1
    return counts


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: 1 = perfectly even, 1/n = maximally unfair.

    Defined as ``(sum x)^2 / (n * sum x^2)`` over non-negative values;
    an all-zero vector (no participation at all) returns 0.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    total_sq = float(np.sum(values)) ** 2
    denom = values.size * float(np.sum(values**2))
    if denom == 0.0:
        return 0.0
    return total_sq / denom


def coverage(result: RunResult) -> float:
    """Fraction of clients that delivered at least one update."""
    counts = participation_counts(result)
    return float(np.mean(counts > 0))


def fairness_report(result: RunResult) -> dict[str, float]:
    """Summary dict: jain index, coverage, min/max participation share."""
    counts = participation_counts(result)
    total = counts.sum()
    shares = counts / total if total > 0 else counts.astype(np.float64)
    return {
        "jain_index": jain_index(counts),
        "coverage": coverage(result),
        "min_share": float(shares.min()),
        "max_share": float(shares.max()),
    }
