"""AdaFL — the paper's primary contribution.

Utility scoring (Eq. 6), adaptive node selection (Algorithm 1),
adaptive DGC compression scheduling, and the two AdaFL strategies.
"""

from repro.core.adafl import SCORE_REPORT_BYTES, AdaFLAsync, AdaFLConfig, AdaFLSync
from repro.core.compression_policy import AdaptiveCompressionPolicy
from repro.core.diagnostics import (
    GradientDispersion,
    alignment_with_mean,
    gradient_dispersion,
    pairwise_similarity,
)
from repro.core.fairness import coverage, fairness_report, jain_index, participation_counts
from repro.core.selection import (
    SelectionResult,
    reservoir_sample,
    select_clients,
    select_from_scores,
)
from repro.core.utility import (
    SIMILARITY_METRICS,
    UtilityScorer,
    cosine_similarity,
    euclidean_similarity,
    gradient_importance,
    l2_similarity,
)
from repro.core.zoo import (
    AdaGQConfig,
    AdaGQQuantization,
    AdaptiveFederatedDropout,
    AFDConfig,
)

__all__ = [
    "cosine_similarity",
    "l2_similarity",
    "euclidean_similarity",
    "gradient_importance",
    "SIMILARITY_METRICS",
    "UtilityScorer",
    "SelectionResult",
    "select_clients",
    "select_from_scores",
    "reservoir_sample",
    "AdaptiveCompressionPolicy",
    "participation_counts",
    "jain_index",
    "coverage",
    "fairness_report",
    "pairwise_similarity",
    "alignment_with_mean",
    "GradientDispersion",
    "gradient_dispersion",
    "AdaFLConfig",
    "AdaFLSync",
    "AdaFLAsync",
    "SCORE_REPORT_BYTES",
    "AFDConfig",
    "AdaptiveFederatedDropout",
    "AdaGQConfig",
    "AdaGQQuantization",
]
