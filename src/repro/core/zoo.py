"""Strategy zoo: link-adaptive sub-models and bit-widths.

Two strategies from the related work slot into the engines beside
AdaFL, both exercising the parameter-subspace machinery end to end:

* :class:`AdaptiveFederatedDropout` (Bouacida et al., arXiv:2011.04050)
  — each selected client trains a per-round *sub-model*: a
  layer-stratified :class:`~repro.nn.subspace.ParamSubspace` whose
  keep fraction adapts to the client's observed uplink bandwidth.
  Uploads travel as masked frames (index block + covered values) and
  are folded with :func:`~repro.fl.strategy.masked_weighted_average`,
  so a constrained client ships — and the server trusts — only the
  coordinates it actually trained.
* :class:`AdaGQQuantization` (Liu et al., arXiv:2212.08272) — every
  client quantises with QSGD, but the *level count* (hence bits per
  element) is chosen per client per round from link quality: a starved
  uplink gets 4-bit gradients, a healthy one up to 8-bit.  The level
  count travels in the frame flags byte, so the server decodes without
  shared state.

Determinism: all per-round randomness (masks, stochastic rounding)
derives from the engine kernel's named streams via
``RoundContext.kernel`` — two identical runs are bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.compression.base import CompressedGradient
from repro.compression.qsgd import QSGDCompressor
from repro.fl.client import Client, ClientUpdate
from repro.fl.server import Server
from repro.fl.strategy import (
    RoundContext,
    SyncStrategy,
    UploadPacket,
    masked_weighted_average,
)
from repro.nn.subspace import ParamSubspace
from repro.wire.codecs import encode_frame

__all__ = [
    "AdaptiveFederatedDropout",
    "AFDConfig",
    "AdaGQQuantization",
    "AdaGQConfig",
]

# Fallback symmetric bandwidth when the run has no network model —
# saturates every adaptive policy at its lightest setting.
_DEFAULT_BW_MBPS = 100.0


def _uplink_mbps(context: RoundContext, cid: int) -> float:
    """The client's current uplink bandwidth (fallback: healthy link)."""
    if context.network is None:
        return _DEFAULT_BW_MBPS
    return context.network[cid].uplink_bandwidth(context.sim_time_s)


@dataclass(frozen=True)
class AFDConfig:
    """Knobs for :class:`AdaptiveFederatedDropout`.

    ``min_keep``/``max_keep`` bound the per-client sub-model fraction;
    a client's keep ratio interpolates linearly between them as its
    uplink bandwidth goes from zero to ``bw_reference_mbps`` (and
    saturates above).  The defaults ship at most 60% of coordinates
    even on a perfect link, which—after the masked frame's index
    block—still undercuts a dense upload by >30%.
    """

    participation_rate: float = 0.5
    min_keep: float = 0.3
    max_keep: float = 0.6
    bw_reference_mbps: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 < self.min_keep <= self.max_keep <= 1.0:
            raise ValueError("need 0 < min_keep <= max_keep <= 1")
        if self.bw_reference_mbps <= 0:
            raise ValueError("bw_reference_mbps must be positive")


class AdaptiveFederatedDropout(SyncStrategy):
    """Per-client sub-model training with link-adaptive keep ratios."""

    name = "afd"

    def __init__(self, config: AFDConfig | None = None):
        config = config or AFDConfig()
        super().__init__(participation_rate=config.participation_rate)
        self.config = config
        self._layout: list | None = None
        # Masks staged at selection time, consumed by
        # ``client_train_kwargs`` / ``process_upload`` within the round.
        self._round_masks: dict[int, ParamSubspace] = {}

    def prepare(self, server: Server, clients: list[Client]) -> None:
        self._layout = server.param_layout()

    def keep_fraction(self, uplink_mbps: float) -> float:
        """Sub-model fraction for a client with the given uplink rate."""
        cfg = self.config
        t = min(1.0, max(0.0, uplink_mbps / cfg.bw_reference_mbps))
        return cfg.min_keep + t * (cfg.max_keep - cfg.min_keep)

    def select(
        self,
        available: list[int],
        rng: np.random.Generator,
        context: RoundContext,
    ) -> list[int]:
        selected = super().select(available, rng, context)
        if self._layout is None:
            self._layout = context.server.param_layout()
        if context.kernel is None:
            raise RuntimeError(
                "AdaptiveFederatedDropout needs RoundContext.kernel for "
                "deterministic mask generation"
            )
        self._round_masks.clear()
        for cid in selected:
            keep = self.keep_fraction(_uplink_mbps(context, cid))
            stream = context.kernel.stream("afd_mask", context.round_index, cid)
            self._round_masks[cid] = ParamSubspace.sample(self._layout, keep, stream)
        return selected

    def client_train_kwargs(self, client: Client) -> dict:
        mask = self._round_masks.get(client.client_id)
        if mask is None:
            return {}
        return {"subspace": mask}

    def process_upload(
        self, client: Client, update: ClientUpdate, context: RoundContext
    ) -> UploadPacket:
        mask = self._round_masks.get(client.client_id)
        if mask is None or mask.is_full:
            return super().process_upload(client, update, context)
        # The client's delta is guaranteed zero off the mask, so the
        # masked frame carries everything the server needs.
        values = mask.gather(update.delta).astype(np.float32)
        frame = encode_frame(
            "masked",
            update.delta.size,
            {
                "indices": mask.indices.astype(np.uint32),
                "inner_method": "none",
                "inner_data": {"values": values},
            },
            model_version=context.server.version,
        )
        return UploadPacket(delta=update.delta, frame=frame, subspace=mask)

    def aggregate(
        self, server: Server, updates: list[ClientUpdate], context: RoundContext
    ) -> None:
        del context
        if not updates:
            return
        server.apply_delta(masked_weighted_average(updates))


@dataclass(frozen=True)
class AdaGQConfig:
    """Knobs for :class:`AdaGQQuantization`.

    Level counts interpolate *geometrically* between ``min_levels``
    (worst link) and ``max_levels`` (at or above ``bw_reference_mbps``)
    because the resulting bits-per-element is logarithmic in the level
    count.  The defaults span 4-bit to 8-bit gradients — a 4x-8x
    uplink reduction over dense float32 before framing.
    """

    participation_rate: float = 0.5
    min_levels: int = 4
    max_levels: int = 64
    bw_reference_mbps: float = 20.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_levels <= self.max_levels <= 255:
            raise ValueError("need 1 <= min_levels <= max_levels <= 255")
        if self.bw_reference_mbps <= 0:
            raise ValueError("bw_reference_mbps must be positive")


class AdaGQQuantization(SyncStrategy):
    """Per-client adaptive QSGD bit-width driven by link quality."""

    name = "adagq"

    def __init__(self, config: AdaGQConfig | None = None):
        config = config or AdaGQConfig()
        super().__init__(participation_rate=config.participation_rate)
        self.config = config
        self._compressors: dict[int, QSGDCompressor] = {}
        self.last_levels: dict[int, int] = {}  # diagnostics

    def levels_for(self, uplink_mbps: float) -> int:
        """QSGD level count for a client with the given uplink rate."""
        cfg = self.config
        t = min(1.0, max(0.0, uplink_mbps / cfg.bw_reference_mbps))
        log_levels = (1.0 - t) * math.log(cfg.min_levels) + t * math.log(
            cfg.max_levels
        )
        return max(cfg.min_levels, min(cfg.max_levels, round(math.exp(log_levels))))

    def _compressor(self, cid: int, dim: int, context: RoundContext) -> QSGDCompressor:
        compressor = self._compressors.get(cid)
        if compressor is None:
            if context.kernel is None:
                raise RuntimeError(
                    "AdaGQQuantization needs RoundContext.kernel so stochastic "
                    "rounding derives from a named kernel stream"
                )
            compressor = QSGDCompressor(
                dim,
                num_levels=self.config.max_levels,
                rng=context.kernel.stream("adagq_rounding", cid),
            )
            self._compressors[cid] = compressor
        return compressor

    def process_upload(
        self, client: Client, update: ClientUpdate, context: RoundContext
    ) -> UploadPacket:
        cid = client.client_id
        num_levels = self.levels_for(_uplink_mbps(context, cid))
        self.last_levels[cid] = num_levels
        compressor = self._compressor(cid, update.delta.size, context)
        payload: CompressedGradient = compressor.compress(
            update.delta, num_levels=num_levels
        )
        # The server folds what the wire delivered, not the raw delta —
        # QSGD is unbiased, so the aggregate stays unbiased too.
        delta = compressor.decompress(payload)
        return UploadPacket(
            delta=delta, frame=payload.to_frame(context.server.version)
        )
