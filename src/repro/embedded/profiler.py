"""A perf-style cycle counter for the overhead study.

:class:`CycleCounter` accumulates CPU cycles per named component
(training, utility scoring, compression, ...) the way the paper uses
Linux ``perf`` counters, driven by the analytic FLOP costs below
instead of hardware events.

FLOP cost models
----------------
* ``training_flops`` — forward + backward over the local dataset
  (factor 3 rule of thumb), straight from
  :meth:`repro.nn.sequential.Sequential.flops_per_sample`.
* ``utility_score_flops`` — one cosine similarity over a ``d``-vector:
  a dot product plus two norms, ~``6d`` FLOPs (2 FLOPs per element per
  reduction).  This is the paper's headline "0.05%" component.
* ``dgc_compress_flops`` — momentum update + residual update + clip
  norm (~``6d``) plus top-k selection charged at ``2d`` comparisons.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.embedded.device import DeviceProfile
from repro.nn.sequential import Sequential

__all__ = [
    "training_flops",
    "utility_score_flops",
    "dgc_compress_flops",
    "CycleCounter",
    "OverheadReport",
]


def training_flops(model: Sequential, num_samples: int, local_epochs: int = 1) -> int:
    """Forward+backward arithmetic for one local training round."""
    if num_samples < 0 or local_epochs <= 0:
        raise ValueError("invalid training size parameters")
    return 3 * model.flops_per_sample() * num_samples * local_epochs


def utility_score_flops(dim: int) -> int:
    """Cosine similarity of two d-vectors: dot + two norms + scalars."""
    if dim <= 0:
        raise ValueError("dim must be positive")
    return 6 * dim + 16


def dgc_compress_flops(dim: int) -> int:
    """Momentum correction, residual accumulation, clipping, top-k."""
    if dim <= 0:
        raise ValueError("dim must be positive")
    return 6 * dim + 2 * dim


@dataclass(frozen=True)
class OverheadReport:
    """Cycle accounting relative to a baseline component."""

    baseline_cycles: float
    component_cycles: dict[str, float]

    def overhead_pct(self, component: str) -> float:
        """Extra cycles of ``component`` as a percentage of baseline."""
        if self.baseline_cycles <= 0:
            raise ValueError("baseline cycles must be positive")
        return 100.0 * self.component_cycles.get(component, 0.0) / self.baseline_cycles

    @property
    def total_with_overheads(self) -> float:
        return self.baseline_cycles + sum(self.component_cycles.values())


class CycleCounter:
    """Accumulates per-component CPU cycles on one device."""

    def __init__(self, device: DeviceProfile):
        self.device = device
        self._cycles: defaultdict[str, float] = defaultdict(float)

    def charge_flops(self, component: str, flops: float) -> float:
        """Add the cycle cost of ``flops`` to a component; returns cycles."""
        cycles = self.device.cycles(flops)
        self._cycles[component] += cycles
        return cycles

    def cycles(self, component: str) -> float:
        """Cycles accumulated by one component so far."""
        return self._cycles.get(component, 0.0)

    @property
    def total_cycles(self) -> float:
        return sum(self._cycles.values())

    def components(self) -> dict[str, float]:
        return dict(self._cycles)

    def report(self, baseline_component: str = "training") -> OverheadReport:
        """Build an :class:`OverheadReport` against one component."""
        baseline = self._cycles.get(baseline_component, 0.0)
        others = {k: v for k, v in self._cycles.items() if k != baseline_component}
        return OverheadReport(baseline_cycles=baseline, component_cycles=others)

    def reset(self) -> None:
        self._cycles.clear()
