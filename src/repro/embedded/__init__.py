"""Embedded-device substrate: profiles, clusters, cycle accounting."""

from repro.embedded.cluster import (
    compute_rates,
    make_heterogeneous_cluster,
    make_pi_cluster,
)
from repro.embedded.device import DEVICE_PRESETS, DeviceProfile, device_preset
from repro.embedded.energy import RADIO_PRESETS, EnergyBreakdown, EnergyModel, RadioProfile
from repro.embedded.profiler import (
    CycleCounter,
    OverheadReport,
    dgc_compress_flops,
    training_flops,
    utility_score_flops,
)

__all__ = [
    "DeviceProfile",
    "RadioProfile",
    "RADIO_PRESETS",
    "EnergyModel",
    "EnergyBreakdown",
    "DEVICE_PRESETS",
    "device_preset",
    "make_pi_cluster",
    "make_heterogeneous_cluster",
    "compute_rates",
    "CycleCounter",
    "OverheadReport",
    "training_flops",
    "utility_score_flops",
    "dgc_compress_flops",
]
