"""Heterogeneous embedded clusters.

Builders for the device populations used in the experiments: the
paper's homogeneous ten-Pi cluster for the overhead study, and mixed
populations for the staleness experiments (slow devices are what make
asynchronous updates stale).
"""

from __future__ import annotations

import numpy as np

from repro.embedded.device import DEVICE_PRESETS, DeviceProfile

__all__ = ["make_pi_cluster", "make_heterogeneous_cluster", "compute_rates"]


def make_pi_cluster(num_devices: int = 10, model: str = "pi4") -> list[DeviceProfile]:
    """A homogeneous Raspberry Pi cluster (the paper's overhead rig)."""
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    profile = DEVICE_PRESETS[model]
    return [profile] * num_devices


def make_heterogeneous_cluster(
    num_devices: int,
    presets: list[str] | None = None,
    rng: np.random.Generator | None = None,
    slow_fraction: float = 0.0,
    slow_factor: float = 3.0,
) -> list[DeviceProfile]:
    """A mixed cluster, optionally with a slowed-down fraction.

    ``slow_fraction`` of devices get their effective throughput divided
    by ``slow_factor`` — the paper's asynchronous stragglers "update at
    a rate 3x slower than other clients" (§III-B).
    """
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if not 0.0 <= slow_fraction <= 1.0:
        raise ValueError("slow_fraction must be in [0, 1]")
    if slow_factor < 1.0:
        raise ValueError("slow_factor must be >= 1")
    presets = presets or ["pi4"]
    rng = rng if rng is not None else np.random.default_rng(0)

    devices = [DEVICE_PRESETS[presets[i % len(presets)]] for i in range(num_devices)]
    num_slow = int(round(num_devices * slow_fraction))
    slow_ids = set(rng.choice(num_devices, size=num_slow, replace=False).tolist())
    result = []
    for i, dev in enumerate(devices):
        if i in slow_ids:
            result.append(
                DeviceProfile(
                    name=f"{dev.name}-slow",
                    clock_hz=dev.clock_hz,
                    cycles_per_flop=dev.cycles_per_flop * slow_factor,
                )
            )
        else:
            result.append(dev)
    return result


def compute_rates(devices: list[DeviceProfile]) -> np.ndarray:
    """Per-device FLOP/s array, as consumed by the FL engines."""
    if not devices:
        raise ValueError("devices must be non-empty")
    return np.array([d.flops_per_second for d in devices])
