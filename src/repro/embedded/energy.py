"""Energy cost model for embedded FL clients.

Extends the cycle model with the two dominant energy consumers on a
battery-powered FL device: CPU compute (J per cycle at a given
operating point) and the radio (J per transmitted/received byte, which
varies by two orders of magnitude between Wi-Fi and cellular).  Used
to extend the paper's Q3 overhead argument from cycles to joules: the
communication AdaFL removes is worth far more energy than the
compression cycles it adds.

Coefficients are order-of-magnitude values from the embedded-systems
literature (Pi-class SoC ≈ 0.5–1 nJ/cycle at load; Wi-Fi ≈ 5 nJ/B,
LTE ≈ 50–100 nJ/B uplink); as with cycles, only ratios matter here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embedded.device import DeviceProfile

__all__ = ["RadioProfile", "RADIO_PRESETS", "EnergyModel", "EnergyBreakdown"]


@dataclass(frozen=True)
class RadioProfile:
    """Per-byte radio energy costs."""

    name: str
    tx_nj_per_byte: float
    rx_nj_per_byte: float

    def __post_init__(self) -> None:
        if self.tx_nj_per_byte <= 0 or self.rx_nj_per_byte <= 0:
            raise ValueError("radio energy coefficients must be positive")


RADIO_PRESETS: dict[str, RadioProfile] = {
    "wifi": RadioProfile(name="wifi", tx_nj_per_byte=5.0, rx_nj_per_byte=4.0),
    "lte": RadioProfile(name="lte", tx_nj_per_byte=80.0, rx_nj_per_byte=30.0),
    "ethernet": RadioProfile(name="ethernet", tx_nj_per_byte=1.0, rx_nj_per_byte=1.0),
}


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules spent by one client, by component."""

    compute_j: float
    tx_j: float
    rx_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.tx_j + self.rx_j

    @property
    def communication_j(self) -> float:
        return self.tx_j + self.rx_j


class EnergyModel:
    """Joules from cycles and bytes for one device + radio pairing."""

    def __init__(
        self,
        device: DeviceProfile,
        radio: RadioProfile,
        nj_per_cycle: float = 0.7,
    ):
        if nj_per_cycle <= 0:
            raise ValueError("nj_per_cycle must be positive")
        self.device = device
        self.radio = radio
        self.nj_per_cycle = nj_per_cycle

    def compute_energy(self, flops: float) -> float:
        """Joules for ``flops`` of arithmetic on this device."""
        return self.device.cycles(flops) * self.nj_per_cycle * 1e-9

    def tx_energy(self, num_bytes: float) -> float:
        """Joules to transmit ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.radio.tx_nj_per_byte * 1e-9

    def rx_energy(self, num_bytes: float) -> float:
        """Joules to receive ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.radio.rx_nj_per_byte * 1e-9

    def round_energy(
        self, train_flops: float, bytes_up: float, bytes_down: float
    ) -> EnergyBreakdown:
        """Full per-round energy accounting for one client."""
        return EnergyBreakdown(
            compute_j=self.compute_energy(train_flops),
            tx_j=self.tx_energy(bytes_up),
            rx_j=self.rx_energy(bytes_down),
        )
