"""Embedded device profiles and the cycle cost model.

The paper's overhead study (§V, Q3) runs on a ten-node Raspberry Pi
cluster and compares Linux ``perf`` CPU-cycle counts with and without
AdaFL's components.  Hardware being unavailable here, a calibrated
cost model maps arithmetic operation counts to CPU cycles:

``cycles = flops * cycles_per_flop``

with ``cycles_per_flop`` reflecting how efficiently a device's
pipeline retires floating-point work (superscalar desktop cores retire
several FLOPs per cycle; in-order embedded cores spend several cycles
per FLOP once load/store overhead is included).  Only cycle *ratios*
matter for the reproduced claim (utility scoring adds ~0.05%), and
ratios are preserved under any positive calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "DEVICE_PRESETS", "device_preset"]


@dataclass(frozen=True)
class DeviceProfile:
    """A compute device participating in federation."""

    name: str
    clock_hz: float
    cycles_per_flop: float

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.cycles_per_flop <= 0:
            raise ValueError("cycles_per_flop must be positive")

    @property
    def flops_per_second(self) -> float:
        """Sustained arithmetic throughput."""
        return self.clock_hz / self.cycles_per_flop

    def cycles(self, flops: float) -> float:
        """CPU cycles needed for ``flops`` arithmetic operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        return flops * self.cycles_per_flop

    def seconds(self, flops: float) -> float:
        """Wall time needed for ``flops`` arithmetic operations."""
        return self.cycles(flops) / self.clock_hz


DEVICE_PRESETS: dict[str, DeviceProfile] = {
    # Raspberry Pi 4B: 1.5 GHz Cortex-A72, modest NEON throughput once
    # numpy/BLAS overhead is included.
    "pi4": DeviceProfile(name="pi4", clock_hz=1.5e9, cycles_per_flop=2.0),
    # Raspberry Pi 3B+: 1.4 GHz Cortex-A53, in-order pipeline.
    "pi3": DeviceProfile(name="pi3", clock_hz=1.4e9, cycles_per_flop=4.0),
    # Pi Zero 2-class device for extreme heterogeneity experiments.
    "pi_zero2": DeviceProfile(name="pi_zero2", clock_hz=1.0e9, cycles_per_flop=5.0),
    # The paper's evaluation workstation (i9-7980XE class, per-core).
    "workstation": DeviceProfile(name="workstation", clock_hz=4.0e9, cycles_per_flop=0.25),
}


def device_preset(name: str) -> DeviceProfile:
    """Look up a device preset, failing loudly on typos."""
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_PRESETS))
        raise KeyError(f"unknown device preset {name!r}; known presets: {known}") from None
