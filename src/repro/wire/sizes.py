"""Analytic payload size models (predictions, not accounting).

These formulas were the repo's byte accounting before the wire layer
existed; they now live next to the codecs whose encoded lengths they
must predict exactly.  Engines and experiments account bytes from
encoded frames only (reprolint R6 enforces it); the formulas remain
because the paper's communication-cost tables are stated in terms of
them, and a tier-1 test pins ``len(codec.encode(p)) ==
predicted_bytes(p)`` for every codec so the two can never drift.

* dense float32 payload: ``4 * d`` bytes (matches the paper's 1.64 MB
  figure for the ~430k-parameter CNN);
* sparse payload: the cheapest of COO (``8 * k``), bitmap
  (``ceil(d / 8) + 4 * k``), and dense — see
  :func:`sparse_payload_bytes`;
* quantised payload: ``ceil(d * bits / 8)`` plus one float32 scale per
  tensor.
"""

from __future__ import annotations

import math

__all__ = [
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "MASKED_HEADER_BYTES",
    "dense_bytes",
    "sparse_bytes",
    "sparse_payload_bytes",
    "quantized_bytes",
    "masked_index_bytes",
    "masked_payload_bytes",
]

FLOAT_BYTES = 4  # gradients travel as float32 on the wire
INDEX_BYTES = 4  # uint32 coordinate indices

# Masked payload inner header: inner codec id (u8), inner flags (u8),
# selected coordinate count (u32).
MASKED_HEADER_BYTES = 6


def dense_bytes(dim: int) -> int:
    """Wire size of an uncompressed float32 gradient."""
    if dim < 0:
        raise ValueError("dim must be non-negative")
    return FLOAT_BYTES * dim


def sparse_bytes(nnz: int) -> int:
    """Wire size of a COO sparse gradient with ``nnz`` retained entries."""
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    return (FLOAT_BYTES + INDEX_BYTES) * nnz


def sparse_payload_bytes(dim: int, nnz: int) -> int:
    """Wire size of the cheapest encoding for a sparse gradient.

    A sender picks whichever of three encodings is smallest:
    COO (4-byte index + 4-byte value per entry), bitmap (one bit per
    coordinate plus packed values), or plain dense.  This matters at
    low compression ratios, where COO would exceed the dense size.
    ``SparseCodec.encode`` implements exactly this choice (same
    tie-breaking order), so the prediction is always the encode length.
    """
    if dim < 0 or nnz < 0 or nnz > dim:
        raise ValueError("need 0 <= nnz <= dim")
    coo = sparse_bytes(nnz)
    bitmap = FLOAT_BYTES * nnz + math.ceil(dim / 8.0)
    return min(coo, bitmap, dense_bytes(dim))


def quantized_bytes(dim: int, bits: float, num_scales: int = 1) -> int:
    """Wire size of a ``bits``-per-element quantised gradient."""
    if dim < 0 or bits <= 0 or num_scales < 0:
        raise ValueError("invalid quantisation size parameters")
    return math.ceil(dim * bits / 8.0) + FLOAT_BYTES * num_scales


def masked_index_bytes(dim: int, nsel: int) -> int:
    """Wire size of a masked payload's index block.

    A sender picks the cheaper of COO (4-byte uint32 per selected
    coordinate) and a membership bitmap (one bit per coordinate of the
    full vector), COO on ties — ``MaskedCodec`` implements the same
    first-minimum choice, so the prediction is always the encode
    length.
    """
    if dim < 0 or nsel < 0 or nsel > dim:
        raise ValueError("need 0 <= nsel <= dim")
    return min(INDEX_BYTES * nsel, math.ceil(dim / 8.0))


def masked_payload_bytes(dim: int, nsel: int, inner_payload_nbytes: int) -> int:
    """Wire size of a subspace-masked payload.

    Layout: a 6-byte inner header (inner codec id, inner flags,
    selected count), the cheapest index block, then the inner codec's
    payload encoded at dimensionality ``nsel``.
    """
    if inner_payload_nbytes < 0:
        raise ValueError("inner payload size must be non-negative")
    return (
        MASKED_HEADER_BYTES
        + masked_index_bytes(dim, nsel)
        + inner_payload_nbytes
    )
