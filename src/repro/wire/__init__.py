"""Byte-true wire layer: versioned frames, codecs, and size models.

Everything that crosses a simulated link — model broadcasts, client
updates, checkpoints — is encoded here as a :class:`~repro.wire.frame.Frame`:
a fixed 24-byte header (magic, wire version, codec id, flags, dim,
model version, payload length, CRC-32 of the payload) followed by a
codec-specific binary payload.  The codec registry in
:mod:`repro.wire.codecs` covers the repo's payload families (dense
float32, sparse COO/bitmap/dense — whichever is cheapest — and
QSGD/TernGrad bit-packing), and :mod:`repro.wire.sizes` holds the
analytic size models, which survive only as *predictions* cross-checked
against real encode lengths in the test suite.

Layering: ``repro.wire`` depends on nothing but numpy; compression,
fl, and the CLI depend on it.
"""

from __future__ import annotations

from repro.wire.frame import (
    FRAME_OVERHEAD,
    Frame,
    FrameCorruptionError,
    FrameError,
    FrameOversized,
    FrameTruncated,
    MAGIC,
    MAX_PAYLOAD_NBYTES,
    WIRE_VERSION,
    read_frame,
    seal,
    unseal,
)
from repro.wire.codecs import (
    Codec,
    MaskedCodec,
    codec_for_id,
    codec_for_method,
    decode_frame,
    encode_frame,
    encode_model_frame,
    predicted_payload_nbytes,
)
from repro.wire.sizes import (
    FLOAT_BYTES,
    INDEX_BYTES,
    MASKED_HEADER_BYTES,
    dense_bytes,
    masked_index_bytes,
    masked_payload_bytes,
    quantized_bytes,
    sparse_bytes,
    sparse_payload_bytes,
)

__all__ = [
    "FRAME_OVERHEAD",
    "Frame",
    "FrameCorruptionError",
    "FrameError",
    "FrameOversized",
    "FrameTruncated",
    "MAGIC",
    "MAX_PAYLOAD_NBYTES",
    "WIRE_VERSION",
    "read_frame",
    "seal",
    "unseal",
    "Codec",
    "MaskedCodec",
    "codec_for_id",
    "codec_for_method",
    "decode_frame",
    "encode_frame",
    "encode_model_frame",
    "predicted_payload_nbytes",
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "MASKED_HEADER_BYTES",
    "dense_bytes",
    "masked_index_bytes",
    "masked_payload_bytes",
    "quantized_bytes",
    "sparse_bytes",
    "sparse_payload_bytes",
]
