"""The versioned binary frame every payload travels in.

Frame layout (little-endian, 24-byte fixed header)::

    offset  size  field
    ------  ----  --------------------------------------------
         0     4  magic            b"RPWF"
         4     1  wire version     currently 1
         5     1  codec id         see repro.wire.codecs
         6     1  flags            codec-specific parameter byte
         7     1  reserved         must be zero
         8     4  dim              uint32, vector dimensionality
        12     4  model version    uint32, server model version
        16     4  payload length   uint32, bytes after the header
        20     4  CRC-32           of the payload bytes only
        24     …  payload          codec-specific encoding

The CRC covers the payload, so a bit flipped in transit is detected at
decode time (:meth:`Frame.from_bytes` raises
:class:`FrameCorruptionError`) — this is what turns the simulator's
``bitflip`` corruption fault into an observable ``corrupt_frame``
rejection instead of a silent numeric perturbation.

Versioning: decoders accept exactly the versions they know
(``version <= WIRE_VERSION``); an unknown magic or future version is a
:class:`FrameError`, never a silent reinterpretation.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "FRAME_OVERHEAD",
    "BLOB_CODEC_ID",
    "Frame",
    "FrameError",
    "FrameCorruptionError",
    "seal",
    "unseal",
]

MAGIC = b"RPWF"
WIRE_VERSION = 1

# magic, version, codec id, flags, reserved, dim, model version,
# payload length, payload CRC-32.
_HEADER = struct.Struct("<4sBBBBIIII")
FRAME_OVERHEAD = _HEADER.size  # 24 bytes

# Codec id used by :func:`seal` for opaque byte envelopes (snapshots).
BLOB_CODEC_ID = 7

_U32_MAX = 2**32 - 1


class FrameError(ValueError):
    """A buffer is not a decodable frame (bad magic/version/shape)."""


class FrameCorruptionError(FrameError):
    """The header parsed but the payload fails its CRC-32 check."""


@dataclass(frozen=True)
class Frame:
    """One encoded payload plus the header metadata that travels with it."""

    codec_id: int
    flags: int
    dim: int
    model_version: int
    payload: bytes
    version: int = WIRE_VERSION
    crc32: int = field(init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.codec_id <= 255:
            raise FrameError(f"codec_id {self.codec_id} out of byte range")
        if not 0 <= self.flags <= 255:
            raise FrameError(f"flags {self.flags} out of byte range")
        if not 0 <= self.version <= 255:
            raise FrameError(f"version {self.version} out of byte range")
        if not 0 <= self.dim <= _U32_MAX:
            raise FrameError(f"dim {self.dim} out of uint32 range")
        if not 0 <= self.model_version <= _U32_MAX:
            raise FrameError(f"model_version {self.model_version} out of uint32 range")
        if len(self.payload) > _U32_MAX:
            raise FrameError("payload too large for a uint32 length field")
        object.__setattr__(self, "payload", bytes(self.payload))
        object.__setattr__(self, "crc32", zlib.crc32(self.payload) & 0xFFFFFFFF)

    @property
    def payload_nbytes(self) -> int:
        """Payload length in bytes — the analytic-model-comparable size."""
        return len(self.payload)

    def __len__(self) -> int:
        """Total on-the-wire size: header plus payload."""
        return FRAME_OVERHEAD + len(self.payload)

    def to_bytes(self) -> bytes:
        """Serialise header + payload into one contiguous buffer."""
        header = _HEADER.pack(
            MAGIC,
            self.version,
            self.codec_id,
            self.flags,
            0,
            self.dim,
            self.model_version,
            len(self.payload),
            self.crc32,
        )
        return header + self.payload

    @classmethod
    def from_bytes(cls, buf: bytes | bytearray | memoryview) -> "Frame":
        """Parse and integrity-check one frame.

        Raises :class:`FrameError` on a malformed buffer (short, bad
        magic, unknown version, length mismatch) and
        :class:`FrameCorruptionError` when the payload CRC does not
        match the header — the signature of in-flight bit corruption.
        """
        buf = bytes(buf)
        if len(buf) < FRAME_OVERHEAD:
            raise FrameError(
                f"buffer of {len(buf)} bytes is shorter than a frame header"
            )
        magic, version, codec_id, flags, reserved, dim, model_version, length, crc = (
            _HEADER.unpack_from(buf)
        )
        if magic != MAGIC:
            raise FrameError(f"bad magic {magic!r} (want {MAGIC!r})")
        if not 1 <= version <= WIRE_VERSION:
            raise FrameError(f"unsupported wire version {version}")
        if reserved != 0:
            raise FrameError(f"reserved header byte is {reserved}, not zero")
        payload = buf[FRAME_OVERHEAD:]
        if len(payload) != length:
            raise FrameError(
                f"payload length field says {length} bytes, buffer has {len(payload)}"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise FrameCorruptionError(
                f"payload CRC mismatch (header {crc:#010x})"
            )
        return cls(
            codec_id=codec_id,
            flags=flags,
            dim=dim,
            model_version=model_version,
            payload=payload,
            version=version,
        )


def seal(data: bytes, model_version: int = 0) -> bytes:
    """Wrap opaque bytes (e.g. a snapshot pickle) in a CRC'd frame."""
    frame = Frame(
        codec_id=BLOB_CODEC_ID,
        flags=0,
        dim=0,
        model_version=model_version,
        payload=data,
    )
    return frame.to_bytes()


def unseal(buf: bytes) -> bytes:
    """Verify a :func:`seal` envelope and return the enclosed bytes.

    Raises :class:`FrameError` (or :class:`FrameCorruptionError` on a
    CRC mismatch) — callers that must read legacy unwrapped files catch
    it and fall back.
    """
    frame = Frame.from_bytes(buf)
    if frame.codec_id != BLOB_CODEC_ID:
        raise FrameError(
            f"expected a sealed blob (codec {BLOB_CODEC_ID}), got codec {frame.codec_id}"
        )
    return frame.payload
