"""The versioned binary frame every payload travels in.

Frame layout (little-endian, 24-byte fixed header)::

    offset  size  field
    ------  ----  --------------------------------------------
         0     4  magic            b"RPWF"
         4     1  wire version     currently 1
         5     1  codec id         see repro.wire.codecs
         6     1  flags            codec-specific parameter byte
         7     1  reserved         must be zero
         8     4  dim              uint32, vector dimensionality
        12     4  model version    uint32, server model version
        16     4  payload length   uint32, bytes after the header
        20     4  CRC-32           of the payload bytes only
        24     …  payload          codec-specific encoding

The CRC covers the payload, so a bit flipped in transit is detected at
decode time (:meth:`Frame.from_bytes` raises
:class:`FrameCorruptionError`) — this is what turns the simulator's
``bitflip`` corruption fault into an observable ``corrupt_frame``
rejection instead of a silent numeric perturbation.

Versioning: decoders accept exactly the versions they know
(``version <= WIRE_VERSION``); an unknown magic or future version is a
:class:`FrameError`, never a silent reinterpretation.

Stream hardening: a decoder fed attacker-shaped or line-damaged bytes
must fail *typed* and fail *before* allocating.  The declared payload
length is bounds-checked against ``max_payload_nbytes``
(:class:`FrameOversized`) before any payload buffer exists, and a
buffer or stream that ends early raises :class:`FrameTruncated` —
never a raw ``struct.error`` or ``MemoryError``.  :func:`read_frame`
applies both checks while reading a frame off a byte stream (the
socket transport's receive path).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "FRAME_OVERHEAD",
    "BLOB_CODEC_ID",
    "MAX_PAYLOAD_NBYTES",
    "Frame",
    "FrameError",
    "FrameCorruptionError",
    "FrameTruncated",
    "FrameOversized",
    "read_frame",
    "seal",
    "unseal",
]

MAGIC = b"RPWF"
WIRE_VERSION = 1

# magic, version, codec id, flags, reserved, dim, model version,
# payload length, payload CRC-32.
_HEADER = struct.Struct("<4sBBBBIIII")
FRAME_OVERHEAD = _HEADER.size  # 24 bytes

# Codec id used by :func:`seal` for opaque byte envelopes (snapshots).
BLOB_CODEC_ID = 7

# Default cap on a declared payload length.  A garbage header can
# claim up to 4 GiB; refusing anything above this bound *before*
# allocating keeps one damaged stream from taking the server down.
# 256 MiB comfortably covers every model and pickled setup bundle in
# the repo while staying far below typical container memory limits.
MAX_PAYLOAD_NBYTES = 256 * 1024 * 1024

_U32_MAX = 2**32 - 1


class FrameError(ValueError):
    """A buffer is not a decodable frame (bad magic/version/shape)."""


class FrameCorruptionError(FrameError):
    """The header parsed but the payload fails its CRC-32 check."""


class FrameTruncated(FrameError):
    """The buffer or stream ended before the declared frame did."""


class FrameOversized(FrameError):
    """The header declares a payload above the ``max_payload_nbytes`` cap."""


@dataclass(frozen=True)
class Frame:
    """One encoded payload plus the header metadata that travels with it."""

    codec_id: int
    flags: int
    dim: int
    model_version: int
    payload: bytes
    version: int = WIRE_VERSION
    crc32: int = field(init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.codec_id <= 255:
            raise FrameError(f"codec_id {self.codec_id} out of byte range")
        if not 0 <= self.flags <= 255:
            raise FrameError(f"flags {self.flags} out of byte range")
        if not 0 <= self.version <= 255:
            raise FrameError(f"version {self.version} out of byte range")
        if not 0 <= self.dim <= _U32_MAX:
            raise FrameError(f"dim {self.dim} out of uint32 range")
        if not 0 <= self.model_version <= _U32_MAX:
            raise FrameError(f"model_version {self.model_version} out of uint32 range")
        if len(self.payload) > _U32_MAX:
            raise FrameError("payload too large for a uint32 length field")
        object.__setattr__(self, "payload", bytes(self.payload))
        object.__setattr__(self, "crc32", zlib.crc32(self.payload) & 0xFFFFFFFF)

    @property
    def payload_nbytes(self) -> int:
        """Payload length in bytes — the analytic-model-comparable size."""
        return len(self.payload)

    def __len__(self) -> int:
        """Total on-the-wire size: header plus payload."""
        return FRAME_OVERHEAD + len(self.payload)

    def to_bytes(self) -> bytes:
        """Serialise header + payload into one contiguous buffer."""
        header = _HEADER.pack(
            MAGIC,
            self.version,
            self.codec_id,
            self.flags,
            0,
            self.dim,
            self.model_version,
            len(self.payload),
            self.crc32,
        )
        return header + self.payload

    @classmethod
    def from_bytes(
        cls,
        buf: bytes | bytearray | memoryview,
        max_payload_nbytes: int | None = None,
    ) -> "Frame":
        """Parse and integrity-check one frame.

        Raises :class:`FrameTruncated` on a buffer that ends before the
        declared frame does, :class:`FrameOversized` when the declared
        payload length exceeds ``max_payload_nbytes`` (checked before
        the payload is sliced), plain :class:`FrameError` on any other
        malformation (bad magic, unknown version, trailing bytes), and
        :class:`FrameCorruptionError` when the payload CRC does not
        match the header — the signature of in-flight bit corruption.
        """
        buf = bytes(buf)
        if len(buf) < FRAME_OVERHEAD:
            raise FrameTruncated(
                f"buffer of {len(buf)} bytes is shorter than a frame header"
            )
        codec_id, flags, version, dim, model_version, length, crc = _parse_header(
            buf[:FRAME_OVERHEAD], max_payload_nbytes
        )
        payload = buf[FRAME_OVERHEAD:]
        if len(payload) < length:
            raise FrameTruncated(
                f"payload length field says {length} bytes, buffer has {len(payload)}"
            )
        if len(payload) > length:
            raise FrameError(
                f"payload length field says {length} bytes, buffer has {len(payload)}"
            )
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise FrameCorruptionError(
                f"payload CRC mismatch (header {crc:#010x})"
            )
        return cls(
            codec_id=codec_id,
            flags=flags,
            dim=dim,
            model_version=model_version,
            payload=payload,
            version=version,
        )


def _parse_header(
    header: bytes, max_payload_nbytes: int | None
) -> tuple[int, int, int, int, int, int, int]:
    """Validate a 24-byte header; returns the decoded fields.

    The declared payload length is checked against the cap *here*, so
    both buffer and stream decoders refuse an oversized frame before a
    payload buffer is ever allocated.
    """
    magic, version, codec_id, flags, reserved, dim, model_version, length, crc = (
        _HEADER.unpack(header)
    )
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (want {MAGIC!r})")
    if not 1 <= version <= WIRE_VERSION:
        raise FrameError(f"unsupported wire version {version}")
    if reserved != 0:
        raise FrameError(f"reserved header byte is {reserved}, not zero")
    if max_payload_nbytes is not None and length > max_payload_nbytes:
        raise FrameOversized(
            f"declared payload of {length} bytes exceeds the "
            f"{max_payload_nbytes}-byte cap"
        )
    return codec_id, flags, version, dim, model_version, length, crc


def read_frame(
    read: Callable[[int], bytes],
    max_payload_nbytes: int | None = MAX_PAYLOAD_NBYTES,
) -> Frame:
    """Read exactly one frame off a byte stream.

    ``read(n)`` must return *up to* ``n`` bytes (a socket ``recv`` or
    file ``read``); an empty return means end of stream.  The header is
    read and validated — including the ``max_payload_nbytes`` bound —
    before the payload buffer is requested, so a garbage length field
    can never trigger a giant allocation.  A stream that ends mid-frame
    raises :class:`FrameTruncated`; CRC failures raise
    :class:`FrameCorruptionError` exactly as :meth:`Frame.from_bytes`.
    """
    header = _read_exactly(read, FRAME_OVERHEAD, "frame header")
    codec_id, flags, version, dim, model_version, length, crc = _parse_header(
        header, max_payload_nbytes
    )
    payload = _read_exactly(read, length, "frame payload") if length else b""
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise FrameCorruptionError(f"payload CRC mismatch (header {crc:#010x})")
    return Frame(
        codec_id=codec_id,
        flags=flags,
        dim=dim,
        model_version=model_version,
        payload=payload,
        version=version,
    )


def _read_exactly(read: Callable[[int], bytes], n: int, what: str) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = read(remaining)
        if not chunk:
            got = n - remaining
            raise FrameTruncated(f"stream ended after {got}/{n} bytes of {what}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def seal(data: bytes, model_version: int = 0) -> bytes:
    """Wrap opaque bytes (e.g. a snapshot pickle) in a CRC'd frame."""
    frame = Frame(
        codec_id=BLOB_CODEC_ID,
        flags=0,
        dim=0,
        model_version=model_version,
        payload=data,
    )
    return frame.to_bytes()


def unseal(buf: bytes) -> bytes:
    """Verify a :func:`seal` envelope and return the enclosed bytes.

    Raises :class:`FrameError` (or :class:`FrameCorruptionError` on a
    CRC mismatch) — callers that must read legacy unwrapped files catch
    it and fall back.
    """
    frame = Frame.from_bytes(buf)
    if frame.codec_id != BLOB_CODEC_ID:
        raise FrameError(
            f"expected a sealed blob (codec {BLOB_CODEC_ID}), got codec {frame.codec_id}"
        )
    return frame.payload
