"""Codec registry: payload family encoders/decoders behind the frames.

Each codec maps between a compressor's in-memory ``data`` dict (the
arrays :class:`repro.compression.base.CompressedGradient` carries) and
the exact bytes that travel in a :class:`~repro.wire.frame.Frame`
payload.  Every codec's :meth:`~Codec.payload_nbytes` *is* the
matching analytic formula from :mod:`repro.wire.sizes`, and a tier-1
test pins ``len(encode(...)) == payload_nbytes(...)`` for all of them,
so byte accounting from frames is bit-identical to the historical
formula-based accounting.

Registered codecs:

==  =========  ============================================
id  method     payload
==  =========  ============================================
1   none       dense float32, ``4 * d`` bytes
2   dgc        sparse (cheapest of COO / bitmap / dense)
3   topk       sparse (same encoding, distinct id)
4   qsgd       float32 norm + sign/level bit-packing
5   terngrad   float32 scale + 2-bit ternary stream
6   dense64    dense float64 (checkpoint fidelity)
8   masked     subspace index block + nested inner payload
==  =========  ============================================

(id 7 is reserved for :data:`repro.wire.frame.BLOB_CODEC_ID` sealed
envelopes, which bypass the registry.)

Decoders are zero-copy where numpy allows: ``np.frombuffer`` views
into the payload for index/value/dense arrays (read-only, which every
consumer respects).  Sparse frames record the chosen encoding in the
header ``flags`` byte; QSGD records its level count there.
"""

from __future__ import annotations

import math
import struct
from typing import Any

import numpy as np

from repro.wire.frame import Frame, FrameError
from repro.wire.sizes import (
    FLOAT_BYTES,
    MASKED_HEADER_BYTES,
    dense_bytes,
    masked_index_bytes,
    masked_payload_bytes,
    quantized_bytes,
    sparse_bytes,
    sparse_payload_bytes,
)

__all__ = [
    "Codec",
    "DenseFloat32Codec",
    "DenseFloat64Codec",
    "SparseCodec",
    "QSGDCodec",
    "TernGradCodec",
    "MaskedCodec",
    "codec_for_id",
    "codec_for_method",
    "encode_frame",
    "decode_frame",
    "encode_model_frame",
    "predicted_payload_nbytes",
]

# Sparse encoding selectors carried in the frame flags byte.
_SPARSE_COO = 0
_SPARSE_BITMAP = 1
_SPARSE_DENSE = 2

# Masked index-block selectors carried in the frame flags byte.
_MASKED_COO = 0
_MASKED_BITMAP = 1

# Masked inner header: inner codec id (u8), inner flags (u8), nsel (u32).
_MASKED_HEADER = struct.Struct("<BBI")


class Codec:
    """One payload family: size model + encoder + decoder."""

    codec_id: int = 0
    method: str = ""

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        """Exact encoded payload size for ``data`` (the analytic model)."""
        raise NotImplementedError  # pragma: no cover - interface

    def flags(self, dim: int, data: dict[str, Any]) -> int:
        """Codec parameter byte stored in the frame header (default 0)."""
        del dim, data
        return 0

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        """Serialise ``data`` into the payload bytes."""
        raise NotImplementedError  # pragma: no cover - interface

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        """Rebuild the ``data`` dict from payload bytes."""
        raise NotImplementedError  # pragma: no cover - interface


def _view(payload: bytes, dtype: np.dtype, offset: int = 0, count: int = -1) -> np.ndarray:
    """Read-only zero-copy array view into the payload buffer."""
    return np.frombuffer(payload, dtype=dtype, offset=offset, count=count)


class DenseFloat32Codec(Codec):
    """Uncompressed float32 vector — the ``none`` compressor's wire form."""

    codec_id = 1
    method = "none"

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        return dense_bytes(dim)

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        values = np.ascontiguousarray(data["values"], dtype=np.float32)
        if values.size != dim:
            raise FrameError(f"dense payload has {values.size} values, dim is {dim}")
        return values.tobytes()

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        if len(payload) != dense_bytes(dim):
            raise FrameError(
                f"dense float32 payload of {len(payload)} bytes for dim {dim}"
            )
        return {"values": _view(payload, np.dtype("<f4"))}


class DenseFloat64Codec(Codec):
    """Full-fidelity float64 vector, used for persisted checkpoints."""

    codec_id = 6
    method = "dense64"

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        return 2 * dense_bytes(dim)

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        values = np.ascontiguousarray(data["values"], dtype=np.float64)
        if values.size != dim:
            raise FrameError(f"dense payload has {values.size} values, dim is {dim}")
        return values.tobytes()

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        if len(payload) != 2 * dense_bytes(dim):
            raise FrameError(
                f"dense float64 payload of {len(payload)} bytes for dim {dim}"
            )
        return {"values": _view(payload, np.dtype("<f8"))}


class SparseCodec(Codec):
    """Sparse support: picks the cheapest of COO, bitmap, and dense.

    The selection order (COO, then bitmap, then dense on ties) mirrors
    :func:`repro.wire.sizes.sparse_payload_bytes`, whose ``min`` keeps
    the first minimum, so the encoded length always equals the
    prediction.  The chosen encoding travels in the flags byte.
    """

    def __init__(self, codec_id: int, method: str):
        self.codec_id = codec_id
        self.method = method

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        return sparse_payload_bytes(dim, int(np.asarray(data["indices"]).size))

    def _choice(self, dim: int, nnz: int) -> int:
        coo = sparse_bytes(nnz)
        bitmap = FLOAT_BYTES * nnz + math.ceil(dim / 8.0)
        dense = dense_bytes(dim)
        if coo <= bitmap and coo <= dense:
            return _SPARSE_COO
        if bitmap <= dense:
            return _SPARSE_BITMAP
        return _SPARSE_DENSE

    def flags(self, dim: int, data: dict[str, Any]) -> int:
        return self._choice(dim, int(np.asarray(data["indices"]).size))

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        indices = np.ascontiguousarray(data["indices"], dtype=np.uint32)
        values = np.ascontiguousarray(data["values"], dtype=np.float32)
        if indices.size != values.size:
            raise FrameError("sparse payload index/value count mismatch")
        if indices.size and int(indices.max()) >= dim:
            raise FrameError("sparse index out of range for dim")
        choice = self._choice(dim, indices.size)
        if choice == _SPARSE_COO:
            return indices.tobytes() + values.tobytes()
        if choice == _SPARSE_BITMAP:
            membership = np.zeros(dim, dtype=np.uint8)
            membership[indices.astype(np.intp)] = 1
            return np.packbits(membership).tobytes() + values.tobytes()
        dense = np.zeros(dim, dtype=np.float32)
        # reprolint: allow[R403] dense fallback is a scatter by design
        dense[indices.astype(np.intp)] = values
        return dense.tobytes()

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        if flags == _SPARSE_COO:
            if len(payload) % 8 != 0:
                raise FrameError("COO payload length is not a multiple of 8")
            nnz = len(payload) // 8
            indices = _view(payload, np.dtype("<u4"), count=nnz)
            values = _view(payload, np.dtype("<f4"), offset=4 * nnz)
            if nnz and int(indices.max()) >= dim:
                raise FrameError("COO index out of range for dim")
            return {"indices": indices, "values": values}
        if flags == _SPARSE_BITMAP:
            mask_nbytes = math.ceil(dim / 8.0)
            if len(payload) < mask_nbytes:
                raise FrameError("bitmap payload shorter than its membership mask")
            mask = np.unpackbits(_view(payload, np.uint8, count=mask_nbytes), count=dim)
            indices = np.flatnonzero(mask).astype(np.uint32)
            values = _view(payload, np.dtype("<f4"), offset=mask_nbytes)
            if values.size != indices.size:
                raise FrameError("bitmap payload value count mismatch")
            return {"indices": indices, "values": values}
        if flags == _SPARSE_DENSE:
            if len(payload) != dense_bytes(dim):
                raise FrameError("dense-fallback sparse payload size mismatch")
            return {
                "indices": np.arange(dim, dtype=np.uint32),
                "values": _view(payload, np.dtype("<f4")),
            }
        raise FrameError(f"unknown sparse encoding selector {flags}")


class QSGDCodec(Codec):
    """QSGD sign/level bit-packing with a float32 norm scale.

    Per element: one sign bit followed by ``ceil(log2(L + 1))`` level
    bits, packed MSB-first; the level count ``L`` travels in the frame
    flags byte (so ``L`` must be <= 255, far above any configuration
    the paper uses).
    """

    codec_id = 4
    method = "qsgd"

    @staticmethod
    def _level_bits(num_levels: int) -> int:
        return max(1, math.ceil(math.log2(num_levels + 1)))

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        bits = 1.0 + self._level_bits(int(data["num_levels"]))
        return quantized_bytes(dim, bits)

    def flags(self, dim: int, data: dict[str, Any]) -> int:
        del dim
        num_levels = int(data["num_levels"])
        if not 1 <= num_levels <= 255:
            raise FrameError(f"num_levels {num_levels} does not fit the flags byte")
        return num_levels

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        num_levels = int(data["num_levels"])
        level_bits = self._level_bits(num_levels)
        levels = np.ascontiguousarray(data["levels"], dtype=np.uint32)
        signs = np.asarray(data["signs"])
        if levels.size != dim or signs.size != dim:
            raise FrameError("quantised payload arrays do not match dim")
        if levels.size and int(levels.max()) > num_levels:
            raise FrameError("quantised level exceeds num_levels")
        codes = (np.where(signs < 0, 1, 0).astype(np.uint32) << level_bits) | levels
        packed = _pack_codes(codes, level_bits + 1)
        return np.float32(data["norm"]).tobytes() + packed.tobytes()

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        num_levels = int(flags)
        if num_levels < 1:
            raise FrameError("QSGD frame flags must carry the level count")
        level_bits = self._level_bits(num_levels)
        expected = quantized_bytes(dim, 1.0 + level_bits)
        if len(payload) != expected:
            raise FrameError(
                f"QSGD payload of {len(payload)} bytes, expected {expected}"
            )
        norm = float(_view(payload, np.dtype("<f4"), count=1)[0])
        codes = _unpack_codes(payload[FLOAT_BYTES:], dim, level_bits + 1)
        levels = (codes & ((1 << level_bits) - 1)).astype(np.int32)
        signs = np.where(codes >> level_bits, -1, 1).astype(np.int8)
        return {
            "norm": norm,
            "levels": levels,
            "signs": signs,
            "num_levels": num_levels,
        }


class TernGradCodec(Codec):
    """TernGrad: a float32 scale plus a 2-bit {-1, 0, +1} stream."""

    codec_id = 5
    method = "terngrad"

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        return quantized_bytes(dim, 2.0)

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        ternary = np.asarray(data["ternary"])
        if ternary.size != dim:
            raise FrameError("ternary payload does not match dim")
        codes = (ternary.astype(np.int32) + 1).astype(np.uint32)
        if codes.size and int(codes.max()) > 2:
            raise FrameError("ternary payload has values outside {-1, 0, 1}")
        packed = _pack_codes(codes, 2)
        return np.float32(data["scale"]).tobytes() + packed.tobytes()

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        expected = quantized_bytes(dim, 2.0)
        if len(payload) != expected:
            raise FrameError(
                f"TernGrad payload of {len(payload)} bytes, expected {expected}"
            )
        scale = float(_view(payload, np.dtype("<f4"), count=1)[0])
        codes = _unpack_codes(payload[FLOAT_BYTES:], dim, 2)
        return {"scale": scale, "ternary": (codes.astype(np.int8) - 1)}


class MaskedCodec(Codec):
    """Subspace-masked payload: an index block plus a nested payload.

    Carries a gradient restricted to ``nsel`` of the model's ``dim``
    coordinates (Adaptive Federated Dropout sub-model updates).  The
    payload is a 6-byte inner header — inner codec id, inner flags,
    selected count — followed by the cheaper of a COO uint32 index
    block and a full-width membership bitmap (COO on ties, selector in
    the frame flags byte), then the *inner* codec's payload encoded at
    dimensionality ``nsel``.  Any registered codec except ``masked``
    itself can nest, so masked QSGD (AdaGQ over a sub-model) costs the
    index block plus the quantised sub-vector and nothing more.
    """

    codec_id = 8
    method = "masked"

    @staticmethod
    def _inner(data: dict[str, Any]) -> tuple[Codec, dict[str, Any]]:
        inner = codec_for_method(str(data["inner_method"]))
        if inner.codec_id == MaskedCodec.codec_id:
            raise FrameError("masked payloads cannot nest another masked payload")
        return inner, data["inner_data"]

    def payload_nbytes(self, dim: int, data: dict[str, Any]) -> int:
        inner, inner_data = self._inner(data)
        nsel = int(np.asarray(data["indices"]).size)
        return masked_payload_bytes(dim, nsel, inner.payload_nbytes(nsel, inner_data))

    def flags(self, dim: int, data: dict[str, Any]) -> int:
        nsel = int(np.asarray(data["indices"]).size)
        coo = 4 * nsel
        bitmap = math.ceil(dim / 8.0)
        return _MASKED_COO if coo <= bitmap else _MASKED_BITMAP

    def encode(self, dim: int, data: dict[str, Any]) -> bytes:
        inner, inner_data = self._inner(data)
        indices = np.ascontiguousarray(data["indices"], dtype=np.uint32)
        if indices.size and int(indices.max()) >= dim:
            raise FrameError("masked index out of range for dim")
        if indices.size > 1 and np.any(np.diff(indices.astype(np.int64)) <= 0):
            raise FrameError("masked indices must be strictly increasing")
        nsel = int(indices.size)
        header = _MASKED_HEADER.pack(
            inner.codec_id, inner.flags(nsel, inner_data), nsel
        )
        if self.flags(dim, data) == _MASKED_COO:
            index_block = indices.tobytes()
        else:
            membership = np.zeros(dim, dtype=np.uint8)
            membership[indices.astype(np.intp)] = 1
            index_block = np.packbits(membership).tobytes()
        return header + index_block + inner.encode(nsel, inner_data)

    def decode(self, dim: int, payload: bytes, flags: int) -> dict[str, Any]:
        if len(payload) < MASKED_HEADER_BYTES:
            raise FrameError("masked payload shorter than its inner header")
        inner_id, inner_flags, nsel = _MASKED_HEADER.unpack(
            payload[:MASKED_HEADER_BYTES]
        )
        if nsel > dim:
            raise FrameError(f"masked payload selects {nsel} of only {dim} coords")
        inner = codec_for_id(inner_id)
        if inner.codec_id == MaskedCodec.codec_id:
            raise FrameError("masked payloads cannot nest another masked payload")
        index_nbytes = masked_index_bytes(dim, nsel)
        if len(payload) < MASKED_HEADER_BYTES + index_nbytes:
            raise FrameError("masked payload shorter than its index block")
        block = payload[MASKED_HEADER_BYTES : MASKED_HEADER_BYTES + index_nbytes]
        if flags == _MASKED_COO:
            if index_nbytes != 4 * nsel:
                raise FrameError("masked COO selector does not match cheapest block")
            indices = _view(block, np.dtype("<u4"))
        elif flags == _MASKED_BITMAP:
            if index_nbytes != math.ceil(dim / 8.0):
                raise FrameError("masked bitmap selector does not match cheapest block")
            mask = np.unpackbits(_view(block, np.uint8), count=dim)
            indices = np.flatnonzero(mask).astype(np.uint32)
            if indices.size != nsel:
                raise FrameError("masked bitmap population does not match nsel")
        else:
            raise FrameError(f"unknown masked index selector {flags}")
        if nsel and int(indices.max()) >= dim:
            raise FrameError("masked index out of range for dim")
        inner_payload = payload[MASKED_HEADER_BYTES + index_nbytes :]
        inner_data = inner.decode(nsel, inner_payload, inner_flags)
        return {
            "indices": indices,
            "inner_method": inner.method,
            "inner_data": inner_data,
        }


def _pack_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``bits``-wide codes into a byte stream, MSB-first per code."""
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint32)
    matrix = ((codes[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
    return np.packbits(matrix.ravel())


def _unpack_codes(payload: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of :func:`_pack_codes` for ``count`` codes."""
    raw = np.frombuffer(payload, dtype=np.uint8)
    if raw.size * 8 < count * bits:
        raise FrameError("bit stream shorter than the declared element count")
    stream = np.unpackbits(raw, count=count * bits).reshape(count, bits)
    weights = (1 << np.arange(bits - 1, -1, -1, dtype=np.uint32))
    return (stream.astype(np.uint32) * weights[None, :]).sum(axis=1, dtype=np.uint32)


_CODECS: tuple[Codec, ...] = (
    DenseFloat32Codec(),
    SparseCodec(codec_id=2, method="dgc"),
    SparseCodec(codec_id=3, method="topk"),
    QSGDCodec(),
    TernGradCodec(),
    DenseFloat64Codec(),
    MaskedCodec(),
)

_BY_ID: dict[int, Codec] = {c.codec_id: c for c in _CODECS}
_BY_METHOD: dict[str, Codec] = {c.method: c for c in _CODECS}


def codec_for_id(codec_id: int) -> Codec:
    """Registered codec for a frame header id."""
    codec = _BY_ID.get(codec_id)
    if codec is None:
        raise FrameError(f"unknown codec id {codec_id}")
    return codec


def codec_for_method(method: str) -> Codec:
    """Registered codec for a compressor method name.

    Error-feedback wrappers re-emit their inner payload, so
    ``ef(topk)``-style names resolve to the inner method's codec.
    """
    if method.startswith("ef(") and method.endswith(")"):
        method = method[3:-1]
    codec = _BY_METHOD.get(method)
    if codec is None:
        raise FrameError(f"no codec registered for method {method!r}")
    return codec


def predicted_payload_nbytes(method: str, dim: int, data: dict[str, Any]) -> int:
    """Analytic payload size for a method — always the encode length."""
    return codec_for_method(method).payload_nbytes(dim, data)


def encode_frame(
    method: str, dim: int, data: dict[str, Any], model_version: int = 0
) -> Frame:
    """Encode one payload dict into a ready-to-send frame."""
    codec = codec_for_method(method)
    return Frame(
        codec_id=codec.codec_id,
        flags=codec.flags(dim, data),
        dim=dim,
        model_version=model_version,
        payload=codec.encode(dim, data),
    )


def decode_frame(frame: Frame) -> tuple[str, dict[str, Any]]:
    """Decode a frame back to ``(method, data)`` via its header codec id."""
    codec = codec_for_id(frame.codec_id)
    return codec.method, codec.decode(frame.dim, frame.payload, frame.flags)


def encode_model_frame(params: np.ndarray, model_version: int) -> Frame:
    """The server model broadcast frame: dense float32 of the params."""
    params = np.asarray(params)
    return Frame(
        codec_id=DenseFloat32Codec.codec_id,
        flags=0,
        dim=params.size,
        model_version=model_version,
        payload=np.ascontiguousarray(params, dtype=np.float32).tobytes(),
    )
