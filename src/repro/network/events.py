"""Deprecated location — the event queue moved to :mod:`repro.sim.events`.

This module re-exports :class:`Event` and :class:`EventQueue` so
existing imports keep working; new code should import from
``repro.sim`` directly.
"""

from repro.sim.events import Event, EventQueue

__all__ = ["Event", "EventQueue"]
