"""Time-varying bandwidth traces.

The paper drives its emulation with ns-3-generated network data.  Here
a trace is a step function of available bandwidth over time, produced
by simple generative models of the same phenomena ns-3 would expose:
slow fading (Gauss–Markov random walk), episodic congestion (on/off
Markov chain), and diurnal load patterns.  A :class:`BandwidthTrace`
can be attached to a client so its effective uplink/downlink bandwidth
changes as simulated time advances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BandwidthTrace",
    "constant_trace",
    "gauss_markov_trace",
    "markov_onoff_trace",
    "diurnal_trace",
    "TRACE_GENERATORS",
    "generate_trace",
]


@dataclass(frozen=True)
class BandwidthTrace:
    """A piecewise-constant bandwidth schedule.

    ``times`` are strictly increasing segment start offsets (seconds)
    beginning at 0.0; ``bandwidth_mbps`` gives the rate holding from
    each start until the next.  Lookup beyond the final segment wraps
    around, so a finite trace can drive an arbitrarily long simulation.
    """

    times: np.ndarray
    bandwidth_mbps: np.ndarray

    def __post_init__(self) -> None:
        if self.times.ndim != 1 or self.times.shape != self.bandwidth_mbps.shape:
            raise ValueError("times and bandwidth arrays must be 1-D and equal length")
        if self.times.size == 0:
            raise ValueError("trace must have at least one segment")
        if self.times[0] != 0.0:
            raise ValueError("trace must start at t=0")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(self.bandwidth_mbps <= 0):
            raise ValueError("bandwidth must be positive everywhere")

    @property
    def duration(self) -> float:
        """Nominal cycle length: last segment start plus mean step."""
        if self.times.size == 1:
            return float(self.times[0]) + 1.0
        step = float(np.mean(np.diff(self.times)))
        return float(self.times[-1]) + step

    def bandwidth_at(self, t: float) -> float:
        """Bandwidth in effect at simulated time ``t`` (wraps around)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        t = t % self.duration
        idx = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.bandwidth_mbps[max(idx, 0)])

    def mean_bandwidth(self) -> float:
        """Time-weighted mean bandwidth over one cycle."""
        widths = np.diff(np.append(self.times, self.duration))
        return float(np.average(self.bandwidth_mbps, weights=widths))


def constant_trace(bandwidth_mbps: float, duration: float = 3600.0) -> BandwidthTrace:
    """A flat trace (static network condition baseline)."""
    if bandwidth_mbps <= 0:
        raise ValueError("bandwidth must be positive")
    return BandwidthTrace(
        times=np.array([0.0, duration / 2.0]),
        bandwidth_mbps=np.array([bandwidth_mbps, bandwidth_mbps]),
    )


def gauss_markov_trace(
    mean_mbps: float,
    rng: np.random.Generator,
    volatility: float = 0.15,
    reversion: float = 0.2,
    step_s: float = 10.0,
    num_steps: int = 360,
    floor_mbps: float = 0.05,
) -> BandwidthTrace:
    """Slow-fading bandwidth: mean-reverting log-space random walk."""
    if mean_mbps <= 0:
        raise ValueError("mean bandwidth must be positive")
    log_mean = np.log(mean_mbps)
    log_bw = np.empty(num_steps)
    current = log_mean
    for i in range(num_steps):
        current += reversion * (log_mean - current) + rng.normal(0.0, volatility)
        log_bw[i] = current
    bw = np.maximum(np.exp(log_bw), floor_mbps)
    times = np.arange(num_steps) * step_s
    return BandwidthTrace(times=times, bandwidth_mbps=bw)


def markov_onoff_trace(
    good_mbps: float,
    bad_mbps: float,
    rng: np.random.Generator,
    p_good_to_bad: float = 0.1,
    p_bad_to_good: float = 0.3,
    step_s: float = 10.0,
    num_steps: int = 360,
) -> BandwidthTrace:
    """Episodic congestion: two-state Gilbert–Elliott-style chain."""
    if good_mbps <= 0 or bad_mbps <= 0:
        raise ValueError("bandwidths must be positive")
    if not (0 <= p_good_to_bad <= 1 and 0 <= p_bad_to_good <= 1):
        raise ValueError("transition probabilities must be in [0, 1]")
    bw = np.empty(num_steps)
    good = True
    for i in range(num_steps):
        bw[i] = good_mbps if good else bad_mbps
        flip = rng.random()
        if good and flip < p_good_to_bad:
            good = False
        elif not good and flip < p_bad_to_good:
            good = True
    times = np.arange(num_steps) * step_s
    return BandwidthTrace(times=times, bandwidth_mbps=bw)


def diurnal_trace(
    peak_mbps: float,
    trough_mbps: float,
    period_s: float = 3600.0,
    num_steps: int = 120,
) -> BandwidthTrace:
    """Sinusoidal load pattern between trough and peak bandwidth."""
    if peak_mbps <= 0 or trough_mbps <= 0:
        raise ValueError("bandwidths must be positive")
    if peak_mbps < trough_mbps:
        peak_mbps, trough_mbps = trough_mbps, peak_mbps
    phase = np.linspace(0.0, 2.0 * np.pi, num_steps, endpoint=False)
    mid = (peak_mbps + trough_mbps) / 2.0
    amp = (peak_mbps - trough_mbps) / 2.0
    bw = mid + amp * np.cos(phase)
    times = np.linspace(0.0, period_s, num_steps, endpoint=False)
    return BandwidthTrace(times=times, bandwidth_mbps=bw)


TRACE_GENERATORS = {
    "constant": constant_trace,
    "gauss_markov": gauss_markov_trace,
    "markov_onoff": markov_onoff_trace,
    "diurnal": diurnal_trace,
}


def generate_trace(kind: str, rng: np.random.Generator, **kwargs) -> BandwidthTrace:
    """Build a trace by generator name with sensible defaults.

    ``constant`` and ``diurnal`` are deterministic and ignore ``rng``.
    """
    if kind == "constant":
        return constant_trace(kwargs.pop("bandwidth_mbps", 10.0), **kwargs)
    if kind == "gauss_markov":
        return gauss_markov_trace(kwargs.pop("mean_mbps", 10.0), rng, **kwargs)
    if kind == "markov_onoff":
        return markov_onoff_trace(
            kwargs.pop("good_mbps", 20.0), kwargs.pop("bad_mbps", 1.0), rng, **kwargs
        )
    if kind == "diurnal":
        return diurnal_trace(
            kwargs.pop("peak_mbps", 20.0), kwargs.pop("trough_mbps", 2.0), **kwargs
        )
    known = ", ".join(sorted(TRACE_GENERATORS))
    raise KeyError(f"unknown trace kind {kind!r}; known kinds: {known}")
