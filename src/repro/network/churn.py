"""Client availability churn.

Embedded FL fleets are not always-on: devices sleep, move out of
coverage, or yield to foreground work.  :class:`ChurnModel` generates
a deterministic on/off schedule per client (exponential on- and
off-period durations), and the async engine consults it to defer work
while a client is offline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ChurnModel", "AlwaysOn"]


class AlwaysOn:
    """The no-churn default: every client is always available."""

    def is_online(self, client_id: int, t: float) -> bool:
        del client_id, t
        return True

    def next_online(self, client_id: int, t: float) -> float:
        del client_id
        return t


class ChurnModel:
    """Per-client alternating on/off schedule.

    Periods are exponentially distributed with the given means and
    pre-generated far enough ahead for any simulation horizon
    (extended lazily on demand), so lookups are deterministic for a
    given seed regardless of query order.
    """

    def __init__(
        self,
        num_clients: int,
        mean_on_s: float = 300.0,
        mean_off_s: float = 60.0,
        seed: int = 0,
        start_online_prob: float = 0.8,
    ):
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("mean periods must be positive")
        if not 0.0 <= start_online_prob <= 1.0:
            raise ValueError("start_online_prob must be in [0, 1]")
        self.num_clients = num_clients
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self._rngs = [
            np.random.default_rng(seed * 1_000_003 + cid) for cid in range(num_clients)
        ]
        self._starts_online = [
            rng.random() < start_online_prob for rng in self._rngs
        ]
        # Per client: sorted toggle times; state flips at each toggle.
        self._toggles: list[list[float]] = [[] for _ in range(num_clients)]

    def _extend(self, cid: int, until: float) -> None:
        toggles = self._toggles[cid]
        rng = self._rngs[cid]
        online = self._starts_online[cid] if not toggles else (
            self._starts_online[cid] ^ (len(toggles) % 2 == 1)
        )
        last = toggles[-1] if toggles else 0.0
        while last <= until:
            mean = self.mean_on_s if online else self.mean_off_s
            last += float(rng.exponential(mean))
            toggles.append(last)
            online = not online

    def _state_at(self, cid: int, t: float) -> tuple[bool, int]:
        """(online?, index of next toggle after t)."""
        if t < 0:
            raise ValueError("time must be non-negative")
        self._extend(cid, t)
        toggles = self._toggles[cid]
        idx = int(np.searchsorted(toggles, t, side="right"))
        online = self._starts_online[cid] ^ (idx % 2 == 1)
        return online, idx

    def is_online(self, client_id: int, t: float) -> bool:
        """Is the client available at simulated time ``t``?"""
        self._check_cid(client_id)
        online, _ = self._state_at(client_id, t)
        return online

    def next_online(self, client_id: int, t: float) -> float:
        """Earliest time >= ``t`` at which the client is online."""
        self._check_cid(client_id)
        online, idx = self._state_at(client_id, t)
        if online:
            return t
        return self._toggles[client_id][idx]

    def _check_cid(self, client_id: int) -> None:
        if not 0 <= client_id < self.num_clients:
            raise ValueError(f"client_id {client_id} out of range")
