"""Per-client network schedules.

:class:`ClientNetwork` combines a base uplink/downlink
:class:`~repro.network.link.LinkModel` with an optional
:class:`~repro.network.traces.BandwidthTrace` that modulates bandwidth
over simulated time.  :class:`NetworkConditions` holds one
``ClientNetwork`` per client and provides constructors for the mixes
used in the paper's empirical study (a fraction of unreliable
"straggler" clients among healthy ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.link import LINK_PRESETS, LinkModel, TransferResult
from repro.network.traces import BandwidthTrace

__all__ = ["ClientNetwork", "NetworkConditions"]


@dataclass
class ClientNetwork:
    """Network endpoint state for a single FL client."""

    uplink: LinkModel
    downlink: LinkModel
    uplink_trace: BandwidthTrace | None = None
    downlink_trace: BandwidthTrace | None = None
    label: str = "client"

    def uplink_at(self, t: float) -> LinkModel:
        """Effective uplink at simulated time ``t``."""
        if self.uplink_trace is None:
            return self.uplink
        factor = self.uplink_trace.bandwidth_at(t) / self.uplink.bandwidth_mbps
        return self.uplink.scaled(factor)

    def downlink_at(self, t: float) -> LinkModel:
        """Effective downlink at simulated time ``t``."""
        if self.downlink_trace is None:
            return self.downlink
        factor = self.downlink_trace.bandwidth_at(t) / self.downlink.bandwidth_mbps
        return self.downlink.scaled(factor)

    def uplink_bandwidth(self, t: float) -> float:
        """Uplink bandwidth (Mbps) observable at time ``t``.

        This is the ``B_i^up`` term of the paper's utility score
        (Eq. 6): the bandwidth a client would report to the server.
        """
        return self.uplink_at(t).bandwidth_mbps

    def downlink_bandwidth(self, t: float) -> float:
        """Downlink bandwidth (Mbps) observable at time ``t`` (``B_i^down``)."""
        return self.downlink_at(t).bandwidth_mbps

    def send_update(self, num_bytes: int, t: float, rng: np.random.Generator) -> TransferResult:
        """Client-to-server transfer at time ``t``."""
        return self.uplink_at(t).transfer(num_bytes, rng)

    def receive_model(self, num_bytes: int, t: float, rng: np.random.Generator) -> TransferResult:
        """Server-to-client transfer at time ``t``."""
        return self.downlink_at(t).transfer(num_bytes, rng)


@dataclass
class NetworkConditions:
    """The network side of a federation: one endpoint per client."""

    clients: list[ClientNetwork] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.clients)

    def __getitem__(self, client_id: int) -> ClientNetwork:
        return self.clients[client_id]

    @classmethod
    def uniform(cls, num_clients: int, preset: str = "ethernet") -> "NetworkConditions":
        """All clients on the same preset link (both directions)."""
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        link = LINK_PRESETS[preset]
        return cls(
            clients=[
                ClientNetwork(uplink=link, downlink=link, label=preset)
                for _ in range(num_clients)
            ]
        )

    @classmethod
    def with_stragglers(
        cls,
        num_clients: int,
        straggler_fraction: float,
        good_preset: str = "ethernet",
        bad_preset: str = "constrained",
        rng: np.random.Generator | None = None,
    ) -> "NetworkConditions":
        """The empirical-study mix: a fraction of clients on a bad link.

        Stragglers are chosen uniformly at random; the count is
        ``round(num_clients * straggler_fraction)``, matching the
        paper's "proportion of unreliable clients" axis in Figure 1.
        """
        if not 0.0 <= straggler_fraction <= 1.0:
            raise ValueError("straggler_fraction must be in [0, 1]")
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        good = LINK_PRESETS[good_preset]
        bad = LINK_PRESETS[bad_preset]
        num_bad = int(round(num_clients * straggler_fraction))
        bad_ids = set(rng.choice(num_clients, size=num_bad, replace=False).tolist())
        clients = []
        for i in range(num_clients):
            if i in bad_ids:
                clients.append(ClientNetwork(uplink=bad, downlink=bad, label=bad_preset))
            else:
                clients.append(ClientNetwork(uplink=good, downlink=good, label=good_preset))
        return cls(clients=clients)

    @classmethod
    def heterogeneous(
        cls,
        num_clients: int,
        presets: list[str],
        rng: np.random.Generator | None = None,
        traces: list[BandwidthTrace | None] | None = None,
    ) -> "NetworkConditions":
        """Clients drawn round-robin from a preset list, optionally traced."""
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not presets:
            raise ValueError("presets must be non-empty")
        del rng  # kept for API symmetry with the other constructors
        clients = []
        for i in range(num_clients):
            preset = presets[i % len(presets)]
            link = LINK_PRESETS[preset]
            trace = traces[i % len(traces)] if traces else None
            clients.append(
                ClientNetwork(
                    uplink=link,
                    downlink=link,
                    uplink_trace=trace,
                    downlink_trace=trace,
                    label=preset,
                )
            )
        return cls(clients=clients)

    def straggler_ids(self, threshold_mbps: float = 2.0, t: float = 0.0) -> list[int]:
        """Clients whose uplink at time ``t`` is below ``threshold_mbps``."""
        return [
            i
            for i, c in enumerate(self.clients)
            if c.uplink_bandwidth(t) < threshold_mbps
        ]
