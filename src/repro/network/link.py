"""Point-to-point link models.

A :class:`LinkModel` turns a payload size into a transfer time and a
delivery verdict, from four physical-ish parameters: bandwidth,
propagation latency, latency jitter, and packet/update loss rate.
This is the quantity the paper consumes from ns-3 — per-transfer delay
and loss — without simulating individual packets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["LinkModel", "TransferResult", "LINK_PRESETS", "link_preset"]

_BITS_PER_BYTE = 8.0
_MBPS = 1_000_000.0


@dataclass(frozen=True)
class TransferResult:
    """Outcome of sending a payload across a link."""

    delivered: bool
    duration_s: float
    num_bytes: int


@dataclass(frozen=True)
class LinkModel:
    """A unidirectional link.

    Parameters
    ----------
    bandwidth_mbps:
        Sustained throughput in megabits per second; must be positive.
    latency_ms:
        One-way propagation delay added to every transfer.
    jitter_ms:
        Standard deviation of a (truncated-at-zero) Gaussian latency
        perturbation.
    loss_rate:
        Probability that a transfer is lost entirely.  The paper models
        constrained links at update granularity — an undelivered update
        is a dropout — so loss applies per transfer, not per packet.
    """

    bandwidth_mbps: float
    latency_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")

    def transfer_time(self, num_bytes: int, rng: np.random.Generator | None = None) -> float:
        """Seconds to move ``num_bytes`` across the link (no loss)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        serialisation = num_bytes * _BITS_PER_BYTE / (self.bandwidth_mbps * _MBPS)
        latency = self.latency_ms / 1000.0
        if rng is not None and self.jitter_ms > 0:
            latency = max(0.0, latency + rng.normal(0.0, self.jitter_ms / 1000.0))
        return serialisation + latency

    def transfer(self, num_bytes: int, rng: np.random.Generator) -> TransferResult:
        """Attempt a transfer, rolling for loss."""
        duration = self.transfer_time(num_bytes, rng)
        delivered = rng.random() >= self.loss_rate
        return TransferResult(delivered=delivered, duration_s=duration, num_bytes=num_bytes)

    def scaled(self, bandwidth_factor: float) -> "LinkModel":
        """A copy with bandwidth multiplied by ``bandwidth_factor``."""
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        return replace(self, bandwidth_mbps=self.bandwidth_mbps * bandwidth_factor)


LINK_PRESETS: dict[str, LinkModel] = {
    # Campus wired link: effectively unconstrained for gradient-sized payloads.
    "ethernet": LinkModel(bandwidth_mbps=100.0, latency_ms=1.0, jitter_ms=0.2),
    # Healthy consumer Wi-Fi.
    "wifi": LinkModel(bandwidth_mbps=20.0, latency_ms=5.0, jitter_ms=2.0, loss_rate=0.01),
    # Cellular uplink (embedded/mobile clients).
    "lte": LinkModel(bandwidth_mbps=5.0, latency_ms=40.0, jitter_ms=15.0, loss_rate=0.03),
    # Badly constrained/congested edge link — the paper's problem regime.
    "constrained": LinkModel(bandwidth_mbps=1.0, latency_ms=100.0, jitter_ms=40.0, loss_rate=0.10),
}


def link_preset(name: str) -> LinkModel:
    """Look up a preset link by name, failing loudly on typos."""
    try:
        return LINK_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(LINK_PRESETS))
        raise KeyError(f"unknown link preset {name!r}; known presets: {known}") from None
