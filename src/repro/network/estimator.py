"""Client-side bandwidth estimation.

AdaFL's utility score consumes per-client bandwidths ``B_i^down`` and
``B_i^up`` (Eq. 6).  Real clients do not know their link capacity —
they estimate it from observed transfers.  :class:`BandwidthEstimator`
implements the estimator a deployment would run: an exponentially
weighted moving average over per-transfer throughput samples, with a
configurable prior for the cold-start rounds before any transfer has
completed.
"""

from __future__ import annotations

__all__ = ["BandwidthEstimator"]

_BITS_PER_BYTE = 8.0
_MBPS = 1_000_000.0


class BandwidthEstimator:
    """EWMA throughput estimator over observed transfers."""

    def __init__(self, alpha: float = 0.3, prior_mbps: float = 10.0):
        """``alpha`` weights the newest sample; ``prior_mbps`` seeds the
        estimate before the first observation."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if prior_mbps <= 0:
            raise ValueError("prior_mbps must be positive")
        self.alpha = alpha
        self.prior_mbps = prior_mbps
        self._estimate: float | None = None
        self._num_samples = 0

    @property
    def num_samples(self) -> int:
        return self._num_samples

    @property
    def cold(self) -> bool:
        """True until at least one transfer has been observed."""
        return self._estimate is None

    def observe(self, num_bytes: int, duration_s: float) -> float:
        """Fold one completed transfer into the estimate; returns it."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        sample = num_bytes * _BITS_PER_BYTE / duration_s / _MBPS
        if self._estimate is None:
            self._estimate = sample
        else:
            self._estimate = self.alpha * sample + (1.0 - self.alpha) * self._estimate
        self._num_samples += 1
        return self._estimate

    def estimate_mbps(self) -> float:
        """Current bandwidth estimate (the prior while cold)."""
        return self.prior_mbps if self._estimate is None else self._estimate

    def reset(self) -> None:
        """Forget all observations (e.g. after a network handover)."""
        self._estimate = None
        self._num_samples = 0
