"""Network emulation substrate: links, traces, schedules, events."""

from repro.network.churn import AlwaysOn, ChurnModel
from repro.network.conditions import ClientNetwork, NetworkConditions
from repro.network.estimator import BandwidthEstimator
from repro.sim.events import Event, EventQueue
from repro.network.link import LINK_PRESETS, LinkModel, TransferResult, link_preset
from repro.network.tracefile import load_trace_csv, load_trace_dir, save_trace_csv
from repro.network.traces import (
    TRACE_GENERATORS,
    BandwidthTrace,
    constant_trace,
    diurnal_trace,
    gauss_markov_trace,
    generate_trace,
    markov_onoff_trace,
)

__all__ = [
    "Event",
    "BandwidthEstimator",
    "EventQueue",
    "LinkModel",
    "TransferResult",
    "LINK_PRESETS",
    "link_preset",
    "BandwidthTrace",
    "save_trace_csv",
    "load_trace_csv",
    "load_trace_dir",
    "constant_trace",
    "gauss_markov_trace",
    "markov_onoff_trace",
    "diurnal_trace",
    "generate_trace",
    "TRACE_GENERATORS",
    "ClientNetwork",
    "ChurnModel",
    "AlwaysOn",
    "NetworkConditions",
]
