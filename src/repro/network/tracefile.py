"""Bandwidth-trace file I/O.

The paper drives its emulation from ns-3 output (the ns3-fl workflow);
deployments log real link telemetry.  Both reduce to the same
interchange format: rows of ``time_s, bandwidth_mbps``.  This module
reads and writes that CSV form so externally generated traces (ns-3,
iperf logs, production telemetry) can drive
:class:`repro.network.traces.BandwidthTrace` directly.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.network.traces import BandwidthTrace

__all__ = ["save_trace_csv", "load_trace_csv", "load_trace_dir"]

_HEADER = ("time_s", "bandwidth_mbps")


def save_trace_csv(trace: BandwidthTrace, path: str | Path) -> Path:
    """Write a trace as ``time_s,bandwidth_mbps`` rows; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for t, bw in zip(trace.times, trace.bandwidth_mbps):
            writer.writerow([f"{t:.6f}", f"{bw:.6f}"])
    return path


def load_trace_csv(path: str | Path) -> BandwidthTrace:
    """Read a trace CSV written by :func:`save_trace_csv` (or ns-3 export).

    Rows must be sorted by time, start at t=0, and carry positive
    bandwidths; a header row matching the canonical column names is
    skipped if present.
    """
    path = Path(path)
    times: list[float] = []
    bws: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row_index, row in enumerate(reader):
            if not row or row[0].startswith("#"):
                continue
            if row_index == 0 and row[0].strip().lower() == _HEADER[0]:
                continue
            if len(row) < 2:
                raise ValueError(f"{path}: row {row_index} has fewer than 2 columns")
            times.append(float(row[0]))
            bws.append(float(row[1]))
    if not times:
        raise ValueError(f"{path}: no trace rows found")
    return BandwidthTrace(
        times=np.asarray(times), bandwidth_mbps=np.asarray(bws)
    )


def load_trace_dir(directory: str | Path, pattern: str = "*.csv") -> list[BandwidthTrace]:
    """Load every trace CSV in a directory (sorted by filename).

    The per-client trace layout ns3-fl produces: one file per client.
    """
    directory = Path(directory)
    paths = sorted(directory.glob(pattern))
    if not paths:
        raise ValueError(f"no trace files matching {pattern!r} in {directory}")
    return [load_trace_csv(p) for p in paths]
