"""Client data partitioners: IID and several non-IID schemes.

The paper follows the non-IID setting of McMahan et al. (FedAvg): sort
the data by label, slice it into shards, and deal each client a small
number of shards so most clients only observe a few classes.  A
Dirichlet partitioner (the other standard in the FL literature) and a
label-skew partitioner are provided for the ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "iid_partition",
    "shard_partition",
    "dirichlet_partition",
    "label_skew_partition",
    "quantity_skew_partition",
    "partition_indices",
    "PartitionPlan",
    "partition_plan",
    "partition_dataset",
    "PartitionStats",
    "partition_stats",
]


def _check_args(n_samples: int, num_clients: int) -> None:
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if n_samples < num_clients:
        raise ValueError(
            f"cannot split {n_samples} samples across {num_clients} clients"
        )


def iid_partition(
    n_samples: int,
    num_clients: int,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Shuffle and deal samples evenly across clients."""
    _check_args(n_samples, num_clients)
    order = rng.permutation(n_samples)
    return [np.sort(chunk) for chunk in np.array_split(order, num_clients)]


def shard_partition(
    labels: np.ndarray,
    num_clients: int,
    shards_per_client: int = 2,
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """McMahan-style non-IID partition via label-sorted shards.

    The label-sorted index list is cut into ``num_clients *
    shards_per_client`` shards and each client receives
    ``shards_per_client`` random shards, so clients mostly see
    ``shards_per_client`` classes.
    """
    labels = np.asarray(labels)
    _check_args(labels.shape[0], num_clients)
    if shards_per_client <= 0:
        raise ValueError("shards_per_client must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    num_shards = num_clients * shards_per_client
    if labels.shape[0] < num_shards:
        raise ValueError(
            f"{labels.shape[0]} samples cannot form {num_shards} shards"
        )
    sorted_idx = np.argsort(labels, kind="stable")
    shards = np.array_split(sorted_idx, num_shards)
    shard_order = rng.permutation(num_shards)
    parts = []
    for client in range(num_clients):
        picks = shard_order[
            client * shards_per_client : (client + 1) * shards_per_client
        ]
        parts.append(np.sort(np.concatenate([shards[s] for s in picks])))
    return parts


def dirichlet_partition(
    labels: np.ndarray,
    num_clients: int,
    alpha: float = 0.5,
    rng: np.random.Generator | None = None,
    min_samples: int = 1,
) -> list[np.ndarray]:
    """Dirichlet(alpha) label-proportion partition.

    Lower ``alpha`` means more skew.  Resamples until every client has
    at least ``min_samples`` samples (bounded retries).
    """
    labels = np.asarray(labels)
    _check_args(labels.shape[0], num_clients)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    num_classes = int(labels.max()) + 1

    for _ in range(100):
        buckets: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
        for cls in range(num_classes):
            cls_idx = np.flatnonzero(labels == cls)
            rng.shuffle(cls_idx)
            props = rng.dirichlet(alpha * np.ones(num_clients))
            cuts = (np.cumsum(props) * len(cls_idx)).astype(int)[:-1]
            for client, chunk in enumerate(np.split(cls_idx, cuts)):
                buckets[client].append(chunk)
        parts = [
            np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.int64)
            for b in buckets
        ]
        if min(len(p) for p in parts) >= min_samples:
            return parts
    raise RuntimeError(
        "dirichlet_partition failed to satisfy min_samples after 100 tries; "
        "increase alpha or dataset size"
    )


def label_skew_partition(
    labels: np.ndarray,
    num_clients: int,
    classes_per_client: int = 2,
    rng: np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Each client sees exactly ``classes_per_client`` classes.

    Classes are assigned round-robin so every class is covered, then
    each class's samples are split evenly among the clients holding it.
    """
    labels = np.asarray(labels)
    _check_args(labels.shape[0], num_clients)
    num_classes = int(labels.max()) + 1
    if classes_per_client <= 0 or classes_per_client > num_classes:
        raise ValueError("classes_per_client out of range")
    rng = rng if rng is not None else np.random.default_rng(0)

    class_order = rng.permutation(num_classes)
    assignment: list[list[int]] = [[] for _ in range(num_clients)]
    slot = 0
    for _ in range(classes_per_client):
        for client in range(num_clients):
            assignment[client].append(int(class_order[slot % num_classes]))
            slot += 1

    holders: dict[int, list[int]] = {}
    for client, classes in enumerate(assignment):
        for cls in classes:
            holders.setdefault(cls, []).append(client)

    buckets: list[list[np.ndarray]] = [[] for _ in range(num_clients)]
    for cls, clients in holders.items():
        cls_idx = np.flatnonzero(labels == cls)
        rng.shuffle(cls_idx)
        for client, chunk in zip(clients, np.array_split(cls_idx, len(clients))):
            buckets[client].append(chunk)
    return [
        np.sort(np.concatenate(b)) if b else np.empty(0, dtype=np.int64)
        for b in buckets
    ]


def quantity_skew_partition(
    n_samples: int,
    num_clients: int,
    rng: np.random.Generator,
    concentration: float = 1.0,
    min_samples: int = 1,
) -> list[np.ndarray]:
    """IID labels but power-law-skewed dataset *sizes*.

    Client shares are drawn from Dirichlet(concentration); lower
    concentration means a few data-rich clients and a long tail of
    data-poor ones — the quantity-heterogeneity axis of real FL fleets
    (the label distribution stays IID).
    """
    _check_args(n_samples, num_clients)
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    if min_samples < 1 or min_samples * num_clients > n_samples:
        raise ValueError("min_samples infeasible for this dataset size")
    for _ in range(100):
        shares = rng.dirichlet(concentration * np.ones(num_clients))
        sizes = np.maximum((shares * n_samples).astype(int), 0)
        # Fix rounding so sizes sum exactly to n_samples.
        sizes[-1] = n_samples - sizes[:-1].sum()
        if sizes.min() >= min_samples:
            order = rng.permutation(n_samples)
            cuts = np.cumsum(sizes)[:-1]
            return [np.sort(chunk) for chunk in np.split(order, cuts)]
    raise RuntimeError(
        "quantity_skew_partition failed to satisfy min_samples after 100 tries"
    )


def partition_indices(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "iid",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> list[np.ndarray]:
    """Compute per-client index arrays by scheme name.

    Schemes: ``iid``, ``shard`` (the paper's non-IID), ``dirichlet``,
    ``label_skew``, ``quantity_skew``.  Indices only — no per-client
    ``Dataset`` objects are created, so the result is what a virtual
    client population stores as shard *specs* and materialises lazily.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if scheme == "iid":
        return iid_partition(len(dataset), num_clients, rng)
    if scheme == "shard":
        return shard_partition(dataset.y, num_clients, rng=rng, **kwargs)
    if scheme == "dirichlet":
        return dirichlet_partition(dataset.y, num_clients, rng=rng, **kwargs)
    if scheme == "label_skew":
        return label_skew_partition(dataset.y, num_clients, rng=rng, **kwargs)
    if scheme == "quantity_skew":
        return quantity_skew_partition(len(dataset), num_clients, rng=rng, **kwargs)
    raise ValueError(
        f"unknown partition scheme {scheme!r}; "
        "expected iid, shard, dirichlet, label_skew, or quantity_skew"
    )


@dataclass(frozen=True)
class PartitionPlan:
    """A partition held as index arrays, with shards cut on demand.

    The plan keeps one reference to the source dataset plus one index
    array per client — a few bytes per sample — so holding the plan for
    a 100k-client population costs O(total samples), not O(clients x
    shard copy).  ``shard(cid)`` cuts the actual per-client ``Dataset``
    only when that client materialises.
    """

    dataset: Dataset
    indices: tuple[np.ndarray, ...]

    @property
    def num_clients(self) -> int:
        return len(self.indices)

    def __len__(self) -> int:
        return len(self.indices)

    def shard(self, cid: int) -> Dataset:
        """Materialise client ``cid``'s dataset (a fresh subset copy)."""
        return self.dataset.subset(self.indices[cid])

    def sizes(self) -> np.ndarray:
        """Per-client sample counts, without cutting any shard."""
        return np.array([len(idx) for idx in self.indices])


def partition_plan(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "iid",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> PartitionPlan:
    """Build a lazy :class:`PartitionPlan` by scheme name."""
    parts = partition_indices(dataset, num_clients, scheme, rng, **kwargs)
    return PartitionPlan(dataset=dataset, indices=tuple(parts))


def partition_dataset(
    dataset: Dataset,
    num_clients: int,
    scheme: str = "iid",
    rng: np.random.Generator | None = None,
    **kwargs,
) -> list[Dataset]:
    """Split a dataset into per-client datasets by scheme name.

    Eager counterpart of :func:`partition_plan`: cuts every shard up
    front.  Bit-identical to the historical behaviour (the index
    computation is shared with :func:`partition_indices`).
    """
    plan = partition_plan(dataset, num_clients, scheme, rng, **kwargs)
    return [plan.shard(i) for i in range(plan.num_clients)]


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics of a client partition."""

    sizes: np.ndarray
    class_counts: np.ndarray  # (num_clients, num_classes)
    mean_entropy: float  # mean per-client label entropy, in nats

    @property
    def num_clients(self) -> int:
        return len(self.sizes)


def partition_stats(parts: list[Dataset]) -> PartitionStats:
    """Compute size and label-distribution statistics for a partition."""
    if not parts:
        raise ValueError("empty partition")
    num_classes = parts[0].num_classes
    sizes = np.array([len(p) for p in parts])
    counts = np.stack([p.class_counts() for p in parts])
    entropies = []
    for row in counts:
        total = row.sum()
        if total == 0:
            entropies.append(0.0)
            continue
        probs = row[row > 0] / total
        entropies.append(float(-(probs * np.log(probs)).sum()))
    return PartitionStats(
        sizes=sizes,
        class_counts=counts,
        mean_entropy=float(np.mean(entropies)),
    )
