"""Synthetic image-classification datasets.

This environment has no network access, so MNIST / CIFAR-10 / CIFAR-100
are replaced by class-conditional generators (see the substitution
table in DESIGN.md).  Each class is defined by one or more smooth
random *prototype* images; samples are prototypes plus Gaussian pixel
noise and small random translations.  Difficulty is controlled by the
noise level, the number of sub-prototypes per class, and the image
size, and is tuned so the paper's models show the same qualitative
convergence behaviour (fast on the MNIST-like set, slower and noisier
on the CIFAR-like sets).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset

__all__ = [
    "make_prototypes",
    "make_image_classification",
    "make_mnist_like",
    "make_cifar10_like",
    "make_cifar100_like",
    "DATASET_BUILDERS",
    "make_dataset",
]


def make_prototypes(
    num_classes: int,
    image_shape: tuple[int, int, int],
    prototypes_per_class: int,
    rng: np.random.Generator,
    coarse: int = 4,
) -> np.ndarray:
    """Generate smooth random prototype images.

    Returns an array of shape ``(num_classes, prototypes_per_class, C,
    H, W)``.  Prototypes are low-frequency random fields: white noise
    on a ``coarse``x``coarse`` grid, bilinearly upsampled, then
    normalised to unit standard deviation so class separation is set
    purely by the sampling noise level.
    """
    c, h, w = image_shape
    protos = np.empty((num_classes, prototypes_per_class, c, h, w), dtype=np.float64)
    zoom_h = h / coarse
    zoom_w = w / coarse
    for cls in range(num_classes):
        for k in range(prototypes_per_class):
            for ch in range(c):
                field = rng.normal(size=(coarse, coarse))
                smooth = ndimage.zoom(field, (zoom_h, zoom_w), order=1)
                smooth = smooth[:h, :w]
                std = smooth.std()
                if std < 1e-9:
                    std = 1.0
                protos[cls, k, ch] = (smooth - smooth.mean()) / std
    return protos


def _random_shift(image: np.ndarray, max_shift: int, rng: np.random.Generator) -> np.ndarray:
    """Translate an image by up to ``max_shift`` pixels (zero fill)."""
    if max_shift == 0:
        return image
    dy = int(rng.integers(-max_shift, max_shift + 1))
    dx = int(rng.integers(-max_shift, max_shift + 1))
    if dy == 0 and dx == 0:
        return image
    shifted = np.zeros_like(image)
    h, w = image.shape[-2:]
    ys = slice(max(dy, 0), h + min(dy, 0))
    xs = slice(max(dx, 0), w + min(dx, 0))
    ys_src = slice(max(-dy, 0), h + min(-dy, 0))
    xs_src = slice(max(-dx, 0), w + min(-dx, 0))
    shifted[..., ys, xs] = image[..., ys_src, xs_src]
    return shifted


def make_image_classification(
    n_train: int,
    n_test: int,
    num_classes: int,
    image_shape: tuple[int, int, int] = (1, 14, 14),
    noise_std: float = 0.5,
    prototypes_per_class: int = 1,
    max_shift: int = 1,
    seed: int = 0,
    name: str = "synthetic",
) -> tuple[Dataset, Dataset]:
    """Build (train, test) synthetic classification datasets.

    Labels are balanced (round-robin) before shuffling so every class
    appears even in small datasets, which the non-IID partitioners
    rely on.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("dataset sizes must be positive")
    if noise_std < 0:
        raise ValueError("noise_std must be non-negative")
    rng = np.random.default_rng(seed)
    protos = make_prototypes(num_classes, image_shape, prototypes_per_class, rng)

    def sample_split(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = np.arange(n) % num_classes
        rng.shuffle(labels)
        x = np.empty((n, *image_shape), dtype=np.float64)
        for i, cls in enumerate(labels):
            k = int(rng.integers(prototypes_per_class))
            img = protos[cls, k] + rng.normal(scale=noise_std, size=image_shape)
            x[i] = _random_shift(img, max_shift, rng)
        return x, labels.astype(np.int64)

    x_train, y_train = sample_split(n_train)
    x_test, y_test = sample_split(n_test)
    train = Dataset(x_train, y_train, num_classes, name=f"{name}-train")
    test = Dataset(x_test, y_test, num_classes, name=f"{name}-test")
    return train, test


def make_mnist_like(
    n_train: int = 2000,
    n_test: int = 500,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """MNIST stand-in: 10 easy grayscale classes, 1x14x14."""
    return make_image_classification(
        n_train,
        n_test,
        num_classes=10,
        image_shape=(1, 14, 14),
        noise_std=0.45,
        prototypes_per_class=1,
        max_shift=1,
        seed=seed,
        name="mnist-like",
    )


def make_cifar10_like(
    n_train: int = 2000,
    n_test: int = 500,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CIFAR-10 stand-in: 10 harder colour classes, 3x12x12."""
    return make_image_classification(
        n_train,
        n_test,
        num_classes=10,
        image_shape=(3, 12, 12),
        noise_std=0.9,
        prototypes_per_class=2,
        max_shift=1,
        seed=seed,
        name="cifar10-like",
    )


def make_cifar100_like(
    n_train: int = 4000,
    n_test: int = 1000,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CIFAR-100 stand-in: 100 colour classes, 3x12x12."""
    return make_image_classification(
        n_train,
        n_test,
        num_classes=100,
        image_shape=(3, 12, 12),
        noise_std=0.7,
        prototypes_per_class=1,
        max_shift=1,
        seed=seed,
        name="cifar100-like",
    )


DATASET_BUILDERS = {
    "mnist": make_mnist_like,
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
}


def make_dataset(
    name: str,
    n_train: int,
    n_test: int,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Build a named dataset pair from the registry."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_BUILDERS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    return builder(n_train=n_train, n_test=n_test, seed=seed)
