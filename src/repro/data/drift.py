"""Concept drift: synthetic data whose distribution moves over time.

The paper motivates adaptivity with *network* dynamics; real edge
deployments also face *data* dynamics (seasonality, sensor aging,
user-behaviour shift).  :class:`DriftingSource` generates class
prototypes that rotate smoothly through prototype space as a drift
phase advances, so a federation can be re-sampled mid-training and the
adaptation machinery exercised end to end (swap ``Client.dataset``
between rounds — see the tests for the pattern).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic import make_prototypes

__all__ = ["DriftingSource"]


class DriftingSource:
    """Class-conditional generator with controllable distribution drift.

    Two prototype banks (start and end) are fixed at construction; at
    drift phase ``t`` in [0, 1] the effective prototype of each class
    is the spherical-ish interpolation ``(1-t)*start + t*end``,
    renormalised.  ``t=0`` reproduces the initial distribution; ``t=1``
    is a fully drifted one; intermediate phases move smoothly.
    """

    def __init__(
        self,
        num_classes: int,
        image_shape: tuple[int, int, int] = (1, 10, 10),
        noise_std: float = 0.5,
        seed: int = 0,
    ):
        if num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.num_classes = num_classes
        self.image_shape = tuple(image_shape)
        self.noise_std = noise_std
        rng = np.random.default_rng(seed)
        self._start = make_prototypes(num_classes, self.image_shape, 1, rng)[:, 0]
        self._end = make_prototypes(num_classes, self.image_shape, 1, rng)[:, 0]
        self._sample_rng = np.random.default_rng(seed + 1)

    def prototypes_at(self, phase: float) -> np.ndarray:
        """Effective class prototypes at drift phase ``phase``."""
        if not 0.0 <= phase <= 1.0:
            raise ValueError("phase must be in [0, 1]")
        blend = (1.0 - phase) * self._start + phase * self._end
        # Renormalise each prototype to unit std so task difficulty
        # (signal-to-noise) is phase-invariant.
        flat = blend.reshape(self.num_classes, -1)
        std = flat.std(axis=1, keepdims=True)
        std[std < 1e-9] = 1.0
        flat = flat / std
        return flat.reshape(blend.shape)

    def sample(self, phase: float, n: int, name: str = "drift") -> Dataset:
        """Draw a balanced dataset from the phase-``phase`` distribution."""
        if n <= 0:
            raise ValueError("n must be positive")
        protos = self.prototypes_at(phase)
        labels = np.arange(n) % self.num_classes
        self._sample_rng.shuffle(labels)
        x = protos[labels] + self._sample_rng.normal(
            scale=self.noise_std, size=(n, *self.image_shape)
        )
        return Dataset(
            x=x,
            y=labels.astype(np.int64),
            num_classes=self.num_classes,
            name=f"{name}@{phase:.2f}",
        )

    def drift_magnitude(self, phase_a: float, phase_b: float) -> float:
        """Mean L2 distance between class prototypes at two phases."""
        a = self.prototypes_at(phase_a).reshape(self.num_classes, -1)
        b = self.prototypes_at(phase_b).reshape(self.num_classes, -1)
        return float(np.linalg.norm(a - b, axis=1).mean())
