"""In-memory labelled dataset with deterministic batching."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A fixed array dataset: features ``x`` and integer labels ``y``.

    ``x`` has shape (N, ...) — typically (N, C, H, W) for images — and
    ``y`` has shape (N,).  Instances are immutable; partitioning
    produces index-based views copied into new ``Dataset`` objects.
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x has {self.x.shape[0]} samples but y has {self.y.shape[0]}"
            )
        if self.y.ndim != 1:
            raise ValueError("labels must be a 1-D integer array")
        if self.num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if len(self) and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise ValueError("label outside [0, num_classes)")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Per-sample feature shape (excludes the batch dimension)."""
        return self.x.shape[1:]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset restricted to ``indices`` (copied, order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            x=self.x[indices].copy(),
            y=self.y[indices].copy(),
            num_classes=self.num_classes,
            name=self.name,
        )

    def batches(self, batch_size: int, rng: np.random.Generator | None = None):
        """Yield (x, y) minibatches; shuffled when an RNG is given.

        The final short batch is included, matching the behaviour FL
        clients expect when local datasets are tiny.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = len(self)
        order = np.arange(n)
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            yield self.x[idx], self.y[idx]

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, shape (num_classes,)."""
        return np.bincount(self.y, minlength=self.num_classes)

    def split(self, fraction: float, rng: np.random.Generator) -> tuple["Dataset", "Dataset"]:
        """Random split into (first, second) with ``fraction`` in the first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        n = len(self)
        order = rng.permutation(n)
        cut = int(round(n * fraction))
        return self.subset(order[:cut]), self.subset(order[cut:])
