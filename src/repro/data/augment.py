"""Lightweight image augmentations.

Standard augmentations for the CIFAR-like synthetic sets: horizontal
flips, random crops with zero padding, and additive Gaussian noise.
All functions are pure (they take an RNG and return a new array) so
clients can augment deterministically from their own seeds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_horizontal_flip", "random_crop", "add_gaussian_noise", "Augmenter"]


def random_horizontal_flip(
    batch: np.ndarray, rng: np.random.Generator, prob: float = 0.5
) -> np.ndarray:
    """Flip each image left-right with probability ``prob``."""
    if batch.ndim != 4:
        raise ValueError("batch must be (N, C, H, W)")
    if not 0.0 <= prob <= 1.0:
        raise ValueError("prob must be in [0, 1]")
    out = batch.copy()
    flips = rng.random(batch.shape[0]) < prob
    out[flips] = out[flips, :, :, ::-1]
    return out


def random_crop(
    batch: np.ndarray, rng: np.random.Generator, padding: int = 1
) -> np.ndarray:
    """Zero-pad by ``padding`` then crop back at a random offset."""
    if batch.ndim != 4:
        raise ValueError("batch must be (N, C, H, W)")
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return batch.copy()
    n, c, h, w = batch.shape
    padded = np.pad(
        batch, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    out = np.empty_like(batch)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        oy, ox = offsets_y[i], offsets_x[i]
        out[i] = padded[i, :, oy : oy + h, ox : ox + w]
    return out


def add_gaussian_noise(
    batch: np.ndarray, rng: np.random.Generator, std: float = 0.05
) -> np.ndarray:
    """Add i.i.d. Gaussian pixel noise."""
    if std < 0:
        raise ValueError("std must be non-negative")
    if std == 0:
        return batch.copy()
    return batch + rng.normal(scale=std, size=batch.shape)


class Augmenter:
    """A composed, seeded augmentation pipeline."""

    def __init__(
        self,
        seed: int = 0,
        flip_prob: float = 0.5,
        crop_padding: int = 1,
        noise_std: float = 0.0,
    ):
        if not 0.0 <= flip_prob <= 1.0:
            raise ValueError("flip_prob must be in [0, 1]")
        if crop_padding < 0 or noise_std < 0:
            raise ValueError("crop_padding and noise_std must be non-negative")
        self.flip_prob = flip_prob
        self.crop_padding = crop_padding
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        out = random_horizontal_flip(batch, self._rng, self.flip_prob)
        out = random_crop(out, self._rng, self.crop_padding)
        out = add_gaussian_noise(out, self._rng, self.noise_std)
        return out
