"""Data substrate: datasets, synthetic generators, and partitioners."""

from repro.data.augment import (
    Augmenter,
    add_gaussian_noise,
    random_crop,
    random_horizontal_flip,
)
from repro.data.dataset import Dataset
from repro.data.drift import DriftingSource
from repro.data.partition import (
    PartitionPlan,
    PartitionStats,
    dirichlet_partition,
    iid_partition,
    label_skew_partition,
    partition_dataset,
    partition_indices,
    partition_plan,
    partition_stats,
    quantity_skew_partition,
    shard_partition,
)
from repro.data.synthetic import (
    DATASET_BUILDERS,
    make_cifar10_like,
    make_cifar100_like,
    make_dataset,
    make_image_classification,
    make_mnist_like,
    make_prototypes,
)

__all__ = [
    "Dataset",
    "DriftingSource",
    "Augmenter",
    "random_horizontal_flip",
    "random_crop",
    "add_gaussian_noise",
    "iid_partition",
    "shard_partition",
    "dirichlet_partition",
    "label_skew_partition",
    "quantity_skew_partition",
    "partition_indices",
    "partition_plan",
    "PartitionPlan",
    "partition_dataset",
    "PartitionStats",
    "partition_stats",
    "make_prototypes",
    "make_image_classification",
    "make_mnist_like",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_dataset",
    "DATASET_BUILDERS",
]
