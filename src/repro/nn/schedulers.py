"""Learning-rate schedulers and gradient utilities.

The DGC paper pairs compression warm-up with a learning-rate warm-up;
these schedulers provide that plus the standard step and cosine decay
policies, operating in place on any :class:`repro.nn.optim.Optimizer`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.layers import Parameter
from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR", "clip_grad_norm"]


class LRScheduler:
    """Base scheduler: computes the lr for a step count."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new lr; returns it."""
        self.step_count += 1
        lr = self.lr_at(self.step_count)
        if lr <= 0:
            raise ValueError(f"scheduler produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base lr to ``min_lr`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.t_max = t_max
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        t = min(step, self.t_max)
        cos = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        lr = self.min_lr + (self.base_lr - self.min_lr) * cos
        return max(lr, 1e-12)


class WarmupLR(LRScheduler):
    """Linear ramp from ``base_lr / warmup_steps`` to ``base_lr``.

    After the ramp the lr holds at the base value; compose with another
    policy by chaining (apply warm-up first, then hand the optimizer to
    the decay scheduler).
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int):
        super().__init__(optimizer)
        if warmup_steps <= 0:
            raise ValueError("warmup_steps must be positive")
        self.warmup_steps = warmup_steps

    def lr_at(self, step: int) -> float:
        if step >= self.warmup_steps:
            return self.base_lr
        return self.base_lr * step / self.warmup_steps


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        total += float(np.sum(p.grad**2))
    norm = math.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm
