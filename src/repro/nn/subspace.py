"""Parameter subspaces: index-set views over the flat parameter buffer.

The flat-parameter engine (:mod:`repro.nn.sequential`) treats a model
as one vector ``w ∈ R^d``.  A :class:`ParamSubspace` names a subset of
those ``d`` coordinates — sorted, duplicate-free indices — so every
layer of the stack can speak about *partial* models: Adaptive
Federated Dropout ships per-client sub-model updates, the wire layer
encodes masked payloads (index block + values), and aggregation folds
deltas that only cover some coordinates.

Three invariants keep the abstraction cheap and safe:

* indices are canonical (``int64``, strictly increasing) so two
  subspaces over the same coordinates compare equal and produce
  byte-identical wire encodings;
* the full subspace is special-cased: ``gather`` returns the caller's
  vector unchanged (O(1), zero-copy — exactly the legacy full-width
  path) and ``scatter`` degenerates to a dense copy, so code threaded
  through a subspace with ``is_full`` behaves bit-identically to code
  that never heard of subspaces;
* :attr:`token` is a tiny hashable fingerprint (size + CRC-32 of the
  index bytes) for memo keys — e.g. the model-frame cache — without
  holding the index array itself in the key.

Mask *generation* is deterministic by construction: :meth:`sample`
draws from a caller-supplied ``np.random.Generator`` (in the engines,
always a :meth:`repro.sim.SimKernel.stream`), taking a proportional
slice of every parameter span in the layout so no layer is ever left
without coverage.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["ParamLayoutEntry", "ParamSubspace"]


class ParamLayoutEntry(tuple):
    """One ``(name, offset, size)`` span of the flat parameter buffer."""

    __slots__ = ()

    def __new__(cls, name: str, offset: int, size: int) -> "ParamLayoutEntry":
        return tuple.__new__(cls, (str(name), int(offset), int(size)))

    @property
    def name(self) -> str:
        return self[0]

    @property
    def offset(self) -> int:
        return self[1]

    @property
    def size(self) -> int:
        return self[2]


class ParamSubspace:
    """An ordered index set over a ``dim``-wide flat parameter vector."""

    __slots__ = ("dim", "indices", "_token", "_mask")

    def __init__(self, dim: int, indices: np.ndarray):
        if dim < 0:
            raise ValueError("dim must be non-negative")
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size:
            if int(idx.min()) < 0 or int(idx.max()) >= dim:
                raise ValueError("subspace index out of range for dim")
            if np.any(np.diff(idx) <= 0):
                # Canonicalise: sorted and duplicate-free, so equal
                # coordinate sets are equal objects on the wire.
                idx = np.unique(idx)
        self.dim = int(dim)
        self.indices = idx
        self.indices.setflags(write=False)
        self._token: tuple[int, int, int] | None = None
        self._mask: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, dim: int) -> "ParamSubspace":
        """The identity subspace: every coordinate of a ``dim`` vector."""
        return cls(dim, np.arange(dim, dtype=np.int64))

    @classmethod
    def from_indices(cls, dim: int, indices: "np.ndarray | list[int]") -> "ParamSubspace":
        """Subspace from an arbitrary (unsorted, possibly dup'd) index set."""
        return cls(dim, np.asarray(indices, dtype=np.int64))

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "ParamSubspace":
        """Subspace from a boolean membership mask of length ``dim``."""
        mask = np.asarray(mask)
        if mask.ndim != 1 or mask.dtype != np.bool_:
            raise ValueError("mask must be a 1-D boolean array")
        return cls(mask.size, np.flatnonzero(mask).astype(np.int64))

    @classmethod
    def sample(
        cls,
        layout: "list[ParamLayoutEntry]",
        keep_frac: float,
        rng: np.random.Generator,
    ) -> "ParamSubspace":
        """Draw a random subspace keeping ``keep_frac`` of each span.

        Sampling is stratified over the parameter layout: every
        ``(name, offset, size)`` span keeps ``ceil(keep_frac * size)``
        uniformly chosen coordinates, so even aggressive ratios leave
        no layer untrained (the failure mode of global sampling, where
        a small bias vector can vanish entirely).  Determinism is the
        caller's job: pass a kernel stream, never a fresh default rng.
        """
        if not layout:
            raise ValueError("layout must be non-empty")
        if not 0.0 < keep_frac <= 1.0:
            raise ValueError("keep_frac must be in (0, 1]")
        dim = layout[-1].offset + layout[-1].size
        if keep_frac == 1.0:
            return cls.full(dim)
        takes = [
            min(max(1, int(np.ceil(keep_frac * entry.size))), entry.size)
            for entry in layout
        ]
        picked = np.empty(sum(takes), dtype=np.int64)
        pos = 0
        for entry, take in zip(layout, takes):
            local = rng.choice(entry.size, size=take, replace=False)
            picked[pos : pos + take] = np.asarray(local, dtype=np.int64) + entry.offset
            pos += take
        return cls(dim, picked)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of covered coordinates."""
        return int(self.indices.size)

    @property
    def is_full(self) -> bool:
        """Whether this subspace covers every coordinate."""
        return self.indices.size == self.dim

    @property
    def token(self) -> tuple[int, int, int]:
        """Hashable fingerprint ``(dim, size, crc32(indices))`` for memo keys."""
        if self._token is None:
            crc = zlib.crc32(np.ascontiguousarray(self.indices).tobytes())
            self._token = (self.dim, self.size, crc)
        return self._token

    def mask(self) -> np.ndarray:
        """Boolean membership mask of length ``dim`` (cached, read-only)."""
        if self._mask is None:
            mask = np.zeros(self.dim, dtype=np.bool_)
            mask[self.indices] = True
            mask.setflags(write=False)
            self._mask = mask
        return self._mask

    def complement(self) -> "ParamSubspace":
        """The coordinates this subspace does *not* cover."""
        return ParamSubspace.from_mask(~self.mask())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParamSubspace):
            return NotImplemented
        return self.dim == other.dim and np.array_equal(self.indices, other.indices)

    def __hash__(self) -> int:
        return hash(self.token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParamSubspace(dim={self.dim}, size={self.size})"

    # ------------------------------------------------------------------
    # Gather / scatter
    # ------------------------------------------------------------------
    def gather(self, vector: np.ndarray) -> np.ndarray:
        """The covered coordinates of ``vector``, in index order.

        Full subspaces return ``vector`` itself — O(1) and aliasing,
        exactly the legacy full-width contract of
        :meth:`repro.nn.sequential.Sequential.get_flat_params`.
        Partial subspaces return a fresh gathered array.
        """
        if vector.ndim != 1 or vector.size != self.dim:
            raise ValueError(
                f"expected flat vector of size {self.dim}, got shape {vector.shape}"
            )
        if self.is_full:
            return vector
        return vector[self.indices]

    def scatter(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Write ``values`` into ``out`` at the covered coordinates.

        ``out`` is mutated in place and returned; uncovered coordinates
        are left untouched (callers wanting a pure masked vector pass a
        zeroed ``out``).  Full subspaces degrade to a dense assignment.
        """
        values = np.asarray(values)
        if values.ndim != 1 or values.size != self.size:
            raise ValueError(
                f"expected {self.size} subspace values, got shape {values.shape}"
            )
        if out.ndim != 1 or out.size != self.dim:
            raise ValueError(
                f"expected flat output of size {self.dim}, got shape {out.shape}"
            )
        if self.is_full:
            out[...] = values
            return out
        # The scatter IS the operation here, not an accident.
        out[self.indices] = values  # reprolint: allow[R403]
        return out

    def expand(self, values: np.ndarray) -> np.ndarray:
        """Dense ``dim``-vector: ``values`` on the subspace, zero elsewhere."""
        out = np.zeros(self.dim, dtype=np.float64)
        return self.scatter(values, out)

    def restrict(self, vector: np.ndarray) -> np.ndarray:
        """Dense ``dim``-vector equal to ``vector`` on the subspace, zero off it.

        Full subspaces return ``vector`` unchanged (no copy).
        """
        if self.is_full:
            if vector.ndim != 1 or vector.size != self.dim:
                raise ValueError(
                    f"expected flat vector of size {self.dim}, got shape {vector.shape}"
                )
            return vector
        return self.expand(self.gather(vector))
