"""Numerical gradient checking for layers and whole models.

Used by the test suite to prove that every backward pass in
:mod:`repro.nn.layers` matches a central finite-difference estimate of
the analytic gradient.  Federated-learning conclusions are only as
sound as the gradients underneath them, so these checks are the
foundation of the reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.sequential import Sequential

__all__ = ["numerical_gradient", "max_relative_error", "check_model_gradients"]


def numerical_gradient(func, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function at ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = func()
        flat[i] = orig - eps
        f_minus = func()
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Worst-case elementwise relative error between two gradients."""
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denom))


def check_model_gradients(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    eps: float = 1e-5,
) -> float:
    """Return the max relative error over all parameters of ``model``.

    Runs a forward/backward pass with softmax cross-entropy and
    compares every parameter gradient against finite differences.
    """
    loss_fn = SoftmaxCrossEntropy()

    def loss_value() -> float:
        logits = model.forward(x, training=False)
        return loss_fn_probe.forward(logits, y)

    loss_fn_probe = SoftmaxCrossEntropy()

    model.zero_grad()
    logits = model.forward(x, training=True)
    loss_fn.forward(logits, y)
    model.backward(loss_fn.backward())

    worst = 0.0
    for p in model.parameters():
        analytic = p.grad.copy()
        numeric = numerical_gradient(loss_value, p.data, eps)
        worst = max(worst, max_relative_error(analytic, numeric))
    return worst
