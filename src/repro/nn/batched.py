"""Batched multi-client training kernel.

Fuses K clients' local-SGD steps into single numpy calls: each step
stacks the K per-client minibatches into one ``(K*batch, ...)`` tensor
and runs ONE fused forward/backward through a shared set of scratch
buffers, instead of K independent ``Sequential`` passes.  Per-client
parameters live in a ``(K, d)`` stacked flat buffer; weights enter the
fused GEMMs as per-row views carved out of that buffer, and the
optimizer (SGD/momentum/weight-decay/FedProx/SCAFFOLD corrections)
runs as row-wise in-place ops on the stack.

The kernel is **bit-identical** to the serial ``Client.local_train``
path.  The determinism argument (see docs/architecture.md, "Batched
multi-client kernel"):

* Per-client GEMMs run as 3-D stacked ``np.matmul`` calls whose slices
  are byte-for-byte the serial 2-D GEMM operands, and BLAS computes
  each slice of a stacked matmul with the same kernel as the 2-D call.
* Every cross-sample *reduction* (bias gradients, batch-norm
  statistics, loss means) runs per client on a slice whose shape and
  strides equal the serial operand's, so pairwise summation order is
  unchanged.  Only elementwise ops and data movement are fused across
  clients.
* RNG draws stay on the per-client generators (shuffles on the
  client's rng, dropout masks on each layer's own rng) in the serial
  (epoch, step, layer) order, so every stream advances identically.

Models whose layers fall outside the supported set (or that a caller
hands inconsistent shards) raise :class:`UnsupportedModelError`; the
engines catch it and fall back to the serial oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.conv_utils import conv_output_size
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Tanh,
)
from repro.nn.normalization import BatchNorm2d, GroupNorm
from repro.nn.sequential import Sequential

__all__ = [
    "MultiClientTrainer",
    "TaskResult",
    "UnsupportedModelError",
    "supports",
]


class UnsupportedModelError(Exception):
    """The model (or shard layout) cannot run through the batched kernel."""


@dataclass
class TaskResult:
    """Per-client outcome of one fused local-training round."""

    losses: list[float] = field(default_factory=list)
    steps: int = 0
    samples_seen: int = 0


# ----------------------------------------------------------------------
# Layer support matrix
# ----------------------------------------------------------------------
def _signature(layer) -> tuple | None:
    """A hashable config tuple iff the layer type is batchable."""
    t = type(layer)
    if t is Linear:
        return ("linear", layer.in_features, layer.out_features,
                layer.bias is not None)
    if t is Conv2d:
        return ("conv", layer.in_channels, layer.out_channels,
                layer.kernel_size, layer.stride, layer.padding,
                layer.bias is not None)
    if t is MaxPool2d:
        return ("maxpool", layer.kernel_size, layer.stride)
    if t is AvgPool2d:
        return ("avgpool", layer.kernel_size, layer.stride)
    if t is GlobalAvgPool2d:
        return ("gap",)
    if t is ReLU:
        return ("relu",)
    if t is Tanh:
        return ("tanh",)
    if t is Dropout:
        return ("dropout", layer.rate)
    if t is Flatten:
        return ("flatten",)
    if t is BatchNorm2d:
        return ("bn", layer.num_channels, layer.momentum, layer.eps)
    if t is GroupNorm:
        return ("gn", layer.num_groups, layer.num_channels, layer.eps)
    return None


def supports(model: Sequential) -> bool:
    """Whether every layer of ``model`` has a batched implementation."""
    if len(model.output_shape) != 1:
        return False
    return all(_signature(layer) is not None for layer in model.layers)


def _carve(buf: np.ndarray, offset: int, shape: tuple[int, ...]) -> np.ndarray:
    """A (K,) + shape parameter view into the (K, d) stacked buffer."""
    size = 1
    for dim in shape:
        size *= dim
    view = buf[:, offset:offset + size].reshape((buf.shape[0],) + shape)
    if not np.shares_memory(view, buf):  # pragma: no cover - defensive
        raise UnsupportedModelError("stacked parameter carve copied")
    return view


# ----------------------------------------------------------------------
# Fused im2col / col2im
# ----------------------------------------------------------------------
class _ColWorkspace:
    """Column/scatter scratch for the fused conv and pooling handlers.

    Like :class:`repro.nn.conv_utils.ConvWorkspace` but without the
    intermediate 6-D window buffer: the fused gather writes receptive
    fields straight into the column matrix, so the only large buffers
    are the columns themselves and the padded images.  At ``K*batch``
    rows the shared helper's two-pass gather-then-repack no longer fits
    in cache; halving the passes is what keeps the fused kernel ahead
    of the serial loop on convolutional models.
    """

    __slots__ = ("_key", "_cols", "_pad_in", "_pad_out")

    def __init__(self) -> None:
        self._key: tuple | None = None
        self._cols: np.ndarray | None = None
        self._pad_in: np.ndarray | None = None
        self._pad_out: np.ndarray | None = None

    def prepare(self, x_shape, k: int, stride: int, padding: int,
                dtype) -> tuple[int, int]:
        n, c, h, w = x_shape
        out_h = conv_output_size(h, k, stride, padding)
        out_w = conv_output_size(w, k, stride, padding)
        key = (x_shape, k, stride, padding, np.dtype(dtype))
        if key != self._key:
            self._key = key
            self._cols = np.empty((n * out_h * out_w, c * k * k), dtype=dtype)
            padded = (n, c, h + 2 * padding, w + 2 * padding)
            self._pad_in = np.zeros(padded, dtype=dtype) if padding > 0 else None
            self._pad_out = np.empty(padded, dtype=dtype)
        return out_h, out_w


def _im2col_packed(x: np.ndarray, k: int, stride: int, padding: int,
                   ws: _ColWorkspace) -> np.ndarray:
    """Single-pass im2col, bit-identical to ``conv_utils.im2col``.

    A gather moves the same values whatever the staging, so skipping
    the shared helper's ``(N, C, kh, kw, oh, ow)`` window buffer
    changes nothing downstream: a zero-cost strided *view* of every
    receptive field feeds ONE ``np.copyto`` into the column matrix —
    a single pass with a single numpy dispatch, where the shared
    helper pays ``kh * kw`` slice copies plus a repack.
    """
    n, c, h, w = x.shape
    out_h, out_w = ws.prepare(x.shape, k, stride, padding, x.dtype)
    if padding > 0:
        ws._pad_in[:, :, padding:-padding, padding:-padding] = x
        x = ws._pad_in
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x, shape=(n, out_h, out_w, c, k, k),
        strides=(sn, stride * sh, stride * sw, sc, sh, sw),
    )
    np.copyto(ws._cols.reshape(n, out_h, out_w, c, k, k), windows)
    return ws._cols


def _col2im_packed(cols: np.ndarray, x_shape: tuple[int, int, int, int],
                   k: int, stride: int, padding: int,
                   ws: _ColWorkspace) -> np.ndarray:
    """Scatter-add columns back to images, bit-identical to
    ``conv_utils.col2im``: the same zero-initialised target and the
    same ``(i, j)`` accumulation order (so overlapping receptive
    fields sum in the serial order, and ``+0`` absorbs signed zeros),
    reading window slices straight from the column matrix.
    """
    n, c, h, w = x_shape
    out_h, out_w = ws.prepare(x_shape, k, stride, padding, cols.dtype)
    padded = ws._pad_out
    padded.fill(0.0)
    c6 = cols.reshape(n, out_h, out_w, c, k, k)
    if stride >= k:
        # Non-overlapping windows (pooling): every target element is
        # hit at most once, so the whole scatter-add is one strided
        # ``+=`` into a window view — no aliasing, and adding into the
        # zero fill keeps the serial path's signed-zero absorption.
        sn, sc, sh, sw = padded.strides
        windows = np.lib.stride_tricks.as_strided(
            padded, shape=(n, out_h, out_w, c, k, k),
            strides=(sn, stride * sh, stride * sw, sc, sh, sw),
        )
        windows += c6
        if padding > 0:
            return padded[:, :, padding:-padding, padding:-padding]
        return padded
    for i in range(k):
        i_max = i + stride * out_h
        for j in range(k):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += (
                c6[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def _workspace(cache: dict, key: tuple) -> _ColWorkspace:
    """Memoised per-geometry column workspace for a handler."""
    ws = cache.get(key)
    if ws is None:
        ws = _ColWorkspace()
        # reprolint: allow[R403] dict memo insert, not an ndarray scatter
        cache[key] = ws
    return ws


# ----------------------------------------------------------------------
# Per-layer batched handlers
# ----------------------------------------------------------------------
class _Handler:
    """Batched forward/backward for one layer position.

    ``rows`` holds the K clients' live layer instances (sorted order)
    so stateful layers (dropout RNGs, batch-norm running stats) mutate
    the real per-client objects exactly as the serial path would.
    """

    param_size = 0

    def __init__(self, tr: "MultiClientTrainer", li: int, rows: list):
        self.tr = tr
        self.li = li
        self.rows = rows

    def forward(self, x, a, b, bsz):
        raise NotImplementedError

    def backward(self, g, a, b, bsz, need_input):
        raise NotImplementedError


class _LinearH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        lay = rows[0]
        self.in_f = lay.in_features
        self.out_f = lay.out_features
        self.has_bias = lay.bias is not None
        self.W = _carve(tr._P, offset, (self.out_f, self.in_f))
        self.Gw = _carve(tr._G, offset, (self.out_f, self.in_f))
        self.param_size = self.out_f * self.in_f
        if self.has_bias:
            self.B = _carve(tr._P, offset + self.param_size, (self.out_f,))
            self.Gb = _carve(tr._G, offset + self.param_size, (self.out_f,))
            self.param_size += self.out_f
        self._x3 = None

    def forward(self, x, a, b, bsz):
        m = b - a
        x3 = x.reshape(m, bsz, self.in_f)
        o3 = self.tr._buf(self.li, "o3", (m, bsz, self.out_f))
        np.matmul(x3, self.W[a:b].transpose(0, 2, 1), out=o3)
        if self.has_bias:
            o3 += self.B[a:b][:, None, :]
        self._x3 = x3
        return o3.reshape(m * bsz, self.out_f)

    def backward(self, g, a, b, bsz, need_input):
        m = b - a
        g3 = g.reshape(m, bsz, self.out_f)
        wg = self.tr._buf(self.li, "wg", (m, self.out_f, self.in_f))
        np.matmul(g3.transpose(0, 2, 1), self._x3, out=wg)
        self.Gw[a:b] += wg
        if self.has_bias:
            bg = self.tr._buf(self.li, "bg", (m, self.out_f))
            # One stacked reduce: per output element it sums the same
            # ``bsz`` addends in the same order as the per-client
            # ``np.sum(g3[i], axis=0)``, so results are bit-identical.
            np.add.reduce(g3, axis=1, out=bg)
            self.Gb[a:b] += bg
        self._x3 = None
        if not need_input:
            return None
        gi = self.tr._buf(self.li, "gi", (m, bsz, self.in_f))
        np.matmul(g3, self.W[a:b], out=gi)
        return gi.reshape(m * bsz, self.in_f)


class _Conv2dH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        lay = rows[0]
        self.in_c = lay.in_channels
        self.out_c = lay.out_channels
        self.k = lay.kernel_size
        self.s = lay.stride
        self.p = lay.padding
        self.has_bias = lay.bias is not None
        ckk = self.in_c * self.k * self.k
        self.ckk = ckk
        self.W = _carve(tr._P, offset, (self.out_c, ckk))
        self.Gw = _carve(tr._G, offset, (self.out_c, ckk))
        self.param_size = self.out_c * ckk
        if self.has_bias:
            self.B = _carve(tr._P, offset + self.param_size, (self.out_c,))
            self.Gb = _carve(tr._G, offset + self.param_size, (self.out_c,))
            self.param_size += self.out_c
        self._ws: dict[tuple, _ColWorkspace] = {}
        self._cols3 = None
        self._x_shape = None
        self._geom = None

    def forward(self, x, a, b, bsz):
        m = b - a
        n, _, h, w = x.shape
        oh = conv_output_size(h, self.k, self.s, self.p)
        ow = conv_output_size(w, self.k, self.s, self.p)
        cols = _im2col_packed(x, self.k, self.s, self.p,
                              _workspace(self._ws, x.shape))
        cols3 = cols.reshape(m, bsz * oh * ow, self.ckk)
        o3 = self.tr._buf(self.li, "o3", (m, bsz * oh * ow, self.out_c))
        np.matmul(cols3, self.W[a:b].transpose(0, 2, 1), out=o3)
        if self.has_bias:
            o3 += self.B[a:b][:, None, :]
        self._cols3 = cols3
        self._x_shape = x.shape
        self._geom = (oh, ow)
        return o3.reshape(n, oh, ow, self.out_c).transpose(0, 3, 1, 2)

    def backward(self, g, a, b, bsz, need_input):
        m = b - a
        oh, ow = self._geom
        gm = g.transpose(0, 2, 3, 1).reshape(-1, self.out_c)
        gm3 = gm.reshape(m, bsz * oh * ow, self.out_c)
        wg = self.tr._buf(self.li, "wg", (m, self.out_c, self.ckk))
        np.matmul(gm3.transpose(0, 2, 1), self._cols3, out=wg)
        self.Gw[a:b] += wg
        if self.has_bias:
            bg = self.tr._buf(self.li, "bg", (m, self.out_c))
            # Stacked reduce, same per-element addend order as the
            # serial per-client sums (see _LinearH.backward).
            np.add.reduce(gm3, axis=1, out=bg)
            self.Gb[a:b] += bg
        grad_in = None
        if need_input:
            gc = self.tr._buf(self.li, "gc", (m, bsz * oh * ow, self.ckk))
            np.matmul(gm3, self.W[a:b], out=gc)
            grad_in = _col2im_packed(
                gc.reshape(m * bsz * oh * ow, self.ckk), self._x_shape,
                self.k, self.s, self.p, _workspace(self._ws, self._x_shape),
            )
        self._cols3 = None
        self._x_shape = None
        return grad_in


class _MaxPoolH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self.k = rows[0].kernel_size
        self.s = rows[0].stride
        self._ws: dict[tuple, _ColWorkspace] = {}
        self._first = None
        self._x_shape = None
        self._geom = None

    def forward(self, x, a, b, bsz):
        n, c, h, w = x.shape
        oh = conv_output_size(h, self.k, self.s, 0)
        ow = conv_output_size(w, self.k, self.s, 0)
        reshaped = x.reshape(n * c, 1, h, w)
        cols = _im2col_packed(reshaped, self.k, self.s, 0,
                              _workspace(self._ws, (n * c, 1, h, w)))
        rows_n = cols.shape[0]
        ob = self.tr._buf(self.li, "ob", (rows_n,))
        np.max(cols, axis=1, out=ob)
        first = self.tr._buf(self.li, "first", (rows_n,), dtype=np.intp)
        np.argmax(cols, axis=1, out=first)
        self._first = first
        self._x_shape = (n, c, h, w)
        self._geom = (oh, ow, cols.shape[1])
        return ob.reshape(n, c, oh, ow)

    def backward(self, g, a, b, bsz, need_input):
        if not need_input:
            self._first = None
            return None
        n, c, h, w = self._x_shape
        oh, ow, window = self._geom
        rows_n = self._first.shape[0]
        gcols = self.tr._buf(self.li, "gcols", (rows_n, window))
        gcols.fill(0.0)
        ar = self.tr._arange(rows_n)
        # Differs from the serial ``mask * grad`` only in the sign of
        # zeros, which the +0-initialised col2im scatter absorbs.
        # reprolint: allow[R403] first-max scatter: one write per pooling window
        gcols[ar, self._first] = g.reshape(-1)
        grad_in = _col2im_packed(gcols, (n * c, 1, h, w), self.k, self.s, 0,
                                 _workspace(self._ws, (n * c, 1, h, w)))
        self._first = None
        self._x_shape = None
        return grad_in.reshape(n, c, h, w)


class _AvgPoolH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self.k = rows[0].kernel_size
        self.s = rows[0].stride
        self._ws: dict[tuple, _ColWorkspace] = {}
        self._x_shape = None

    def forward(self, x, a, b, bsz):
        n, c, h, w = x.shape
        oh = conv_output_size(h, self.k, self.s, 0)
        ow = conv_output_size(w, self.k, self.s, 0)
        cols = _im2col_packed(x.reshape(n * c, 1, h, w), self.k, self.s, 0,
                              _workspace(self._ws, (n * c, 1, h, w)))
        ob = self.tr._buf(self.li, "ob", (cols.shape[0],))
        np.mean(cols, axis=1, out=ob)
        self._x_shape = (n, c, h, w)
        return ob.reshape(n, c, oh, ow)

    def backward(self, g, a, b, bsz, need_input):
        if not need_input:
            self._x_shape = None
            return None
        n, c, h, w = self._x_shape
        window = self.k * self.k
        gd = self.tr._buf(self.li, "gd", (n * c * g.shape[2] * g.shape[3], 1))
        np.divide(g.reshape(-1, 1), window, out=gd)
        gcols = self.tr._buf(self.li, "gcols", (gd.shape[0], window))
        gcols[:, :] = gd
        grad_in = _col2im_packed(gcols, (n * c, 1, h, w), self.k, self.s, 0,
                                 _workspace(self._ws, (n * c, 1, h, w)))
        self._x_shape = None
        return grad_in.reshape(n, c, h, w)


class _GlobalAvgPoolH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self._x_shape = None

    def forward(self, x, a, b, bsz):
        n, c = x.shape[0], x.shape[1]
        ob = self.tr._buf(self.li, "ob", (n, c))
        np.mean(x, axis=(2, 3), out=ob)
        self._x_shape = x.shape
        return ob

    def backward(self, g, a, b, bsz, need_input):
        if not need_input:
            self._x_shape = None
            return None
        n, c, h, w = self._x_shape
        sm = self.tr._buf(self.li, "sm", (n, c))
        np.divide(g, h * w, out=sm)
        gi = self.tr._buf(self.li, "gi", (n, c, h, w))
        gi[:, :, :, :] = sm[:, :, None, None]
        self._x_shape = None
        return gi


class _ReLUH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self._mask = None

    def forward(self, x, a, b, bsz):
        mask = self.tr._buf(self.li, "mask", x.shape, dtype=np.bool_)
        np.greater(x, 0, out=mask)
        ob = self.tr._out_like(self.li, "ob", x)
        np.maximum(x, 0.0, out=ob)
        self._mask = mask
        return ob

    def backward(self, g, a, b, bsz, need_input):
        if not need_input:
            self._mask = None
            return None
        gi = self.tr._buf(self.li, "gi", g.shape)
        np.multiply(g, self._mask, out=gi)
        self._mask = None
        return gi


class _TanhH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self._out = None

    def forward(self, x, a, b, bsz):
        ob = self.tr._out_like(self.li, "ob", x)
        np.tanh(x, out=ob)
        self._out = ob
        return ob

    def backward(self, g, a, b, bsz, need_input):
        if not need_input:
            self._out = None
            return None
        sq = self.tr._buf(self.li, "sq", g.shape)
        np.power(self._out, 2, out=sq)
        np.subtract(1.0, sq, out=sq)
        gi = self.tr._buf(self.li, "gi", g.shape)
        np.multiply(g, sq, out=gi)
        self._out = None
        return gi


class _DropoutH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self.rate = rows[0].rate
        self._mask = None

    def forward(self, x, a, b, bsz):
        if self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        feat = x.shape[1:]
        mask = self.tr._buf(self.li, "mask", x.shape)
        for i in range(b - a):
            # Each client's mask comes off its own layer RNG, exactly
            # one draw per step — the serial stream order.
            mask[i * bsz:(i + 1) * bsz] = (
                self.rows[a + i]._rng.random((bsz,) + feat) < keep
            ) / keep
        ob = self.tr._buf(self.li, "ob", x.shape)
        np.multiply(x, mask, out=ob)
        self._mask = mask
        return ob

    def backward(self, g, a, b, bsz, need_input):
        if self.rate == 0.0:
            return g if need_input else None
        mask = self._mask
        self._mask = None
        if not need_input:
            return None
        gi = self.tr._buf(self.li, "gi", g.shape)
        np.multiply(g, mask, out=gi)
        return gi


class _FlattenH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self._x_shape = None

    def forward(self, x, a, b, bsz):
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, g, a, b, bsz, need_input):
        shape = self._x_shape
        self._x_shape = None
        if not need_input:
            return None
        return g.reshape(shape)


class _BatchNormH(_Handler):
    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self.c = rows[0].num_channels
        self.Pg = _carve(tr._P, offset, (self.c,))
        self.Gg = _carve(tr._G, offset, (self.c,))
        self.Pb = _carve(tr._P, offset + self.c, (self.c,))
        self.Gb = _carve(tr._G, offset + self.c, (self.c,))
        self.param_size = 2 * self.c
        self._cache = None

    def forward(self, x, a, b, bsz):
        m = b - a
        n, c, h, w = x.shape
        means = self.tr._buf(self.li, "means", (m, c))
        invs = self.tr._buf(self.li, "invs", (m, c))
        xh = self.tr._buf(self.li, "xh", (n, c, h, w))
        for i in range(m):
            lay = self.rows[a + i]
            xs = x[i * bsz:(i + 1) * bsz]
            mean = xs.mean(axis=(0, 2, 3))
            var = xs.var(axis=(0, 2, 3))
            lay.running_mean *= 1.0 - lay.momentum
            lay.running_mean += lay.momentum * mean
            lay.running_var *= 1.0 - lay.momentum
            lay.running_var += lay.momentum * var
            means[i, :] = mean
            invs[i, :] = 1.0 / np.sqrt(var + lay.eps)
            np.subtract(xs, mean[None, :, None, None],
                        out=xh[i * bsz:(i + 1) * bsz])
        xh5 = xh.reshape(m, bsz, c, h, w)
        xh5 *= invs[:, None, :, None, None]
        # ``ob`` mimics the serial output layout (permuted after a
        # conv), so it cannot be reshaped to 5-D as a view; apply the
        # per-client affine row by row instead.
        ob = self.tr._out_like(self.li, "ob", x)
        for i in range(m):
            os_ = ob[i * bsz:(i + 1) * bsz]
            np.multiply(xh[i * bsz:(i + 1) * bsz],
                        self.Pg[a + i][None, :, None, None], out=os_)
            os_ += self.Pb[a + i][None, :, None, None]
        self._cache = (xh, invs, (n, c, h, w))
        return ob

    def backward(self, g, a, b, bsz, need_input):
        m = b - a
        xh, invs, shape = self._cache
        self._cache = None
        n, c, h, w = shape
        me = bsz * h * w
        prod = self.tr._buf(self.li, "prod", (n, c, h, w))
        np.multiply(g, xh, out=prod)
        gs = self.tr._buf(self.li, "gs", (m, c))
        bs_ = self.tr._buf(self.li, "bs", (m, c))
        for i in range(m):
            np.sum(prod[i * bsz:(i + 1) * bsz], axis=(0, 2, 3), out=gs[i])
            np.sum(g[i * bsz:(i + 1) * bsz], axis=(0, 2, 3), out=bs_[i])
        self.Gg[a:b] += gs
        self.Gb[a:b] += bs_
        if not need_input:
            return None
        gb = self.tr._buf(self.li, "gb", (n, c, h, w))
        gb5 = gb.reshape(m, bsz, c, h, w)
        g5 = g.reshape(m, bsz, c, h, w)
        np.multiply(g5, self.Pg[a:b][:, None, :, None, None], out=gb5)
        sg = self.tr._buf(self.li, "sg", (m, c))
        sgx = self.tr._buf(self.li, "sgx", (m, c))
        for i in range(m):
            np.sum(gb[i * bsz:(i + 1) * bsz], axis=(0, 2, 3), out=sg[i])
        np.multiply(gb, xh, out=prod)
        for i in range(m):
            np.sum(prod[i * bsz:(i + 1) * bsz], axis=(0, 2, 3), out=sgx[i])
        sg /= me
        gi = self.tr._buf(self.li, "gi", (n, c, h, w))
        gi5 = gi.reshape(m, bsz, c, h, w)
        xh5 = xh.reshape(m, bsz, c, h, w)
        # Serial parses ``x_hat * sum_gx / m`` left-to-right: multiply
        # by the undivided sum first, then divide the product by m.
        np.multiply(xh5, sgx[:, None, :, None, None], out=gi5)
        gi /= me
        np.subtract(gb5, sg[:, None, :, None, None], out=gb5)
        np.subtract(gb5, gi5, out=gi5)
        gi5 *= invs[:, None, :, None, None]
        return gi


class _GroupNormH(_Handler):
    """Group norm statistics are per-sample, so the fused pass can use
    the serial expressions verbatim over the stacked batch; only the
    per-client affine parameters need row-wise treatment."""

    def __init__(self, tr, li, rows, offset):
        super().__init__(tr, li, rows)
        self.groups = rows[0].num_groups
        self.c = rows[0].num_channels
        self.eps = rows[0].eps
        self.Pg = _carve(tr._P, offset, (self.c,))
        self.Gg = _carve(tr._G, offset, (self.c,))
        self.Pb = _carve(tr._P, offset + self.c, (self.c,))
        self.Gb = _carve(tr._G, offset + self.c, (self.c,))
        self.param_size = 2 * self.c
        self._cache = None

    def forward(self, x, a, b, bsz):
        m = b - a
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.groups, c // self.groups, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * inv_std).reshape(x.shape)
        # ``x_hat`` inherits the input's (possibly permuted) layout
        # through the reshape views above, and the serial affine output
        # keeps it; mimic that layout and apply the per-client affine
        # row by row.
        ob = self.tr._out_like(self.li, "ob", x_hat)
        for i in range(m):
            os_ = ob[i * bsz:(i + 1) * bsz]
            np.multiply(x_hat[i * bsz:(i + 1) * bsz],
                        self.Pg[a + i][None, :, None, None], out=os_)
            os_ += self.Pb[a + i][None, :, None, None]
        self._cache = (x_hat, inv_std, (n, c, h, w))
        return ob

    def backward(self, g, a, b, bsz, need_input):
        m = b - a
        x_hat, inv_std, shape = self._cache
        self._cache = None
        n, c, h, w = shape
        me = (c // self.groups) * h * w
        prod = self.tr._buf(self.li, "prod", (n, c, h, w))
        np.multiply(g, x_hat, out=prod)
        gs = self.tr._buf(self.li, "gs", (m, c))
        bs_ = self.tr._buf(self.li, "bs", (m, c))
        for i in range(m):
            np.sum(prod[i * bsz:(i + 1) * bsz], axis=(0, 2, 3), out=gs[i])
            np.sum(g[i * bsz:(i + 1) * bsz], axis=(0, 2, 3), out=bs_[i])
        self.Gg[a:b] += gs
        self.Gb[a:b] += bs_
        if not need_input:
            return None
        gb = self.tr._buf(self.li, "gb", (n, c, h, w))
        gb5 = gb.reshape(m, bsz, c, h, w)
        g5 = g.reshape(m, bsz, c, h, w)
        np.multiply(g5, self.Pg[a:b][:, None, :, None, None], out=gb5)
        g_grouped = gb.reshape(n, self.groups, c // self.groups, h, w)
        x_hat_grouped = x_hat.reshape(n, self.groups, c // self.groups, h, w)
        sum_g = g_grouped.sum(axis=(2, 3, 4), keepdims=True)
        sum_gx = (g_grouped * x_hat_grouped).sum(axis=(2, 3, 4), keepdims=True)
        grad_grouped = inv_std * (
            g_grouped - sum_g / me - x_hat_grouped * sum_gx / me
        )
        return grad_grouped.reshape(shape)


_HANDLER_TYPES: dict[type, type] = {
    Linear: _LinearH,
    Conv2d: _Conv2dH,
    MaxPool2d: _MaxPoolH,
    AvgPool2d: _AvgPoolH,
    GlobalAvgPool2d: _GlobalAvgPoolH,
    ReLU: _ReLUH,
    Tanh: _TanhH,
    Dropout: _DropoutH,
    Flatten: _FlattenH,
    BatchNorm2d: _BatchNormH,
    GroupNorm: _GroupNormH,
}


# ----------------------------------------------------------------------
# The trainer
# ----------------------------------------------------------------------
class MultiClientTrainer:
    """Fused local SGD for K clients sharing one architecture.

    Construction validates that all models are architecturally
    identical and batchable, allocates the ``(K, d)`` parameter /
    gradient / optimizer-state stacks, and carves per-layer weight
    views.  :meth:`run` then executes one full local-training round
    (``local_epochs`` over every shard) and writes the resulting
    parameters and gradients back into the client models.

    Instances are reusable across rounds as long as the client models,
    datasets, and RNG objects stay the same (the engines key a cache on
    exactly that).
    """

    def __init__(
        self,
        models: list[Sequential],
        xs: list[np.ndarray],
        ys: list[np.ndarray],
        rngs: list[np.random.Generator],
        *,
        local_epochs: int,
        batch_size: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        prox_mu: float = 0.0,
        max_batches: int | None = None,
        use_corrections: bool = False,
    ):
        k = len(models)
        if k < 1 or not (len(xs) == len(ys) == len(rngs) == k):
            raise ValueError("models/xs/ys/rngs must be equal-length, K >= 1")
        if local_epochs < 1 or batch_size < 1 or lr <= 0:
            raise ValueError("invalid training hyperparameters")
        if not 0.0 <= momentum < 1.0 or weight_decay < 0.0 or prox_mu < 0.0:
            raise ValueError("invalid training hyperparameters")
        if max_batches is not None and max_batches < 1:
            raise ValueError("max_batches must be positive or None")

        ref = models[0]
        sigs = tuple(_signature(layer) for layer in ref.layers)
        if any(s is None for s in sigs) or len(ref.output_shape) != 1:
            raise UnsupportedModelError("model contains unbatchable layers")
        for model in models[1:]:
            if (
                tuple(_signature(layer) for layer in model.layers) != sigs
                or model.input_shape != ref.input_shape
                or model.num_params != ref.num_params
            ):
                raise UnsupportedModelError("client models differ")
        num_classes = ref.output_shape[0]
        for x, y in zip(xs, ys):
            if x.dtype != np.float64 or x.shape[1:] != ref.input_shape:
                raise UnsupportedModelError("shard features not float64/shape")
            if (
                x.shape[0] == 0
                or y.shape != (x.shape[0],)
                or not np.issubdtype(y.dtype, np.integer)
                or y.min() < 0
                or y.max() >= num_classes
            ):
                raise UnsupportedModelError("shard labels out of range")

        # Rows sorted by descending shard size (stable) so the active
        # set at any step is a prefix and equal-batch runs contiguous.
        self._order = sorted(range(k), key=lambda i: (-len(ys[i]), i))
        self._models = [models[i] for i in self._order]
        self._xs = [xs[i] for i in self._order]
        self._ys = [ys[i] for i in self._order]
        self._rngs = [rngs[i] for i in self._order]
        self._n = [len(y) for y in self._ys]

        self.k = k
        self.d = ref.num_params
        self.num_classes = num_classes
        self.local_epochs = local_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.prox_mu = prox_mu
        self.use_corrections = use_corrections

        bs = batch_size
        self._steps = []
        for n in self._n:
            steps = -(-n // bs)
            if max_batches is not None:
                steps = min(steps, max_batches)
            self._steps.append(steps)
        self.max_steps = self._steps[0]

        self._P = np.empty((k, self.d), dtype=np.float64)
        self._G = np.zeros((k, self.d), dtype=np.float64)
        self._V = (np.zeros((k, self.d), dtype=np.float64)
                   if momentum > 0.0 else None)
        self._SP = (np.empty((k, self.d), dtype=np.float64)
                    if prox_mu > 0.0 else None)
        self._S = (np.empty((k, self.d), dtype=np.float64)
                   if weight_decay > 0.0 else None)
        self._SU = np.empty((k, self.d), dtype=np.float64)
        self._C = (np.empty((k, self.d), dtype=np.float64)
                   if use_corrections else None)

        self._bufs: dict[tuple, np.ndarray] = {}
        self._aranges: dict[int, np.ndarray] = {}

        self.handlers: list[_Handler] = []
        offset = 0
        for li, layer in enumerate(ref.layers):
            rows = [m.layers[li] for m in self._models]
            handler = _HANDLER_TYPES[type(layer)](self, li, rows, offset)
            offset += handler.param_size
            self.handlers.append(handler)
        if offset != self.d:
            raise UnsupportedModelError("parameter layout mismatch")

    # ------------------------------------------------------------------
    def _buf(self, li: int, tag: str, shape: tuple[int, ...],
             dtype=np.float64) -> np.ndarray:
        key = (li, tag, shape, dtype)
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            # reprolint: allow[R403] dict memo insert, not an ndarray scatter
            self._bufs[key] = buf
        return buf

    def _out_like(self, li: int, tag: str, proto: np.ndarray,
                  dtype=np.float64) -> np.ndarray:
        """Scratch buffer with the layout numpy's order-``K`` ufunc
        allocation gives over ``proto``: packed, keeping ``proto``'s
        stride ordering.  Conv outputs are ``(N, oh, ow, oc)`` buffers
        viewed through ``transpose(0, 3, 1, 2)``, and serial unary ops
        (ReLU, tanh, batch-norm affine) propagate that permuted layout;
        downstream reductions (global-average-pool means, batch-norm
        statistics) sum in stride order, so the fused buffers must
        carry the same strides to keep pairwise summation identical."""
        if proto.flags.c_contiguous:
            return self._buf(li, tag, proto.shape, dtype)
        perm = sorted(range(proto.ndim),
                      key=lambda axis: (-proto.strides[axis], axis))
        base = self._buf(li, tag, tuple(proto.shape[a] for a in perm), dtype)
        inv = [0] * len(perm)
        for pos, axis in enumerate(perm):
            # reprolint: allow[R403] python-list element store, no arrays
            inv[axis] = pos
        return base.transpose(inv)

    def _arange(self, n: int) -> np.ndarray:
        ar = self._aranges.get(n)
        if ar is None:
            ar = np.arange(n, dtype=np.intp)
            # reprolint: allow[R403] dict memo insert, not an ndarray scatter
            self._aranges[n] = ar
        return ar

    # ------------------------------------------------------------------
    def run(
        self,
        global_params: np.ndarray,
        corrections: list[np.ndarray] | None = None,
    ) -> list[TaskResult]:
        """One fused local-training round; returns per-client results
        in the ORIGINAL (caller) client order."""
        if global_params.shape != (self.d,):
            raise ValueError("global_params has wrong dimension")
        if self.use_corrections:
            if corrections is None or len(corrections) != self.k:
                raise ValueError("corrections required with use_corrections")
            for r in range(self.k):
                self._C[r, :] = corrections[self._order[r]]
        self._P[:, :] = global_params
        if self._V is not None:
            self._V.fill(0.0)

        losses: list[list[float]] = [[] for _ in range(self.k)]
        bs = self.batch_size
        for _ in range(self.local_epochs):
            perms = []
            for r in range(self.k):
                # Same shuffle draw as Dataset.batches: permute an
                # arange on the client's own generator.
                perm = np.arange(self._n[r], dtype=np.intp)
                self._rngs[r].shuffle(perm)
                perms.append(perm)
            for s in range(self.max_steps):
                m_act = 0
                while m_act < self.k and self._steps[m_act] > s:
                    m_act += 1
                a = 0
                while a < m_act:
                    bsz = min(bs, self._n[a] - s * bs)
                    b = a + 1
                    while b < m_act and min(bs, self._n[b] - s * bs) == bsz:
                        b += 1
                    self._train_step(a, b, bsz, s, perms, global_params,
                                     losses)
                    a = b

        results: list[TaskResult] = [TaskResult() for _ in range(self.k)]
        for r in range(self.k):
            self._models[r].set_flat_params(self._P[r])
            self._models[r].set_flat_grads(self._G[r])
            seen = min(self._n[r], self._steps[r] * bs)
            results[self._order[r]] = TaskResult(
                losses=losses[r],
                steps=self.local_epochs * self._steps[r],
                samples_seen=self.local_epochs * seen,
            )
        return results

    # ------------------------------------------------------------------
    def _train_step(self, a, b, bsz, s, perms, global_params, losses):
        m = b - a
        n_total = m * bsz
        bs = self.batch_size
        xb = self._buf(-1, "xb", (n_total,) + self._models[0].input_shape)
        yb = self._buf(-1, "yb", (n_total,), dtype=np.intp)
        for i in range(m):
            r = a + i
            idx = perms[r][s * bs:s * bs + bsz]
            np.take(self._xs[r], idx, axis=0, out=xb[i * bsz:(i + 1) * bsz])
            yb[i * bsz:(i + 1) * bsz] = self._ys[r][idx]

        self._G[a:b].fill(0.0)

        out = xb
        for handler in self.handlers:
            out = handler.forward(out, a, b, bsz)

        # Fused softmax cross-entropy: identical expression chain to
        # SoftmaxCrossEntropy, with per-client loss means.
        mx = self._buf(-1, "mx", (n_total, 1))
        np.max(out, axis=-1, keepdims=True, out=mx)
        shifted = self._buf(-1, "shifted", (n_total, self.num_classes))
        np.subtract(out, mx, out=shifted)
        expb = self._buf(-1, "expb", (n_total, self.num_classes))
        np.exp(shifted, out=expb)
        np.sum(expb, axis=-1, keepdims=True, out=mx)
        np.log(mx, out=mx)
        logp = self._buf(-1, "logp", (n_total, self.num_classes))
        np.subtract(shifted, mx, out=logp)
        ar = self._arange(n_total)
        picked = logp[ar, yb]
        for i in range(m):
            losses[a + i].append(float(-picked[i * bsz:(i + 1) * bsz].mean()))
        gl = self._buf(-1, "gl", (n_total, self.num_classes))
        np.exp(logp, out=gl)
        gl[ar, yb] -= 1.0
        gl /= bsz

        g = gl
        for li in range(len(self.handlers) - 1, -1, -1):
            g = self.handlers[li].backward(g, a, b, bsz, need_input=li > 0)

        # Row-wise optimizer, in the exact serial op order:
        # prox -> scaffold -> weight decay -> momentum -> update.
        if self.prox_mu > 0.0:
            np.subtract(self._P[a:b], global_params[None, :],
                        out=self._SP[a:b])
            self._SP[a:b] *= self.prox_mu
            self._G[a:b] += self._SP[a:b]
        if self.use_corrections:
            self._G[a:b] += self._C[a:b]
        if self.weight_decay > 0.0:
            np.multiply(self._P[a:b], self.weight_decay, out=self._S[a:b])
            self._S[a:b] += self._G[a:b]
            upd = self._S
        else:
            upd = self._G
        if self._V is not None:
            self._V[a:b] *= self.momentum
            self._V[a:b] += upd[a:b]
            upd = self._V
        np.multiply(upd[a:b], self.lr, out=self._SU[a:b])
        self._P[a:b] -= self._SU[a:b]
