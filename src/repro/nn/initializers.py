"""Weight initialisation schemes for :mod:`repro.nn` layers.

Each initialiser takes a target shape and a ``numpy.random.Generator``
and returns a freshly allocated ``float64`` array.  All layers in this
package draw their initial weights through these functions so that a
model built twice from the same seed is bit-identical — a property the
federated-learning engines rely on when cloning the global model onto
every client.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "zeros",
    "uniform",
    "normal",
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor.

    Linear weights are ``(out_features, in_features)``; convolution
    weights are ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:
        out_c, in_c, kh, kw = shape
        receptive = kh * kw
        return in_c * receptive, out_c * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported weight shape {shape!r}")


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialiser (used for biases)."""
    del rng
    return np.zeros(shape, dtype=np.float64)


def uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.05,
    high: float = 0.05,
) -> np.ndarray:
    """Uniform initialiser on ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(np.float64)


def normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mean: float = 0.0,
    std: float = 0.01,
) -> np.ndarray:
    """Gaussian initialiser with the given mean and standard deviation."""
    return rng.normal(mean, std, size=shape).astype(np.float64)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) uniform initialiser, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialiser, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform initialiser, suited to tanh/linear layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) normal initialiser."""
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / max(fan_in + fan_out, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float64)
