"""Normalisation layers.

``BatchNorm2d`` follows the standard formulation (Ioffe & Szegedy)
with exact backward-pass gradients and running statistics for
evaluation.  Note for federated use: the learnable affine parameters
(gamma, beta) participate in ``Sequential.get_flat_params`` and are
therefore aggregated like any weight, while the running mean/var are
*local buffers* that stay on each replica — the FedBN convention,
which is also what keeps flat-parameter round-trips architecture-pure.

``GroupNorm`` is the FL-preferred alternative: it normalises per
sample (no cross-batch statistics at all), so nothing desynchronises
between replicas and evaluation behaves identically to training.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, Parameter

__all__ = ["BatchNorm2d", "GroupNorm"]


class BatchNorm2d(Layer):
    """Batch normalisation over (N, C, H, W) activations."""

    def __init__(self, num_channels: int, momentum: float = 0.1, eps: float = 1e-5,
                 name: str = "bn"):
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if not 0.0 < momentum <= 1.0:
            raise ValueError("momentum must be in (0, 1]")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.num_channels = num_channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(f"{name}.gamma", np.ones(num_channels))
        self.beta = Parameter(f"{name}.beta", np.zeros(num_channels))
        # Local buffers (not part of the trainable parameter vector).
        self.running_mean = np.zeros(num_channels)
        self.running_var = np.ones(num_channels)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_channels}, H, W), got {x.shape}"
            )
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            # In-place EMA (same evaluation order as the rebinding
            # form → bit-identical); these buffers stay layer-local
            # and must never become views into a flat parameter
            # buffer (the FedBN convention).
            self.running_mean *= 1.0 - self.momentum
            self.running_mean += self.momentum * mean
            self.running_var *= 1.0 - self.momentum
            self.running_var += self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var

        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        if training:
            self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, inv_std, shape = self._cache
        n, _, h, w = shape
        m = n * h * w  # elements per channel

        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))

        # Standard batch-norm input gradient.
        g = grad_out * self.gamma.data[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_in = (
            inv_std[None, :, None, None]
            * (g - sum_g / m - x_hat * sum_gx / m)
        )
        self._cache = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c = input_shape[0]
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        c, h, w = input_shape
        return 4 * c * h * w  # normalise + scale + shift, per element


class GroupNorm(Layer):
    """Group normalisation over (N, C, H, W) activations (Wu & He).

    Channels are split into ``num_groups`` groups; each sample's group
    is normalised independently, so there is no batch coupling and no
    train/eval mode distinction — the property that makes GroupNorm the
    normalisation of choice in federated learning.
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5,
                 name: str = "gn"):
        if num_groups <= 0 or num_channels <= 0:
            raise ValueError("num_groups and num_channels must be positive")
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels ({num_channels}) must be divisible by "
                f"num_groups ({num_groups})"
            )
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.gamma = Parameter(f"{name}.gamma", np.ones(num_channels))
        self.beta = Parameter(f"{name}.beta", np.zeros(num_channels))
        self._cache: tuple | None = None

    def _grouped(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        return x.reshape(n, self.num_groups, c // self.num_groups, h, w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(
                f"GroupNorm expected (N, {self.num_channels}, H, W), got {x.shape}"
            )
        grouped = self._grouped(x)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * inv_std).reshape(x.shape)
        out = (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )
        if training:
            self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, inv_std, shape = self._cache
        n, c, h, w = shape
        m = (c // self.num_groups) * h * w  # elements per group

        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))

        g = (grad_out * self.gamma.data[None, :, None, None])
        g_grouped = self._grouped(g)
        x_hat_grouped = self._grouped(x_hat)
        sum_g = g_grouped.sum(axis=(2, 3, 4), keepdims=True)
        sum_gx = (g_grouped * x_hat_grouped).sum(axis=(2, 3, 4), keepdims=True)
        grad_grouped = inv_std * (
            g_grouped - sum_g / m - x_hat_grouped * sum_gx / m
        )
        self._cache = None
        return grad_grouped.reshape(shape)

    def parameters(self) -> list[Parameter]:
        return [self.gamma, self.beta]

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c = input_shape[0]
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        c, h, w = input_shape
        return 4 * c * h * w
