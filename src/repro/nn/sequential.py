"""Sequential model container with flat-parameter-vector utilities.

Federated learning treats a model as one flat vector `w ∈ R^d`
(Eq. 1 of the paper), so :class:`Sequential` provides lossless
round-trips between its layer parameters and a single 1-D array:
``get_flat_params`` / ``set_flat_params`` / ``get_flat_grads``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, Parameter

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers run back-to-back."""

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        # Validate shape propagation eagerly so misconfigured models
        # fail at construction, not mid-experiment.
        self._layer_input_shapes: list[tuple[int, ...]] = []
        shape = self.input_shape
        for layer in self.layers:
            self._layer_input_shapes.append(shape)
            shape = layer.output_shape(shape)
        self.output_shape = shape

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers in order."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers, accumulating parameter grads."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over the final axis)."""
        return np.argmax(self.forward(x, training=False), axis=-1)

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def num_params(self) -> int:
        """Total scalar parameter count ``d``."""
        return sum(p.size for p in self.parameters())

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameters into one 1-D float64 vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([p.data.ravel() for p in params])

    def set_flat_params(self, vector: np.ndarray) -> None:
        """Load a flat vector back into the layer parameters."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.size != self.num_params:
            raise ValueError(
                f"expected flat vector of size {self.num_params}, got shape {vector.shape}"
            )
        offset = 0
        for p in self.parameters():
            chunk = vector[offset : offset + p.size]
            p.data[...] = chunk.reshape(p.data.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """Concatenate all parameter gradients into one 1-D vector."""
        params = self.parameters()
        if not params:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([p.grad.ravel() for p in params])

    def set_flat_grads(self, vector: np.ndarray) -> None:
        """Load a flat vector into the gradient buffers (used by SCAFFOLD)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.size != self.num_params:
            raise ValueError(
                f"expected flat vector of size {self.num_params}, got shape {vector.shape}"
            )
        offset = 0
        for p in self.parameters():
            chunk = vector[offset : offset + p.size]
            p.grad[...] = chunk.reshape(p.data.shape)
            offset += p.size

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def flops_per_sample(self) -> int:
        """Forward multiply-accumulate count for a single input sample."""
        total = 0
        for layer, shape in zip(self.layers, self._layer_input_shapes):
            total += layer.flops(shape)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{names}], d={self.num_params})"
