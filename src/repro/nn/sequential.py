"""Sequential model container with a zero-copy flat-parameter engine.

Federated learning treats a model as one flat vector `w ∈ R^d`
(Eq. 1 of the paper), so :class:`Sequential` owns that vector
directly: at construction it allocates one contiguous float64 backing
buffer for parameters and one for gradients, and rebinds every
``Parameter.data`` / ``Parameter.grad`` to a reshaped *view* into
them.  ``get_flat_params`` / ``get_flat_grads`` therefore return the
backing buffers in O(1) with no copy, and ``set_flat_params`` /
``set_flat_grads`` are a single vectorised assignment.

Aliasing contract (see docs/architecture.md, "Parameter memory
model"): the arrays returned by the getters ARE the live model
storage — mutating them in place mutates the model, which is exactly
what the FedProx/SCAFFOLD per-minibatch corrections exploit.  Callers
that need a snapshot must ``.copy()``.  The setters always copy the
incoming vector, so foreign arrays are never aliased.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer, Parameter
from repro.nn.subspace import ParamLayoutEntry, ParamSubspace

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers run back-to-back."""

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...]):
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        # Validate shape propagation eagerly so misconfigured models
        # fail at construction, not mid-experiment.
        self._layer_input_shapes: list[tuple[int, ...]] = []
        shape = self.input_shape
        for layer in self.layers:
            self._layer_input_shapes.append(shape)
            shape = layer.output_shape(shape)
        self.output_shape = shape

        # Zero-copy flat-parameter engine: move every parameter into
        # one contiguous backing buffer (and its gradient into a
        # second), keeping each Parameter as a reshaped view.
        self._params: list[Parameter] = []
        for layer in self.layers:
            self._params.extend(layer.parameters())
        d = sum(p.size for p in self._params)
        self._param_buf = np.empty(d, dtype=np.float64)
        self._grad_buf = np.zeros(d, dtype=np.float64)
        offset = 0
        for p in self._params:
            end = offset + p.size
            self._param_buf[offset:end] = p.data.ravel()
            p.data = self._param_buf[offset:end].reshape(p.data.shape)
            p.grad = self._grad_buf[offset:end].reshape(p.data.shape)
            offset = end
        self._flat_param = Parameter.from_views(
            "flat", self._param_buf, self._grad_buf
        )

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Pickling an ndarray view serialises it as an independent
        # copy, which would sever every Parameter from the backing
        # buffers; drop the views and rebuild them on unpickle.
        state = self.__dict__.copy()
        state.pop("_flat_param", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        offset = 0
        for p in self._params:
            end = offset + p.data.size
            shape = p.data.shape
            p.data = self._param_buf[offset:end].reshape(shape)
            p.grad = self._grad_buf[offset:end].reshape(shape)
            offset = end
        self._flat_param = Parameter.from_views(
            "flat", self._param_buf, self._grad_buf
        )

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers in order."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through all layers, accumulating parameter grads.

        The returned input gradient may be a view into a layer's
        internal workspace; it is only valid until the next
        forward/backward call through the model.
        """
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Class predictions (argmax over the final axis).

        ``batch_size`` evaluates in chunks, bounding the im2col
        working-set for conv models; results are identical to the
        single-pass default because rows are independent.
        """
        if batch_size is None or x.shape[0] <= batch_size:
            return np.argmax(self.forward(x, training=False), axis=-1)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive or None")
        preds = np.empty(x.shape[0], dtype=np.int64)
        for start in range(0, x.shape[0], batch_size):
            stop = start + batch_size
            preds[start:stop] = np.argmax(
                self.forward(x[start:stop], training=False), axis=-1
            )
        return preds

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        return list(self._params)

    def flat_parameter(self) -> Parameter:
        """The whole model as one :class:`Parameter` over the backing buffers.

        Optimising ``[model.flat_parameter()]`` is mathematically (and
        bit-for-bit) identical to optimising ``model.parameters()``
        with the same elementwise rule, but runs one vectorised update
        instead of a Python loop over layers.
        """
        return self._flat_param

    def zero_grad(self) -> None:
        self._grad_buf.fill(0.0)

    @property
    def num_params(self) -> int:
        """Total scalar parameter count ``d``."""
        return self._param_buf.size

    def get_flat_params(self) -> np.ndarray:
        """The contiguous parameter backing buffer (O(1), no copy).

        This is live storage shared with every ``Parameter.data``;
        callers needing a snapshot must copy.
        """
        return self._param_buf

    def set_flat_params(self, vector: np.ndarray) -> None:
        """Copy a flat vector into the parameter backing buffer."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.size != self.num_params:
            raise ValueError(
                f"expected flat vector of size {self.num_params}, got shape {vector.shape}"
            )
        if vector is not self._param_buf:
            self._param_buf[...] = vector

    def get_flat_grads(self) -> np.ndarray:
        """The contiguous gradient backing buffer (O(1), no copy).

        Shares memory with every ``Parameter.grad``; in-place updates
        (``grads += correction``) are the supported way to apply flat
        gradient corrections.
        """
        return self._grad_buf

    def set_flat_grads(self, vector: np.ndarray) -> None:
        """Copy a flat vector into the gradient backing buffer."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.size != self.num_params:
            raise ValueError(
                f"expected flat vector of size {self.num_params}, got shape {vector.shape}"
            )
        if vector is not self._grad_buf:
            self._grad_buf[...] = vector

    # ------------------------------------------------------------------
    # Parameter subspaces
    # ------------------------------------------------------------------
    def param_layout(self) -> list[ParamLayoutEntry]:
        """Per-parameter ``(name, offset, size)`` spans of the flat buffer.

        The order matches the backing-buffer layout built at
        construction, so :meth:`ParamSubspace.sample` can stratify a
        mask over layers without re-deriving offsets.
        """
        layout: list[ParamLayoutEntry] = []
        offset = 0
        for p in self._params:
            layout.append(ParamLayoutEntry(p.name, offset, p.size))
            offset += p.size
        return layout

    def full_subspace(self) -> ParamSubspace:
        """The identity subspace over this model's flat buffer."""
        return ParamSubspace.full(self.num_params)

    def get_flat_params_subspace(self, subspace: ParamSubspace) -> np.ndarray:
        """The covered coordinates of the parameter buffer.

        A full subspace returns the live backing buffer itself (the
        legacy :meth:`get_flat_params` contract, O(1)); a partial one
        returns a fresh gathered array.
        """
        if subspace.dim != self.num_params:
            raise ValueError(
                f"subspace dim {subspace.dim} != model dim {self.num_params}"
            )
        return subspace.gather(self._param_buf)

    def set_flat_params_subspace(
        self, subspace: ParamSubspace, values: np.ndarray
    ) -> None:
        """Write subspace values into the parameter buffer in place.

        Uncovered coordinates keep their current values — the
        sub-model semantics of Adaptive Federated Dropout, where the
        server's weights survive outside the client's mask.
        """
        if subspace.dim != self.num_params:
            raise ValueError(
                f"subspace dim {subspace.dim} != model dim {self.num_params}"
            )
        values = np.asarray(values, dtype=np.float64)
        subspace.scatter(values, self._param_buf)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def flops_per_sample(self) -> int:
        """Forward multiply-accumulate count for a single input sample."""
        total = 0
        for layer, shape in zip(self.layers, self._layer_input_shapes):
            total += layer.flops(shape)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{names}], d={self.num_params})"
