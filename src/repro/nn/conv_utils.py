"""im2col / col2im helpers for convolution and pooling layers.

Convolutions in :mod:`repro.nn` are implemented as a single matrix
multiplication over an *im2col* expansion of the input.  On a CPU this
is the standard way to get BLAS-speed convolutions out of numpy, and it
keeps the backward pass a plain transposed matmul plus a *col2im*
scatter.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution collapses dimension: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Expand ``x`` of shape (N, C, H, W) into convolution columns.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h *
    kernel_w)`` where each row is one receptive field, laid out so that
    ``cols @ weights.reshape(out_c, -1).T`` computes the convolution.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )

    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]

    # (N, out_h, out_w, C, kh, kw) -> rows of receptive fields.
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        n * out_h * out_w, c * kernel_h * kernel_w
    )
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image.

    Overlapping receptive fields accumulate, which is exactly the
    gradient of the im2col gather — so this implements the backward
    pass of convolution with respect to its input.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]

    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
