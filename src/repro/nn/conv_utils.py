"""im2col / col2im helpers for convolution and pooling layers.

Convolutions in :mod:`repro.nn` are implemented as a single matrix
multiplication over an *im2col* expansion of the input.  On a CPU this
is the standard way to get BLAS-speed convolutions out of numpy, and it
keeps the backward pass a plain transposed matmul plus a *col2im*
scatter.

Both helpers accept an optional :class:`ConvWorkspace`.  The im2col
expansion and the col2im scatter target are the two largest
allocations in the training inner loop; a workspace caches them keyed
on the call geometry, so steady-state training (fixed batch shape)
performs zero large allocations per batch.  Workspace-backed calls
return views into the workspace: the result is only valid until the
next call that reuses the same workspace.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im", "ConvWorkspace"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution collapses dimension: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


class ConvWorkspace:
    """Reusable im2col/col2im scratch buffers for one call geometry.

    Holds the four big intermediates of an im2col convolution:

    * ``gather``   — (N, C, kh, kw, out_h, out_w) window gather,
    * ``cols``     — (N*out_h*out_w, C*kh*kw) column matrix,
    * ``pad_in``   — zero-padded input copy (forward, padding > 0),
    * ``pad_out``  — col2im scatter target.

    Buffers are (re)allocated whenever the geometry key changes and
    reused verbatim otherwise, so a layer training on a fixed batch
    shape touches the allocator only once.  ``pad_in`` keeps its zero
    border across calls: only the interior is rewritten.
    """

    __slots__ = ("_key", "_gather", "_cols", "_pad_in", "_pad_out")

    def __init__(self) -> None:
        self._key: tuple | None = None
        self._gather: np.ndarray | None = None
        self._cols: np.ndarray | None = None
        self._pad_in: np.ndarray | None = None
        self._pad_out: np.ndarray | None = None

    def _prepare(
        self,
        x_shape: tuple[int, int, int, int],
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        dtype: np.dtype,
    ) -> tuple[int, int]:
        """Ensure buffers exist for this geometry; return (out_h, out_w)."""
        n, c, h, w = x_shape
        out_h = conv_output_size(h, kernel_h, stride, padding)
        out_w = conv_output_size(w, kernel_w, stride, padding)
        key = (x_shape, kernel_h, kernel_w, stride, padding, np.dtype(dtype))
        if key != self._key:
            self._key = key
            self._gather = np.empty(
                (n, c, kernel_h, kernel_w, out_h, out_w), dtype=dtype
            )
            self._cols = np.empty(
                (n * out_h * out_w, c * kernel_h * kernel_w), dtype=dtype
            )
            padded_shape = (n, c, h + 2 * padding, w + 2 * padding)
            self._pad_in = np.zeros(padded_shape, dtype=dtype) if padding > 0 else None
            self._pad_out = np.empty(padded_shape, dtype=dtype)
        return out_h, out_w


def im2col(
    x: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    workspace: ConvWorkspace | None = None,
) -> np.ndarray:
    """Expand ``x`` of shape (N, C, H, W) into convolution columns.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h *
    kernel_w)`` where each row is one receptive field, laid out so that
    ``cols @ weights.reshape(out_c, -1).T`` computes the convolution.

    With a ``workspace`` the returned array is the workspace's cached
    column buffer (valid until the next same-workspace call); without
    one, fresh arrays are allocated as before.
    """
    n, c, h, w = x.shape

    if workspace is not None:
        out_h, out_w = workspace._prepare(
            x.shape, kernel_h, kernel_w, stride, padding, x.dtype
        )
        if padding > 0:
            # The border was zeroed at allocation and is never written
            # afterwards; only the interior needs refreshing.
            workspace._pad_in[:, :, padding:-padding, padding:-padding] = x
            x = workspace._pad_in
        cols = workspace._gather
    else:
        out_h = conv_output_size(h, kernel_h, stride, padding)
        out_w = conv_output_size(w, kernel_w, stride, padding)
        if padding > 0:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                mode="constant",
            )
        cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)

    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]

    # (N, out_h, out_w, C, kh, kw) -> rows of receptive fields.
    rows = cols.transpose(0, 4, 5, 1, 2, 3)
    if workspace is not None:
        out = workspace._cols
        np.copyto(out.reshape(n, out_h, out_w, c, kernel_h, kernel_w), rows)
        return out
    return rows.reshape(n * out_h * out_w, c * kernel_h * kernel_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    padding: int = 0,
    workspace: ConvWorkspace | None = None,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to an image.

    Overlapping receptive fields accumulate, which is exactly the
    gradient of the im2col gather — so this implements the backward
    pass of convolution with respect to its input.

    With a ``workspace`` the result is (a view into) the workspace's
    cached scatter buffer, valid until the next same-workspace call.
    """
    n, c, h, w = x_shape

    if workspace is not None:
        out_h, out_w = workspace._prepare(
            x_shape, kernel_h, kernel_w, stride, padding, cols.dtype
        )
        padded = workspace._pad_out
        padded.fill(0.0)
    else:
        out_h = conv_output_size(h, kernel_h, stride, padding)
        out_w = conv_output_size(w, kernel_w, stride, padding)
        padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)

    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)

    for i in range(kernel_h):
        i_max = i + stride * out_h
        for j in range(kernel_w):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]

    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
