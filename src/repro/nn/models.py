"""Model zoo.

``build_mnist_cnn`` follows the paper's baseline CNN exactly in
structure: two 5x5 convolutions (20 then 50 output channels), each
followed by 2x2 max pooling, then fully connected layers.  The paper
runs it on 28x28 MNIST; here the convolutions use same-padding so the
architecture works on the smaller synthetic images this reproduction
trains on (see DESIGN.md, substitutions table).

``build_resnet_mini`` and ``build_vgg_mini`` are the depth-reduced
stand-ins for ResNet-50 and VGG-Net used in the paper's CIFAR
experiments: they preserve the architectural idiom (residual blocks /
stacked 3x3 VGG blocks) at a CPU-tractable size.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    ResidualBlock,
)
from repro.nn.sequential import Sequential

__all__ = [
    "build_mlp",
    "build_logistic",
    "build_mnist_cnn",
    "build_resnet_mini",
    "build_vgg_mini",
    "build_model",
    "MODEL_BUILDERS",
]


def _as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def build_logistic(
    input_shape: tuple[int, ...],
    num_classes: int,
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """Multinomial logistic regression — the cheapest sanity model."""
    rng = _as_rng(seed)
    features = int(np.prod(input_shape))
    layers = [Flatten(), Linear(features, num_classes, rng, name="fc")]
    return Sequential(layers, input_shape)


def build_mlp(
    input_shape: tuple[int, ...],
    num_classes: int,
    hidden: tuple[int, ...] = (32,),
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """Small multilayer perceptron used in fast tests."""
    rng = _as_rng(seed)
    features = int(np.prod(input_shape))
    layers: list = [Flatten()]
    prev = features
    for i, width in enumerate(hidden):
        layers.append(Linear(prev, width, rng, name=f"fc{i}"))
        layers.append(ReLU())
        prev = width
    layers.append(Linear(prev, num_classes, rng, name="head"))
    return Sequential(layers, input_shape)


def build_mnist_cnn(
    input_shape: tuple[int, ...] = (1, 14, 14),
    num_classes: int = 10,
    channels: tuple[int, int] = (20, 50),
    hidden: int = 128,
    seed: int | np.random.Generator = 0,
    same_padding: bool = True,
) -> Sequential:
    """The paper's baseline CNN: conv5x5(20) -> pool2 -> conv5x5(50) -> pool2 -> FC.

    ``same_padding=True`` (the default) keeps the two 5x5 stages valid
    on the small synthetic images this reproduction trains on.  With
    ``same_padding=False``, the paper's 28x28 MNIST geometry, and
    ``channels=(20, 50), hidden=500`` this is the exact ~430k-parameter
    (1.64 MB float32) architecture from Wang et al. (INFOCOM'20) that
    the paper reuses.
    """
    rng = _as_rng(seed)
    c, h, w = input_shape
    pad = 2 if same_padding else 0
    shrink = 0 if same_padding else 4  # a valid 5x5 conv loses 4 pixels
    h1, w1 = (h - shrink) // 2, (w - shrink) // 2
    h2, w2 = (h1 - shrink) // 2, (w1 - shrink) // 2
    if h2 < 1 or w2 < 1:
        raise ValueError("input too small for two conv+pool stages")
    c1, c2 = channels
    layers = [
        Conv2d(c, c1, 5, rng, padding=pad, name="conv1"),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c1, c2, 5, rng, padding=pad, name="conv2"),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(c2 * h2 * w2, hidden, rng, name="fc1"),
        ReLU(),
        Linear(hidden, num_classes, rng, name="fc2"),
    ]
    return Sequential(layers, input_shape)


def build_resnet_mini(
    input_shape: tuple[int, ...] = (3, 12, 12),
    num_classes: int = 10,
    width: int = 16,
    num_blocks: int = 2,
    seed: int | np.random.Generator = 0,
    head: str = "flatten",
) -> Sequential:
    """Residual CNN — the scaled stand-in for the paper's ResNet-50.

    ``head`` selects the classifier: ``"flatten"`` (2x2 max pool then a
    linear layer over the spatial map — default, retains the spatial
    information the synthetic prototype classes live in) or ``"gap"``
    (ResNet's original global-average-pool head).
    """
    rng = _as_rng(seed)
    c, h, w = input_shape
    layers: list = [
        Conv2d(c, width, 3, rng, padding=1, name="stem"),
        ReLU(),
    ]
    for i in range(num_blocks):
        layers.append(ResidualBlock(width, rng, name=f"block{i}"))
    if head == "gap":
        layers.append(GlobalAvgPool2d())
        layers.append(Linear(width, num_classes, rng, name="head"))
    elif head == "flatten":
        layers.append(MaxPool2d(2))
        layers.append(Flatten())
        layers.append(Linear(width * (h // 2) * (w // 2), num_classes, rng, name="head"))
    else:
        raise ValueError(f"unknown head {head!r}; expected 'flatten' or 'gap'")
    return Sequential(layers, input_shape)


def build_vgg_mini(
    input_shape: tuple[int, ...] = (3, 12, 12),
    num_classes: int = 100,
    widths: tuple[int, int] = (16, 32),
    hidden: int = 64,
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """VGG-style CNN — the scaled stand-in for the paper's VGG-Net.

    Two blocks of (conv3x3, ReLU, conv3x3, ReLU, maxpool2) followed by
    a fully connected classifier, mirroring VGG's stacked-3x3 idiom.
    """
    rng = _as_rng(seed)
    c, h, w = input_shape
    if h < 4 or w < 4:
        raise ValueError("input too small for two pooling stages")
    layers: list = []
    prev = c
    for i, width in enumerate(widths):
        layers.extend(
            [
                Conv2d(prev, width, 3, rng, padding=1, name=f"b{i}.conv1"),
                ReLU(),
                Conv2d(width, width, 3, rng, padding=1, name=f"b{i}.conv2"),
                ReLU(),
                MaxPool2d(2),
            ]
        )
        prev = width
    layers.append(Flatten())
    feat = prev * (h // 4) * (w // 4)
    layers.append(Linear(feat, hidden, rng, name="fc1"))
    layers.append(ReLU())
    layers.append(Linear(hidden, num_classes, rng, name="fc2"))
    return Sequential(layers, input_shape)


MODEL_BUILDERS = {
    "logistic": build_logistic,
    "mlp": build_mlp,
    "mnist_cnn": build_mnist_cnn,
    "resnet_mini": build_resnet_mini,
    "vgg_mini": build_vgg_mini,
}


def build_model(
    name: str,
    input_shape: tuple[int, ...],
    num_classes: int,
    seed: int | np.random.Generator = 0,
    **kwargs,
) -> Sequential:
    """Build a model from the registry by name.

    Raises ``KeyError`` with the list of known names on a miss so
    experiment configs fail loudly.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_BUILDERS))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
    return builder(input_shape=input_shape, num_classes=num_classes, seed=seed, **kwargs)
