"""Layers with explicit forward/backward passes.

The package deliberately avoids a tape-based autograd: every layer
caches what it needs during ``forward`` and consumes it in
``backward``.  That keeps the memory profile predictable (important for
the embedded-device cost model in :mod:`repro.embedded`) and makes the
FLOP accounting per layer exact.

All layers share the :class:`Layer` interface:

``forward(x, training=False)``
    Run the layer, caching intermediates when ``training`` is true.
``backward(grad_out)``
    Given the loss gradient w.r.t. the layer output, accumulate
    parameter gradients into ``Parameter.grad`` and return the gradient
    w.r.t. the layer input.
``parameters()``
    The layer's trainable :class:`Parameter` objects, in a stable
    order.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.conv_utils import ConvWorkspace, col2im, conv_output_size, im2col

__all__ = [
    "Parameter",
    "Layer",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Tanh",
    "Dropout",
    "Flatten",
    "ResidualBlock",
]


class Parameter:
    """A trainable tensor with an accompanying gradient buffer."""

    __slots__ = ("name", "data", "grad")

    def __init__(self, name: str, data: np.ndarray):
        self.name = name
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @classmethod
    def from_views(cls, name: str, data: np.ndarray, grad: np.ndarray) -> "Parameter":
        """Wrap existing arrays without copying or reallocating the grad.

        Used by :class:`repro.nn.sequential.Sequential` to expose its
        backing buffers as a single flat parameter.
        """
        if data.shape != grad.shape:
            raise ValueError("data and grad shapes must match")
        obj = cls.__new__(cls)
        obj.name = name
        obj.data = data
        obj.grad = grad
        return obj

    @property
    def size(self) -> int:
        """Number of scalar elements in the parameter."""
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the gradient buffer in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name!r}, shape={self.data.shape})"


class Layer:
    """Base class for all layers."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters in a stable order (default: none)."""
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape (excluding batch) this layer produces for ``input_shape``."""
        raise NotImplementedError

    def flops(self, input_shape: tuple[int, ...]) -> int:
        """Approximate multiply-accumulate count for one forward sample.

        The embedded-device cost model multiplies this by a
        backward-pass factor; layers without arithmetic return 0.
        """
        del input_shape
        return 0


class Linear(Layer):
    """Fully connected layer: ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        name: str = "linear",
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            f"{name}.weight",
            initializers.kaiming_uniform((out_features, in_features), rng),
        )
        self.bias = Parameter(f"{name}.bias", initializers.zeros((out_features,))) if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (N, {self.in_features}), got {x.shape}"
            )
        if training:
            self._x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(training=True)")
        self.weight.grad += grad_out.T @ self._x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        grad_in = grad_out @ self.weight.data
        self._x = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ValueError(
                f"Linear expected input shape ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        return self.in_features * self.out_features


class Conv2d(Layer):
    """2-D convolution over (N, C, H, W) inputs via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: str = "conv",
    ):
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(f"{name}.weight", initializers.kaiming_uniform(shape, rng))
        self.bias = Parameter(f"{name}.bias", initializers.zeros((out_channels,))) if bias else None
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        # Separate train/eval workspaces: training forward caches the
        # column buffer for backward, so an interleaved evaluation pass
        # must not overwrite it.
        self._ws_train = ConvWorkspace()
        self._ws_eval = ConvWorkspace()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = conv_output_size(h, k, s, p)
        out_w = conv_output_size(w, k, s, p)
        cols = im2col(x, k, k, s, p, self._ws_train if training else self._ws_eval)
        if training:
            self._cols = cols
            self._x_shape = x.shape
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.bias is not None:
            out = out + self.bias.data
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, _, out_h, out_w = grad_out.shape
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ self._cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat
        grad_in = col2im(
            grad_cols,
            self._x_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
            self._ws_train,
        )
        self._cols = None
        self._x_shape = None
        return grad_in

    def parameters(self) -> list[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def flops(self, input_shape: tuple[int, ...]) -> int:
        _, out_h, out_w = self.output_shape(input_shape)
        per_output = self.in_channels * self.kernel_size * self.kernel_size
        return per_output * self.out_channels * out_h * out_w


class MaxPool2d(Layer):
    """Max pooling with a square window; window must tile exactly or floor."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        # Backward only needs the boolean mask (cached separately), so
        # one workspace safely serves train forward, eval forward, and
        # the col2im scatter in backward.
        self._ws = ConvWorkspace()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(h, k, s, 0)
        out_w = conv_output_size(w, k, s, 0)
        # Treat channels as extra batch entries so im2col windows stay
        # single-channel.
        reshaped = x.reshape(n * c, 1, h, w)
        cols = im2col(reshaped, k, k, s, 0, self._ws)
        out = cols.max(axis=1)
        if training:
            mask = cols == out[:, None]
            # Break ties: keep only the first maximal element per window
            # so the backward pass routes each gradient exactly once.
            first = np.argmax(mask, axis=1)
            mask = np.zeros_like(mask)
            mask[np.arange(mask.shape[0], dtype=np.intp), first] = True
            self._mask = mask
            self._x_shape = (n, c, h, w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w = self._x_shape
        grad_flat = grad_out.reshape(-1, 1)
        grad_cols = self._mask * grad_flat
        grad_in = col2im(
            grad_cols,
            (n * c, 1, h, w),
            self.kernel_size,
            self.kernel_size,
            self.stride,
            0,
            self._ws,
        )
        self._mask = None
        self._x_shape = None
        return grad_in.reshape(n, c, h, w)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, 0)
        out_w = conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, out_h, out_w)


class AvgPool2d(Layer):
    """Average pooling with a square window."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None
        self._ws = ConvWorkspace()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        out_h = conv_output_size(h, k, s, 0)
        out_w = conv_output_size(w, k, s, 0)
        cols = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0, self._ws)
        out = cols.mean(axis=1)
        if training:
            self._x_shape = (n, c, h, w)
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w = self._x_shape
        window = self.kernel_size * self.kernel_size
        grad_cols = np.repeat(grad_out.reshape(-1, 1) / window, window, axis=1)
        grad_in = col2im(
            grad_cols,
            (n * c, 1, h, w),
            self.kernel_size,
            self.kernel_size,
            self.stride,
            0,
            self._ws,
        )
        self._x_shape = None
        return grad_in.reshape(n, c, h, w)

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, 0)
        out_w = conv_output_size(w, self.kernel_size, self.stride, 0)
        return (c, out_h, out_w)


class GlobalAvgPool2d(Layer):
    """Average over the entire spatial extent, yielding (N, C)."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, c, h, w = self._x_shape
        # reprolint: allow[R402] broadcast views are read-only; callers mutate grad_in
        grad_in = np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()
        self._x_shape = None
        return grad_in

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, _, _ = input_shape
        return (c,)


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(training=True)")
        grad_in = grad_out * (1.0 - self._out**2)
        self._out = None
        return grad_in

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time.

    The layer owns its RNG so that two clones of a model seeded
    identically draw identical masks — required for deterministic
    federated runs.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        grad_in = grad_out * self._mask
        self._mask = None
        return grad_in

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape


class Flatten(Layer):
    """Reshape (N, ...) to (N, -1)."""

    def __init__(self) -> None:
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        grad_in = grad_out.reshape(self._x_shape)
        self._x_shape = None
        return grad_in

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class ResidualBlock(Layer):
    """Two 3x3 same-padding convolutions with an identity skip.

    This is the building block of :func:`repro.nn.models.build_resnet_mini`,
    the depth-reduced stand-in for the paper's ResNet-50.
    """

    def __init__(self, channels: int, rng: np.random.Generator, name: str = "res"):
        self.conv1 = Conv2d(channels, channels, 3, rng, padding=1, name=f"{name}.conv1")
        self.relu1 = ReLU()
        self.conv2 = Conv2d(channels, channels, 3, rng, padding=1, name=f"{name}.conv2")
        self.relu2 = ReLU()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.conv1.forward(x, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        return self.relu2.forward(out + x, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_out)
        grad_branch = self.conv2.backward(grad)
        grad_branch = self.relu1.backward(grad_branch)
        grad_branch = self.conv1.backward(grad_branch)
        return grad_branch + grad

    def parameters(self) -> list[Parameter]:
        return self.conv1.parameters() + self.conv2.parameters()

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return input_shape

    def flops(self, input_shape: tuple[int, ...]) -> int:
        mid = self.conv1.output_shape(input_shape)
        return self.conv1.flops(input_shape) + self.conv2.flops(mid)
