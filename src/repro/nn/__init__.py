"""A from-scratch numpy neural-network substrate.

This package stands in for PyTorch in the reproduction: layers with
explicit backprop, SGD/Adam optimisers, softmax cross-entropy, and a
model zoo matching the paper's architectures (the MNIST CNN exactly;
ResNet/VGG as depth-reduced equivalents).
"""

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Layer,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    ResidualBlock,
    Tanh,
)
from repro.nn.normalization import BatchNorm2d, GroupNorm
from repro.nn.schedulers import (
    CosineAnnealingLR,
    LRScheduler,
    StepLR,
    WarmupLR,
    clip_grad_norm,
)
from repro.nn.losses import MSELoss, SoftmaxCrossEntropy, log_softmax, softmax
from repro.nn.models import (
    MODEL_BUILDERS,
    build_logistic,
    build_mlp,
    build_mnist_cnn,
    build_model,
    build_resnet_mini,
    build_vgg_mini,
)
from repro.nn.optim import SGD, Adam, AdamVector, Optimizer
from repro.nn.sequential import Sequential
from repro.nn.subspace import ParamLayoutEntry, ParamSubspace

__all__ = [
    "Layer",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Tanh",
    "Dropout",
    "Flatten",
    "ResidualBlock",
    "BatchNorm2d",
    "GroupNorm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "clip_grad_norm",
    "Sequential",
    "ParamLayoutEntry",
    "ParamSubspace",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "softmax",
    "log_softmax",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamVector",
    "MODEL_BUILDERS",
    "build_model",
    "build_logistic",
    "build_mlp",
    "build_mnist_cnn",
    "build_resnet_mini",
    "build_vgg_mini",
]
