"""Loss functions.

Every loss exposes ``forward(predictions, targets) -> float`` and
``backward() -> grad_wrt_predictions``, mirroring the layer interface.
"""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "SoftmaxCrossEntropy", "MSELoss"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def log_softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


class SoftmaxCrossEntropy:
    """Mean cross-entropy over a batch of integer-labelled logits."""

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Return the mean cross-entropy loss.

        ``logits`` is (N, C); ``targets`` is (N,) integer class labels.
        """
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        targets = np.asarray(targets)
        if targets.shape != (logits.shape[0],):
            raise ValueError(
                f"targets shape {targets.shape} does not match batch {logits.shape[0]}"
            )
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
            raise ValueError("target label out of range")
        log_p = log_softmax(logits)
        self._probs = np.exp(log_p)
        self._targets = targets
        n = logits.shape[0]
        return float(-log_p[np.arange(n), targets].mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        grad /= n
        self._probs = None
        self._targets = None
        return grad


class MSELoss:
    """Mean squared error over all elements."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        grad = 2.0 * self._diff / self._diff.size
        self._diff = None
        return grad
