"""Optimisers operating on :class:`repro.nn.layers.Parameter` lists.

``SGD`` (optionally with momentum and weight decay) is the client-side
optimiser used throughout the paper; ``Adam`` doubles as the
server-side optimiser for FedAdam when driven through
:class:`AdamVector`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamVector"]


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        self.params = list(params)
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in params] if momentum else None

    def configure(
        self, lr: float, momentum: float = 0.0, weight_decay: float = 0.0
    ) -> None:
        """Re-point a reused optimiser at new hyperparameters.

        Keeps the velocity buffers allocated when momentum stays
        enabled (callers reuse one SGD across training rounds instead
        of rebuilding it, see ``Client.local_train``); allocates them
        on a 0 -> m transition and drops them on m -> 0.
        """
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.weight_decay = weight_decay
        if momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        elif not momentum:
            self._velocity = None
        self.momentum = momentum

    def reset_state(self) -> None:
        """Zero the momentum buffers in place (fresh-optimiser state)."""
        if self._velocity is not None:
            for v in self._velocity:
                v.fill(0.0)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._velocity is not None:
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m[i]
            v = self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamVector:
    """Adam over a single flat vector (server-side optimiser for FedAdam).

    FedAdam (Reddi et al., 2020) treats the negated average client delta
    as a pseudo-gradient and applies Adam on the server.  The server
    stores the global model as one flat vector, so this variant avoids
    round-tripping through ``Parameter`` objects.
    """

    def __init__(
        self,
        dim: int,
        lr: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.99,
        eps: float = 1e-3,
    ):
        if dim <= 0:
            raise ValueError("dim must be positive")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = np.zeros(dim, dtype=np.float64)
        self._v = np.zeros(dim, dtype=np.float64)
        self._t = 0

    def step(self, params: np.ndarray, pseudo_grad: np.ndarray) -> np.ndarray:
        """Return updated parameters given a pseudo-gradient."""
        if params.shape != self._m.shape or pseudo_grad.shape != self._m.shape:
            raise ValueError("shape mismatch with optimiser state")
        self._t += 1
        # In-place moment updates (same evaluation order as the
        # rebinding form, so results stay bit-identical) avoid two
        # O(d) allocations per server step.
        self._m *= self.beta1
        self._m += (1.0 - self.beta1) * pseudo_grad
        self._v *= self.beta2
        self._v += (1.0 - self.beta2) * pseudo_grad**2
        m_hat = self._m / (1.0 - self.beta1**self._t)
        v_hat = self._v / (1.0 - self.beta2**self._t)
        return params - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
