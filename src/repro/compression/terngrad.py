"""TernGrad ternary quantisation (Wen et al., NeurIPS 2017).

Each coordinate is quantised to {-1, 0, +1} times the vector's max
magnitude, with stochastic rounding keeping the estimator unbiased.
Cited by the paper as the other quantisation baseline ([13]).
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedGradient, Compressor
from repro.wire.codecs import predicted_payload_nbytes

__all__ = ["TernGradCompressor"]


class TernGradCompressor(Compressor):
    """Unbiased ternary quantiser: 2 bits per element plus one scale."""

    name = "terngrad"

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__(dim)
        # Same contract as QSGD: stochastic rounding never invents its
        # own seed — callers pass a kernel stream (or an explicit
        # generator in tests/benchmarks).
        if rng is None:
            raise ValueError(
                "TernGradCompressor requires an explicit rng; derive it "
                "from kernel.stream(...) in engine code"
            )
        self._rng = rng

    def compress(self, grad: np.ndarray) -> CompressedGradient:
        grad = self._check_grad(grad)
        # The scale travels as a float32 on the wire; rounding it before
        # drawing the keep mask keeps frame round-trips bit-exact.
        scale = float(np.float32(np.max(np.abs(grad)))) if grad.size else 0.0
        if scale == 0.0:
            ternary = np.zeros(self.dim, dtype=np.int8)
        else:
            prob = np.abs(grad) / scale
            keep = self._rng.random(self.dim) < prob
            ternary = (np.sign(grad) * keep).astype(np.int8)
        data = {"scale": scale, "ternary": ternary}
        return CompressedGradient(
            method=self.name,
            dim=self.dim,
            num_bytes=predicted_payload_nbytes(self.name, self.dim, data),
            data=data,
        )

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        if payload.method != self.name:
            raise ValueError(f"payload method {payload.method!r} is not {self.name!r}")
        return payload.data["ternary"].astype(np.float64) * payload.data["scale"]
