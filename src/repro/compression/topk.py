"""Plain top-k magnitude sparsification (no error feedback).

This is the memoryless ancestor of DGC: keep the ``k`` largest-
magnitude coordinates, drop the rest.  Used as an ablation baseline to
show why DGC's residual accumulation matters.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedGradient, Compressor
from repro.wire.codecs import predicted_payload_nbytes

__all__ = ["topk_indices", "TopKCompressor"]


def topk_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries (deterministic).

    ``argpartition`` (introselect) is deterministic for identical
    inputs, so repeated calls on equal arrays — ties included — select
    identical support sets.  Returned indices are sorted ascending.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if k >= values.size:
        return np.arange(values.size, dtype=np.intp)
    # argpartition gets the top-k set in O(d); only the index sort is
    # needed on top — any further ordering of the k selected entries
    # by magnitude would be discarded by it anyway.
    part = np.argpartition(-np.abs(values), k - 1)[:k]
    return np.sort(part)


class TopKCompressor(Compressor):
    """Keep a fixed fraction of coordinates by magnitude."""

    name = "topk"

    def __init__(self, dim: int, ratio: float):
        """``ratio`` is the compression ratio: keep ``d / ratio`` entries."""
        super().__init__(dim)
        if ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")
        self.ratio = ratio

    @property
    def k(self) -> int:
        """Number of retained coordinates (always at least 1)."""
        return max(1, int(round(self.dim / self.ratio)))

    def compress(self, grad: np.ndarray) -> CompressedGradient:
        grad = self._check_grad(grad)
        idx = topk_indices(grad, self.k)
        data = {
            "indices": idx.astype(np.uint32),
            "values": grad[idx].astype(np.float32),
        }
        return CompressedGradient(
            method=self.name,
            dim=self.dim,
            num_bytes=predicted_payload_nbytes(self.name, self.dim, data),
            data=data,
        )

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        if payload.method != self.name:
            raise ValueError(f"payload method {payload.method!r} is not {self.name!r}")
        dense = np.zeros(payload.dim, dtype=np.float64)
        # reprolint: allow[R403] sparse decompression is a scatter by design
        dense[payload.data["indices"].astype(np.int64)] = payload.data["values"]
        return dense
