"""Gradient compression substrate: DGC, top-k, QSGD, TernGrad."""

from repro.compression.base import (
    FLOAT_BYTES,
    INDEX_BYTES,
    CompressedGradient,
    Compressor,
    dense_bytes,
    quantized_bytes,
    sparse_bytes,
    sparse_payload_bytes,
)
from repro.compression.dgc import DGCCompressor
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.identity import NoCompression
from repro.compression.qsgd import QSGDCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.topk import TopKCompressor, topk_indices

__all__ = [
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "CompressedGradient",
    "Compressor",
    "dense_bytes",
    "sparse_bytes",
    "sparse_payload_bytes",
    "quantized_bytes",
    "NoCompression",
    "TopKCompressor",
    "topk_indices",
    "DGCCompressor",
    "ErrorFeedback",
    "QSGDCompressor",
    "TernGradCompressor",
]
