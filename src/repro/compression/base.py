"""Compressor interface and payload byte accounting.

Every compressor turns a flat gradient vector into a
:class:`CompressedGradient` carrying both the information needed to
reconstruct a dense vector and an honest *wire size* in bytes.  Byte
accounting is how the reproduction measures the paper's headline
metric (60–78% communication-cost reduction), so the size models are
kept explicit and conservative:

* dense float32 payload: ``4 * d`` bytes (this matches the paper's
  1.64 MB figure for the ~430k-parameter CNN);
* sparse payload: the cheapest of COO (``8 * k`` bytes), bitmap
  (``d/8 + 4 * k`` bytes), and dense — see
  :func:`sparse_payload_bytes`;
* quantised payload: ``ceil(d * bits / 8)`` plus one float32 scale per
  tensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "dense_bytes",
    "sparse_bytes",
    "sparse_payload_bytes",
    "quantized_bytes",
    "CompressedGradient",
    "Compressor",
]

FLOAT_BYTES = 4  # gradients travel as float32 on the wire
INDEX_BYTES = 4  # uint32 coordinate indices


def dense_bytes(dim: int) -> int:
    """Wire size of an uncompressed float32 gradient."""
    if dim < 0:
        raise ValueError("dim must be non-negative")
    return FLOAT_BYTES * dim


def sparse_bytes(nnz: int) -> int:
    """Wire size of a COO sparse gradient with ``nnz`` retained entries."""
    if nnz < 0:
        raise ValueError("nnz must be non-negative")
    return (FLOAT_BYTES + INDEX_BYTES) * nnz


def sparse_payload_bytes(dim: int, nnz: int) -> int:
    """Wire size of the cheapest encoding for a sparse gradient.

    A sender picks whichever of three encodings is smallest:
    COO (4-byte index + 4-byte value per entry), bitmap (one bit per
    coordinate plus packed values), or plain dense.  This matters at
    low compression ratios, where COO would exceed the dense size.
    """
    if dim < 0 or nnz < 0 or nnz > dim:
        raise ValueError("need 0 <= nnz <= dim")
    coo = sparse_bytes(nnz)
    bitmap = FLOAT_BYTES * nnz + math.ceil(dim / 8.0)
    return min(coo, bitmap, dense_bytes(dim))


def quantized_bytes(dim: int, bits: float, num_scales: int = 1) -> int:
    """Wire size of a ``bits``-per-element quantised gradient."""
    if dim < 0 or bits <= 0 or num_scales < 0:
        raise ValueError("invalid quantisation size parameters")
    return math.ceil(dim * bits / 8.0) + FLOAT_BYTES * num_scales


@dataclass
class CompressedGradient:
    """A gradient as it would travel on the wire."""

    method: str
    dim: int
    num_bytes: int
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dim < 0 or self.num_bytes < 0:
            raise ValueError("dim and num_bytes must be non-negative")

    @property
    def compression_ratio(self) -> float:
        """Dense size divided by wire size (>= 1 means smaller)."""
        if self.num_bytes == 0:
            return float("inf")
        return dense_bytes(self.dim) / self.num_bytes


class Compressor:
    """Base class for gradient compressors.

    Stateful compressors (e.g. DGC residual accumulation) keep
    per-instance state, so federated engines create one compressor per
    client.
    """

    name = "base"

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim

    def compress(self, grad: np.ndarray) -> CompressedGradient:
        raise NotImplementedError

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (default: stateless no-op)."""

    def _check_grad(self, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.ndim != 1 or grad.size != self.dim:
            raise ValueError(
                f"expected flat gradient of size {self.dim}, got shape {grad.shape}"
            )
        return grad

    def roundtrip(self, grad: np.ndarray) -> tuple[np.ndarray, CompressedGradient]:
        """Compress then decompress; convenience for tests/metrics."""
        payload = self.compress(grad)
        return self.decompress(payload), payload
