"""Compressor interface and payload byte accounting.

Every compressor turns a flat gradient vector into a
:class:`CompressedGradient` carrying both the information needed to
reconstruct a dense vector and an honest *wire size* in bytes.  Byte
accounting is how the reproduction measures the paper's headline
metric (60–78% communication-cost reduction).  The size models live in
:mod:`repro.wire.sizes` next to the frame codecs whose encoded lengths
they predict exactly (and are re-exported here for compatibility);
:meth:`CompressedGradient.to_frame` /
:meth:`CompressedGradient.from_frame` are the bridge between a payload
dict and its :class:`~repro.wire.frame.Frame` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.wire.codecs import decode_frame, encode_frame
from repro.wire.frame import Frame
from repro.wire.sizes import (
    FLOAT_BYTES,
    INDEX_BYTES,
    dense_bytes,
    quantized_bytes,
    sparse_bytes,
    sparse_payload_bytes,
)

__all__ = [
    "FLOAT_BYTES",
    "INDEX_BYTES",
    "dense_bytes",
    "sparse_bytes",
    "sparse_payload_bytes",
    "quantized_bytes",
    "CompressedGradient",
    "Compressor",
]


@dataclass
class CompressedGradient:
    """A gradient as it would travel on the wire."""

    method: str
    dim: int
    num_bytes: int
    data: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dim < 0 or self.num_bytes < 0:
            raise ValueError("dim and num_bytes must be non-negative")

    @property
    def compression_ratio(self) -> float:
        """Dense size divided by wire size (>= 1 means smaller)."""
        if self.num_bytes == 0:
            return float("inf")
        return dense_bytes(self.dim) / self.num_bytes

    def to_frame(self, model_version: int = 0) -> Frame:
        """Encode this payload into a wire frame.

        The frame's payload length always equals :attr:`num_bytes` —
        the analytic sizes are predictions of real encode lengths, and
        the tier-1 codec tests pin the two together.
        """
        return encode_frame(self.method, self.dim, self.data, model_version)

    @classmethod
    def from_frame(cls, frame: Frame) -> "CompressedGradient":
        """Rebuild a payload from a (CRC-verified) frame.

        Transport metadata that never travels (e.g. DGC's ``ratio``
        hint) is absent from the result; the decompressed dense vector
        is bit-identical to the sender's.
        """
        method, data = decode_frame(frame)
        return cls(
            method=method,
            dim=frame.dim,
            num_bytes=frame.payload_nbytes,
            data=data,
        )


class Compressor:
    """Base class for gradient compressors.

    Stateful compressors (e.g. DGC residual accumulation) keep
    per-instance state, so federated engines create one compressor per
    client.
    """

    name = "base"

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim

    def compress(self, grad: np.ndarray) -> CompressedGradient:
        raise NotImplementedError

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (default: stateless no-op)."""

    def export_state(self) -> dict:
        """Accumulated state for eviction/spill (default: stateless).

        The dict must round-trip through :meth:`import_state` on a
        freshly built compressor of the same configuration and must
        carry a ``"kind"`` tag naming the compressor family.
        """
        return {"kind": "stateless"}

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output (default: stateless)."""
        if state.get("kind") != "stateless":
            raise ValueError(f"cannot import state kind {state.get('kind')!r}")

    def state_nbytes(self) -> int:
        """Bytes of accumulated state (population RSS accounting)."""
        return 0

    def _check_grad(self, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.ndim != 1 or grad.size != self.dim:
            raise ValueError(
                f"expected flat gradient of size {self.dim}, got shape {grad.shape}"
            )
        return grad

    def roundtrip(self, grad: np.ndarray) -> tuple[np.ndarray, CompressedGradient]:
        """Compress then decompress; convenience for tests/metrics."""
        payload = self.compress(grad)
        return self.decompress(payload), payload
