"""Generic error-feedback (EF) wrapper for any compressor.

DGC builds residual accumulation into its algorithm; EF-SGD (Karimireddy
et al., 2019) showed the same trick — keep the quantisation error and
add it to the next gradient — repairs the convergence of *any* biased
compressor.  :class:`ErrorFeedback` wraps a stateless compressor
(top-k, QSGD, TernGrad, ...) with that memory, which the ablation
benches use to separate "compression" from "compression + memory".
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedGradient, Compressor

__all__ = ["ErrorFeedback"]


class ErrorFeedback(Compressor):
    """Wraps ``inner`` with residual error accumulation."""

    def __init__(self, inner: Compressor):
        super().__init__(inner.dim)
        self.inner = inner
        self.name = f"ef({inner.name})"
        self._residual = np.zeros(inner.dim, dtype=np.float64)

    def compress(self, grad: np.ndarray) -> CompressedGradient:
        grad = self._check_grad(grad)
        corrected = grad + self._residual
        payload = self.inner.compress(corrected)
        transmitted = self.inner.decompress(payload)
        self._residual = corrected - transmitted
        return payload

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        return self.inner.decompress(payload)

    def reset(self) -> None:
        self._residual.fill(0.0)
        self.inner.reset()

    def export_state(self) -> dict:
        """Error memory plus the wrapped compressor's state."""
        return {
            "kind": "ef",
            "dim": self.dim,
            "residual": self._residual,
            "inner": self.inner.export_state(),
        }

    def import_state(self, state: dict) -> None:
        """Adopt exported error memory (copied in) and inner state."""
        if state.get("kind") != "ef":
            raise ValueError(f"cannot import state kind {state.get('kind')!r}")
        if int(state["dim"]) != self.dim:
            raise ValueError("exported state dimensionality mismatch")
        self._residual = np.array(state["residual"], dtype=np.float64)
        self.inner.import_state(state["inner"])

    def state_nbytes(self) -> int:
        """Bytes of the error memory plus inner compressor state."""
        return self._residual.nbytes + self.inner.state_nbytes()

    @property
    def residual_norm(self) -> float:
        """L2 norm of the accumulated compression error."""
        return float(np.linalg.norm(self._residual))
