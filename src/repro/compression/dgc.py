"""Deep Gradient Compression (Lin et al., ICLR 2018).

DGC is the compression engine AdaFL builds on (paper §IV, "Adaptive
Gradient Compression").  Its four ingredients, all implemented here:

1. **Top-k sparsification** — only the largest-magnitude accumulated
   gradient coordinates are transmitted.
2. **Residual (error) accumulation** — untransmitted coordinates stay
   in a local buffer and keep growing until they matter.
3. **Momentum correction** — the residual accumulates *momentum-
   corrected* gradients (a local momentum buffer) rather than raw
   gradients, so sparse updates approximate what dense momentum SGD
   would have applied.
4. **Local gradient clipping** — the incoming gradient's norm is
   clipped *before* accumulation (scaled by ``1/sqrt(num_workers)``
   per the DGC paper) to keep high compression from destabilising
   training.

Unlike the static DGC paper, AdaFL changes the compression ratio every
round, so :meth:`DGCCompressor.compress` takes an optional per-call
``ratio`` override — the hook the adaptive policy in
:mod:`repro.core.compression_policy` drives.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedGradient, Compressor
from repro.compression.topk import topk_indices
from repro.wire.codecs import predicted_payload_nbytes

__all__ = ["DGCCompressor"]


class DGCCompressor(Compressor):
    """Stateful DGC compressor for one client."""

    name = "dgc"

    def __init__(
        self,
        dim: int,
        ratio: float = 100.0,
        momentum: float = 0.9,
        clip_norm: float | None = 5.0,
        num_workers: int = 1,
        use_momentum_correction: bool = True,
    ):
        super().__init__(dim)
        if ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive or None")
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.ratio = ratio
        self.momentum = momentum
        self.clip_norm = clip_norm
        self.num_workers = num_workers
        self.use_momentum_correction = use_momentum_correction
        self._velocity = np.zeros(dim, dtype=np.float64)  # u_t in the DGC paper
        self._residual = np.zeros(dim, dtype=np.float64)  # v_t in the DGC paper

    # ------------------------------------------------------------------
    def _clip(self, grad: np.ndarray) -> np.ndarray:
        """Local gradient clipping scaled for ``num_workers`` (DGC §3.3)."""
        if self.clip_norm is None:
            return grad
        threshold = self.clip_norm / np.sqrt(self.num_workers)
        norm = float(np.linalg.norm(grad))
        if norm > threshold:
            return grad * (threshold / norm)
        return grad

    def compress(
        self, grad: np.ndarray, ratio: float | None = None
    ) -> CompressedGradient:
        """Accumulate ``grad`` and emit the top coordinates.

        ``ratio`` overrides the instance ratio for this call — the
        entry point for AdaFL's adaptive schedule.
        """
        grad = self._check_grad(grad)
        effective_ratio = self.ratio if ratio is None else float(ratio)
        if effective_ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")

        grad = self._clip(grad)
        if self.use_momentum_correction:
            self._velocity = self.momentum * self._velocity + grad
            self._residual += self._velocity
        else:
            self._residual += grad

        k = max(1, int(round(self.dim / effective_ratio)))
        idx = topk_indices(self._residual, k)
        # One gather straight into the float32 wire payload: fancy
        # indexing + astype already yield an array independent of the
        # residual buffer, so payload mutation can never corrupt
        # compressor state.
        values = self._residual[idx].astype(np.float32)

        # Transmitted coordinates leave both buffers (DGC Algorithm 1).
        self._residual[idx] = 0.0
        if self.use_momentum_correction:
            self._velocity[idx] = 0.0

        data = {
            "indices": idx.astype(np.uint32),
            "values": values,
            "ratio": effective_ratio,
        }
        return CompressedGradient(
            method=self.name,
            dim=self.dim,
            num_bytes=predicted_payload_nbytes(self.name, self.dim, data),
            data=data,
        )

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        if payload.method != self.name:
            raise ValueError(f"payload method {payload.method!r} is not {self.name!r}")
        dense = np.zeros(payload.dim, dtype=np.float64)
        # reprolint: allow[R403] sparse decompression is a scatter by design
        dense[payload.data["indices"].astype(np.int64)] = payload.data["values"]
        return dense

    def restore(self, payload: CompressedGradient) -> None:
        """Return a lost payload's values to the residual buffer.

        ``compress`` clears transmitted coordinates optimistically; a
        deployment only discards them once the server ACKs.  When the
        engine learns a transfer was lost it calls this, so the
        accumulated gradient information survives the loss instead of
        vanishing with the packet.
        """
        if payload.method != self.name:
            raise ValueError(f"payload method {payload.method!r} is not {self.name!r}")
        if payload.dim != self.dim:
            raise ValueError("payload dimensionality mismatch")
        idx = payload.data["indices"].astype(np.int64)
        # reprolint: allow[R403] loss recovery scatter-adds the k lost coords
        self._residual[idx] += payload.data["values"].astype(np.float64)

    def reset(self) -> None:
        """Drop residual and momentum state (e.g. after a model resync)."""
        self._velocity.fill(0.0)
        self._residual.fill(0.0)

    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Residual/momentum buffers plus the config to rebuild from.

        The hook the client-population eviction machinery uses: an
        evicted client's accumulated gradient information is spilled or
        retained through this dict and later restored bit-exactly via
        :meth:`import_state` (or :meth:`from_state` when no compressor
        was re-attached by a materialization hook).
        """
        return {
            "kind": "dgc",
            "dim": self.dim,
            "ratio": self.ratio,
            "momentum": self.momentum,
            "clip_norm": self.clip_norm,
            "num_workers": self.num_workers,
            "use_momentum_correction": self.use_momentum_correction,
            "velocity": self._velocity,
            "residual": self._residual,
        }

    def import_state(self, state: dict) -> None:
        """Adopt exported residual/momentum buffers (copied in)."""
        if state.get("kind") != "dgc":
            raise ValueError(f"cannot import state kind {state.get('kind')!r}")
        if int(state["dim"]) != self.dim:
            raise ValueError("exported state dimensionality mismatch")
        self._velocity = np.array(state["velocity"], dtype=np.float64)
        self._residual = np.array(state["residual"], dtype=np.float64)

    @classmethod
    def from_state(cls, state: dict) -> "DGCCompressor":
        """Rebuild a compressor entirely from :meth:`export_state` output."""
        comp = cls(
            dim=int(state["dim"]),
            ratio=float(state["ratio"]),
            momentum=float(state["momentum"]),
            clip_norm=state["clip_norm"],
            num_workers=int(state["num_workers"]),
            use_momentum_correction=bool(state["use_momentum_correction"]),
        )
        comp.import_state(state)
        return comp

    def state_nbytes(self) -> int:
        """Bytes of residual + momentum buffers (RSS accounting)."""
        return self._velocity.nbytes + self._residual.nbytes

    @property
    def residual_norm(self) -> float:
        """L2 norm of untransmitted accumulated gradient (diagnostics)."""
        return float(np.linalg.norm(self._residual))
