"""No-op compressor: dense float32 on the wire (the baselines' setting)."""

from __future__ import annotations

import numpy as np

from repro.compression.base import CompressedGradient, Compressor
from repro.wire.codecs import predicted_payload_nbytes

__all__ = ["NoCompression"]


class NoCompression(Compressor):
    """Sends the full gradient; exists so byte accounting is uniform."""

    name = "none"

    def compress(self, grad: np.ndarray) -> CompressedGradient:
        grad = self._check_grad(grad)
        data = {"values": grad.astype(np.float32)}
        return CompressedGradient(
            method=self.name,
            dim=self.dim,
            num_bytes=predicted_payload_nbytes(self.name, self.dim, data),
            data=data,
        )

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        if payload.method != self.name:
            raise ValueError(f"payload method {payload.method!r} is not {self.name!r}")
        return payload.data["values"].astype(np.float64)
