"""QSGD stochastic quantisation (Alistarh et al., NeurIPS 2017).

Quantises each coordinate to one of ``s`` uniform levels of its
vector's L2 norm, with stochastic rounding that keeps the estimator
unbiased.  Serves as the model-level quantisation baseline the paper
cites ([11]).
"""

from __future__ import annotations

import math

import numpy as np

from repro.compression.base import CompressedGradient, Compressor
from repro.wire.codecs import predicted_payload_nbytes

__all__ = ["QSGDCompressor"]


class QSGDCompressor(Compressor):
    """Unbiased stochastic uniform quantiser."""

    name = "qsgd"

    def __init__(self, dim: int, num_levels: int = 16, rng: np.random.Generator | None = None):
        super().__init__(dim)
        if num_levels < 1:
            raise ValueError("num_levels must be >= 1")
        self.num_levels = num_levels
        # Stochastic rounding needs an explicit generator: engine-side
        # callers pass a named kernel stream so two identical runs stay
        # bit-identical.  A silent default_rng() here would decouple a
        # client's rounding noise from the run's seed.
        if rng is None:
            raise ValueError(
                "QSGDCompressor requires an explicit rng; derive it from "
                "kernel.stream(...) in engine code"
            )
        self._rng = rng

    @property
    def bits_per_element(self) -> float:
        """Sign bit plus level bits (no entropy coding)."""
        return 1.0 + math.ceil(math.log2(self.num_levels + 1))

    def compress(
        self, grad: np.ndarray, num_levels: int | None = None
    ) -> CompressedGradient:
        """Quantise ``grad``; ``num_levels`` overrides the default per call.

        The per-call override is what link-quality-driven bit-width
        policies (AdaGQ) use: one compressor per client, with the level
        count varied round by round.  The effective count travels in
        the payload, so :meth:`decompress` never consults compressor
        state.
        """
        grad = self._check_grad(grad)
        effective_levels = self.num_levels if num_levels is None else int(num_levels)
        if effective_levels < 1:
            raise ValueError("num_levels must be >= 1")
        # The norm travels as a float32 scale on the wire; rounding it
        # *before* quantising keeps frame round-trips bit-exact.
        norm = float(np.float32(np.linalg.norm(grad)))
        if norm == 0.0:
            levels = np.zeros(self.dim, dtype=np.int32)
            signs = np.ones(self.dim, dtype=np.int8)
        else:
            scaled = np.abs(grad) / norm * effective_levels
            floor = np.floor(scaled)
            prob = scaled - floor
            levels = (floor + (self._rng.random(self.dim) < prob)).astype(np.int32)
            # float32 norm rounding can nudge the dominant coordinate a
            # hair past 1.0 of the norm; its level stays representable.
            np.minimum(levels, effective_levels, out=levels)
            signs = np.where(grad < 0, -1, 1).astype(np.int8)
        data = {
            "norm": norm,
            "levels": levels,
            "signs": signs,
            "num_levels": effective_levels,
        }
        return CompressedGradient(
            method=self.name,
            dim=self.dim,
            num_bytes=predicted_payload_nbytes(self.name, self.dim, data),
            data=data,
        )

    def decompress(self, payload: CompressedGradient) -> np.ndarray:
        if payload.method != self.name:
            raise ValueError(f"payload method {payload.method!r} is not {self.name!r}")
        norm = payload.data["norm"]
        if norm == 0.0:
            return np.zeros(payload.dim, dtype=np.float64)
        # The payload carries its own level count (set per call by
        # adaptive-bit-width policies); the constructor default is only
        # a fallback for legacy payload dicts.
        num_levels = int(payload.data.get("num_levels", self.num_levels))
        levels = payload.data["levels"].astype(np.float64)
        signs = payload.data["signs"].astype(np.float64)
        return signs * levels * (norm / num_levels)
