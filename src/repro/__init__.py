"""AdaFL reproduction: resilient federated learning under constrained networks.

Reproduces "Resilient Federated Learning on Embedded Devices with
Constrained Network Connectivity" (DAC 2025) as a self-contained Python
library:

* :mod:`repro.nn` — numpy neural-network substrate (stands in for PyTorch);
* :mod:`repro.data` — synthetic datasets and IID/non-IID partitioners;
* :mod:`repro.network` — link models, bandwidth traces, event queue;
* :mod:`repro.compression` — DGC, top-k, QSGD, TernGrad;
* :mod:`repro.fl` — clients, server, sync/async engines, six baselines;
* :mod:`repro.core` — AdaFL itself (utility scores, Algorithm 1,
  adaptive compression);
* :mod:`repro.embedded` — device profiles and perf-style cycle accounting;
* :mod:`repro.experiments` — one runner per paper table/figure.

Quickstart::

    from repro.experiments import FederationSpec, FAST, run_sync
    from repro.experiments import default_adafl_config
    from repro.core import AdaFLSync

    spec = FederationSpec(dataset="mnist", model="mnist_cnn",
                          distribution="shard", scale=FAST)
    result = run_sync(spec, AdaFLSync(default_adafl_config(FAST)))
    print(result.final_accuracy, result.total_uploads)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
