"""The lint pass: load → rules → pragmas → baseline → result.

:func:`run_lint` is the single entry point the CLI, the gate script,
the benchmark section, and the tests all share.  Exit-code policy
(applied by callers via :func:`exit_code`):

* ``0`` — clean: no actionable violations and no stale baseline;
* ``1`` — violations (or stale baseline entries, which mean the
  baseline no longer reflects reality);
* ``2`` — the pass itself failed (unreadable file, syntax error,
  broken baseline) — distinct so CI can tell "code is dirty" from
  "linter is broken".
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401 - populates registry
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.config import LintConfig, default_config
from repro.analysis.core import LintResult, Violation, is_allowed, iter_rules
from repro.analysis.project import Project
from repro.analysis.rules.api import annotation_coverage

__all__ = ["run_lint", "lint_project", "exit_code"]

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def lint_project(
    project: Project,
    select: list[str] | None = None,
    baseline_entries: list[dict] | None = None,
    only_paths: set[str] | None = None,
) -> LintResult:
    """Run the (selected) rules over an already-loaded project.

    ``only_paths`` restricts *reported* findings to those repo-relative
    paths (incremental ``--diff`` mode); project rules still see the
    whole project, so cross-file invariants hold globally.
    """
    config = project.config
    raw: list[Violation] = []
    rules_run: list[str] = []
    for rule in iter_rules(select):
        rules_run.append(rule.id)
        if rule.scope == "project":
            raw.extend(rule.check_project(project))
        else:
            for source in project.files:
                if only_paths is not None and source.rel not in only_paths:
                    continue
                raw.extend(rule.check_file(source, project))
    if only_paths is not None:
        raw = [v for v in raw if v.path in only_paths]

    # Pragmas silence in-code; order them out before baseline matching
    # so a pragma'd line never consumes a baseline entry.
    kept: list[Violation] = []
    pragma_suppressed = 0
    by_rel = {f.rel: f for f in project.files}
    for violation in raw:
        source = by_rel.get(violation.path)
        if source is not None and is_allowed(
            source.pragmas, violation.line, violation.rule
        ):
            pragma_suppressed += 1
        else:
            kept.append(violation)

    fresh, baselined, stale = apply_baseline(kept, baseline_entries or [])
    fresh.sort(key=lambda v: (v.path, v.line, v.rule))
    baselined.sort(key=lambda v: (v.path, v.line, v.rule))

    metrics = {
        "annotation_coverage": annotation_coverage(project),
        "violations_by_rule": _count_by_rule(fresh),
        "config_package": config.package,
    }
    files_checked = (
        len(project)
        if only_paths is None
        else sum(1 for f in project.files if f.rel in only_paths)
    )
    return LintResult(
        violations=fresh,
        baselined=baselined,
        pragma_suppressed=pragma_suppressed,
        stale_baseline=stale,
        files_checked=files_checked,
        rules_run=rules_run,
        metrics=metrics,
    )


def _count_by_rule(violations: list[Violation]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return dict(sorted(counts.items()))


def run_lint(
    paths: list[Path],
    src_root: Path,
    config: LintConfig | None = None,
    select: list[str] | None = None,
    baseline_path: Path | None = None,
) -> LintResult:
    """Load ``paths`` and lint them; the one-call entry point."""
    config = config if config is not None else default_config()
    project = Project.load(paths, src_root=src_root, config=config)
    entries = load_baseline(baseline_path) if baseline_path is not None else []
    return lint_project(project, select=select, baseline_entries=entries)


def exit_code(result: LintResult) -> int:
    """Map a result onto the stable exit-code contract."""
    return EXIT_CLEAN if result.clean else EXIT_VIOLATIONS
