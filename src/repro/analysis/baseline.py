"""Checked-in lint baseline: grandfathered violations, one per entry.

The baseline exists so a new rule can land before every historical
violation is fixed — but the shipped repo keeps it **empty** for
``src/``: the rules were calibrated against the code and the real
violations they surfaced were fixed, not parked.  The file stays in
the tree (``LINT_baseline.json``) so the workflow is ready the day a
rule tightens:

1. ``python scripts/check_lint.py --update-baseline`` snapshots the
   current violations;
2. burn entries down over subsequent PRs;
3. a baseline entry that no longer matches anything is *stale* and
   fails the gate — baselines only shrink.

Entries match on ``(path, rule, snippet)`` — the violation's
:attr:`~repro.analysis.core.Violation.fingerprint` — so edits that
merely shift line numbers do not churn the file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.core import Violation

__all__ = ["load_baseline", "save_baseline", "apply_baseline", "BASELINE_SCHEMA"]

BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> list[dict]:
    """Read suppression entries; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {data.get('schema')!r} in {path}"
        )
    entries = data.get("suppressions", [])
    for entry in entries:
        if not {"path", "rule", "snippet"} <= set(entry):
            raise ValueError(f"malformed baseline entry in {path}: {entry}")
    return entries


def save_baseline(path: Path, violations: list[Violation]) -> None:
    """Write the violations as the new baseline (sorted, deterministic)."""
    entries = sorted(
        (
            {"path": v.path, "rule": v.rule, "snippet": v.snippet}
            for v in violations
        ),
        key=lambda e: (e["path"], e["rule"], e["snippet"]),
    )
    payload = {"schema": BASELINE_SCHEMA, "suppressions": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    violations: list[Violation], entries: list[dict]
) -> tuple[list[Violation], list[Violation], list[dict]]:
    """Split violations into (fresh, baselined) and find stale entries.

    Matching is multiset-aware: an entry suppresses as many identical
    violations as it appears times in the baseline, no more.
    """
    budget = Counter(
        (entry["path"], entry["rule"], entry["snippet"]) for entry in entries
    )
    fresh: list[Violation] = []
    baselined: list[Violation] = []
    for violation in violations:
        key = violation.fingerprint
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(violation)
        else:
            fresh.append(violation)
    stale = [
        {"path": path, "rule": rule, "snippet": snippet}
        for (path, rule, snippet), remaining in sorted(budget.items())
        for _ in range(remaining)
    ]
    return fresh, baselined, stale
