"""Incremental lint: ``repro lint --diff <git-ref>``.

Full repo-wide lint is cheap enough for CI but not for an edit loop;
this module narrows a pass to what a change can actually affect:

* the ``*.py`` files changed since a git ref (``git diff --name-only``),
* plus their transitive in-package importers — a changed module can
  break layering, taxonomy, or API invariants *in the files importing
  it*, so importers re-lint too;

and it keeps a content-hash parse cache so re-lints of a mostly
unchanged tree skip re-parsing (the dominant cost of a lint pass).
Project-scope rules still see the full project — cross-file
invariants are global — but findings are reported only for the
affected set, and baseline entries outside it are ignored rather than
reported stale.
"""

from __future__ import annotations

import ast
import hashlib
import subprocess  # reprolint: allow[R801] - drives git, not a transport
from pathlib import Path

from repro.analysis.baseline import load_baseline
from repro.analysis.config import (
    LintConfig,
    default_config,
    default_lint_paths,
    default_src_root,
)
from repro.analysis.core import LintResult, parse_pragmas
from repro.analysis.project import LintError, Project, SourceFile
from repro.analysis.runner import lint_project

__all__ = [
    "affected_rels",
    "changed_rels",
    "lint_diff",
    "load_project_cached",
    "parse_cache_stats",
]

_PARSE_CACHE: dict[tuple[str, str], SourceFile] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def parse_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the content-hash parse cache (for tests)."""
    return dict(_CACHE_STATS)


def _cached_source(path: Path, module: str, rel: str) -> SourceFile:
    """``SourceFile.from_path`` with a (rel, content-hash) memo."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    key = (rel, digest)
    cached = _PARSE_CACHE.get(key)
    if cached is not None and cached.module == module:
        _CACHE_STATS["hits"] += 1
        return cached
    _CACHE_STATS["misses"] += 1
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"syntax error in {path}: {exc}") from exc
    lines = text.splitlines()
    source = SourceFile(
        path=path,
        rel=rel,
        module=module,
        text=text,
        tree=tree,
        lines=lines,
        pragmas=parse_pragmas(lines),
    )
    _PARSE_CACHE[key] = source
    return source


def load_project_cached(
    paths: list[Path],
    src_root: Path,
    repo_root: Path | None = None,
    config: LintConfig | None = None,
) -> Project:
    """:meth:`Project.load` through the content-hash parse cache."""
    return Project.load(
        paths,
        src_root=src_root,
        repo_root=repo_root,
        config=config,
        loader=_cached_source,
    )


def changed_rels(ref: str, repo_root: Path) -> set[str]:
    """Repo-relative ``*.py`` paths changed since ``ref``.

    Includes uncommitted working-tree changes (plain ``git diff``
    semantics) — exactly what an edit loop wants to re-lint.
    """
    proc = subprocess.run(
        ["git", "diff", "--name-only", ref, "--", "*.py"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise LintError(
            f"git diff {ref!r} failed: {proc.stderr.strip() or 'unknown error'}"
        )
    return {line.strip() for line in proc.stdout.splitlines() if line.strip()}


def affected_rels(project: Project, changed: set[str]) -> set[str]:
    """``changed`` plus the rels of their transitive in-package importers."""
    graph = project.internal_import_graph(project.config.package)
    importers: dict[str, set[str]] = {}
    for edges in graph.values():
        for target, _edge, source in edges:
            importers.setdefault(target, set()).add(source.rel)
    rel_to_module = {f.rel: f.module for f in project.files}
    affected = {rel for rel in changed if rel in rel_to_module}
    frontier = [rel_to_module[rel] for rel in affected]
    while frontier:
        module = frontier.pop()
        for rel in importers.get(module, ()):
            if rel not in affected:
                affected.add(rel)
                frontier.append(rel_to_module[rel])
    return affected


def lint_diff(
    ref: str,
    paths: list[Path] | None = None,
    src_root: Path | None = None,
    config: LintConfig | None = None,
    select: list[str] | None = None,
    baseline_path: Path | None = None,
) -> LintResult:
    """Lint only what changed since ``ref`` (plus importers)."""
    config = config if config is not None else default_config()
    src_root = src_root if src_root is not None else default_src_root()
    repo_root = src_root.parent
    project = load_project_cached(
        paths if paths is not None else default_lint_paths(),
        src_root=src_root,
        repo_root=repo_root,
        config=config,
    )
    only = affected_rels(project, changed_rels(ref, repo_root))
    entries = load_baseline(baseline_path) if baseline_path is not None else []
    entries = [e for e in entries if e.get("path") in only]
    return lint_project(
        project, select=select, baseline_entries=entries, only_paths=only
    )
