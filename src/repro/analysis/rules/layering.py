"""R2: layering — the package DAG stays a DAG.

``repro.sim`` is deliberately FL-agnostic, the numeric substrate
(``nn``/``compression``/``data``) knows nothing about federation, and
the deprecated ``repro.network.events`` shim must not gain new
importers.  The allowed dependency table lives in
:data:`repro.analysis.config.ALLOWED_DEPS`.

* **R201** — a package imports one it may not depend on (checked for
  *all* imports, including function-local ones: deferring an import
  hides the cost, not the dependency);
* **R202** — a module-level import cycle inside the root package
  (strongly connected components of the top-level import graph;
  function-local imports are exempt because deferral is the sanctioned
  way to break a would-be cycle);
* **R203** — an import of a deprecated shim module outside the shim
  itself.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import ProjectRule, Violation, register_rule
from repro.analysis.project import Project

__all__ = ["PackageDagRule", "ImportCycleRule", "DeprecatedShimRule"]


def _package_of(module: str, root: str) -> str | None:
    """Second-level package of ``module`` under ``root`` (None if outside)."""
    parts = module.split(".")
    if parts[0] != root:
        return None
    return parts[1] if len(parts) > 1 else ""


@register_rule
class PackageDagRule(ProjectRule):
    """R201: only DAG-sanctioned cross-package imports."""

    id = "R201"
    summary = "cross-package import not in the allowed dependency DAG"

    def check_project(self, project: Project) -> Iterator[Violation]:
        config = project.config
        root = config.package
        for source in project.files:
            src_pkg = _package_of(source.module, root)
            if src_pkg is None or src_pkg == "":
                # Top-level modules (repro.cli, repro.__init__) and
                # out-of-package snippets may import anything.
                continue
            allowed = config.allowed_deps.get(src_pkg)
            if allowed is None:
                continue  # unknown package: DAG does not constrain it
            for edge in source.imports():
                dst_pkg = _package_of(edge.target, root)
                if dst_pkg in (None, "", src_pkg):
                    continue
                if dst_pkg not in allowed:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=edge.line,
                        message=f"package '{src_pkg}' must not import "
                        f"'{root}.{dst_pkg}' (allowed: "
                        f"{', '.join(sorted(allowed)) or 'none'})",
                        snippet=source.snippet(edge.line),
                    )


@register_rule
class ImportCycleRule(ProjectRule):
    """R202: no module-level import cycles."""

    id = "R202"
    summary = "module-level import cycle"

    def check_project(self, project: Project) -> Iterator[Violation]:
        root = project.config.package
        graph = project.internal_import_graph(root, toplevel_only=True)
        adjacency = {
            module: sorted({target for target, _, _ in edges})
            for module, edges in graph.items()
        }
        for cycle in _find_cycles(adjacency):
            head = cycle[0]
            source = project.by_module[head]
            # Report once, anchored on the first import edge that
            # participates in the cycle.
            nxt = cycle[1] if len(cycle) > 1 else cycle[0]
            line = next(
                (e.line for t, e, _ in graph.get(head, []) if t == nxt), 1
            )
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=line,
                message="import cycle: " + " -> ".join(cycle + [head]),
                snippet=source.snippet(line),
            )


def _cycle_path(component: list[str], adjacency: dict[str, list[str]]) -> list[str]:
    """An actual edge path realising the SCC's cycle, starting at its
    lexicographically smallest member (BFS: shortest such cycle)."""
    members = set(component)
    start = min(component)
    parents: dict[str, str] = {}
    frontier = [start]
    while frontier:
        nxt: list[str] = []
        for node in frontier:
            for child in adjacency.get(node, ()):
                if child == start:
                    path = [node]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                if child in members and child not in parents:
                    parents[child] = node
                    nxt.append(child)
        frontier = nxt
    return [start]  # self-loop


def _find_cycles(adjacency: dict[str, list[str]]) -> list[list[str]]:
    """Elementary cycles via SCC: one realised cycle per non-trivial SCC.

    Iterative Tarjan keeps the pass dependency-free and safe on deep
    graphs; each SCC is rendered as a genuine edge path found by
    :func:`_cycle_path`, making output deterministic and verifiable.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: dict[str, bool] = {}
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    for start in sorted(adjacency):
        if start in index:
            continue
        work = [(start, iter(adjacency.get(start, ())))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack[start] = True
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in adjacency.get(node, ()):
                    sccs.append(_cycle_path(component, adjacency))
    return sorted(sccs)


@register_rule
class DeprecatedShimRule(ProjectRule):
    """R203: deprecated shim modules must not gain importers."""

    id = "R203"
    summary = "import of a deprecated shim module"

    def check_project(self, project: Project) -> Iterator[Violation]:
        deprecated = project.config.deprecated_modules
        if not deprecated:
            return
        for source in project.files:
            for edge in source.imports():
                replacement = deprecated.get(edge.target)
                if replacement is None:
                    continue
                if source.module == edge.target:
                    continue  # the shim's own body / self-reference
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=edge.line,
                    message=f"'{edge.target}' is a deprecated shim; "
                    f"import '{replacement}' instead",
                    snippet=source.snippet(edge.line),
                )
