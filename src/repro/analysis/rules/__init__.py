"""Rule families — importing this package populates the registry.

Eight families ship with the repo:

* :mod:`repro.analysis.rules.determinism` — R1xx: no legacy global
  RNG or wall-clock reads outside the kernel's seeded streams;
* :mod:`repro.analysis.rules.layering` — R2xx: the package DAG, cycle
  freedom, and deprecated-shim imports;
* :mod:`repro.analysis.rules.taxonomy` — R3xx: the event/drop-reason
  taxonomy is closed and consumed consistently;
* :mod:`repro.analysis.rules.hotpath` — R4xx: allocation and copy
  discipline in benchmark-pinned hot paths;
* :mod:`repro.analysis.rules.api` — R5xx: ``__all__`` consistency,
  docstrings, and annotation coverage of the public surface;
* :mod:`repro.analysis.rules.wirebytes` — R6xx: byte accounting goes
  through the wire layer, not raw size formulas;
* :mod:`repro.analysis.rules.population` — R7xx: client lifecycle
  stays behind the population registry (no eager ``Client()``
  construction or full-population sweeps in engines/strategies);
* :mod:`repro.analysis.rules.transport` — R8xx: raw sockets and
  process spawning stay inside ``repro.transport``.
"""

from repro.analysis.rules import (
    api,
    determinism,
    hotpath,
    layering,
    population,
    taxonomy,
    transport,
    wirebytes,
)

__all__ = [
    "api",
    "determinism",
    "hotpath",
    "layering",
    "population",
    "taxonomy",
    "transport",
    "wirebytes",
]
