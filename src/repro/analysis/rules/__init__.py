"""Rule families — importing this package populates the registry.

Eleven families ship with the repo:

* :mod:`repro.analysis.rules.determinism` — R1xx: no legacy global
  RNG or wall-clock reads outside the kernel's seeded streams;
* :mod:`repro.analysis.rules.layering` — R2xx: the package DAG, cycle
  freedom, and deprecated-shim imports;
* :mod:`repro.analysis.rules.taxonomy` — R3xx: the event/drop-reason
  taxonomy is closed and consumed consistently;
* :mod:`repro.analysis.rules.hotpath` — R4xx: allocation and copy
  discipline in benchmark-pinned hot paths;
* :mod:`repro.analysis.rules.api` — R5xx: ``__all__`` consistency,
  docstrings, and annotation coverage of the public surface;
* :mod:`repro.analysis.rules.wirebytes` — R6xx: byte accounting goes
  through the wire layer, not raw size formulas;
* :mod:`repro.analysis.rules.population` — R7xx: client lifecycle
  stays behind the population registry (no eager ``Client()``
  construction or full-population sweeps in engines/strategies);
* :mod:`repro.analysis.rules.transport` — R8xx: raw sockets and
  process spawning stay inside ``repro.transport``.

The flow-sensitive families run on the CFG/dataflow engine
(:mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow`):

* :mod:`repro.analysis.rules.rngflow` — R9xx: RNG-stream discipline
  (no shared stream storage, no draws under a rebound key, one
  consumer per stream);
* :mod:`repro.analysis.rules.dtypeflow` — R10xx: dtype/promotion
  hygiene on hot paths (no silent float32→float64, no dtype=object
  escapes, no int×float ufunc copies);
* :mod:`repro.analysis.rules.lifecycle` — R11xx: resources release
  exactly once on every path, exception edges included, and
  destructive takes from shared state commit before raising.
"""

from repro.analysis.rules import (
    api,
    determinism,
    dtypeflow,
    hotpath,
    layering,
    lifecycle,
    population,
    rngflow,
    taxonomy,
    transport,
    wirebytes,
)

__all__ = [
    "api",
    "determinism",
    "dtypeflow",
    "hotpath",
    "layering",
    "lifecycle",
    "population",
    "rngflow",
    "taxonomy",
    "transport",
    "wirebytes",
]
