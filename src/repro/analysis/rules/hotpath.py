"""R4: allocation and copy discipline on benchmark-pinned hot paths.

The flat-parameter engine and the DGC compressor are zero-copy by
construction (PR 1) and the microbenchmark gate in
``BENCH_hotpath.json`` pins their timings.  The regressions that suite
catches *after the fact*, these rules catch at the line that
introduces them — but only inside the modules named in
:data:`repro.analysis.config.HOTPATH_MODULES`; elsewhere clarity beats
allocation golf.

* **R401** — array allocation (``np.zeros/ones/empty/full/arange``)
  without an explicit ``dtype``: the float64 default silently doubles
  payload widths and the int default is platform-dependent;
* **R402** — copy-inducing construct: ``np.concatenate`` /
  ``hstack`` / ``vstack`` / ``append`` / ``np.copy``, the ``.copy()``
  method, or ``.flatten()`` (which always copies — ``ravel`` /
  ``reshape(-1)`` return views when possible);
* **R403** — fancy-index assignment scattering an *array* RHS
  (``buf[idx] = values``): a gather/scatter that defeats
  vectorised-view updates.  Scalar fills (``buf[idx] = 0.0``) are
  cheap and exempt.

Intentional scatters (e.g. sparse decompression into a fresh buffer)
carry a ``# reprolint: allow[R403]`` pragma with a one-line
justification — the pragma is the documentation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = ["AllocDtypeRule", "CopyConstructRule", "FancyIndexAssignRule"]

_ALLOCATORS = frozenset({"zeros", "ones", "empty", "full", "arange"})
_COPY_FUNCS = frozenset({"concatenate", "hstack", "vstack", "append", "copy"})


def _is_hot(source: SourceFile, project: Project) -> bool:
    return source.module in project.config.hotpath_modules


def _numpy_call_name(node: ast.Call) -> str | None:
    """``np.X(...)`` / ``numpy.X(...)`` → ``X``."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


@register_rule
class AllocDtypeRule(FileRule):
    """R401: hot-path allocations must pin their dtype."""

    id = "R401"
    summary = "hot-path array allocation without explicit dtype"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not _is_hot(source, project):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _numpy_call_name(node)
            if name not in _ALLOCATORS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.full/arange may pass dtype positionally in rare forms;
            # be conservative and only accept the keyword spelling.
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=f"np.{name} without dtype= on a hot path; the "
                "default dtype is implicit and platform/input dependent",
                snippet=source.snippet(node.lineno),
            )


@register_rule
class CopyConstructRule(FileRule):
    """R402: no copy-inducing constructs on hot paths."""

    id = "R402"
    summary = "hot-path copy-inducing construct (concatenate/.copy()/.flatten())"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not _is_hot(source, project):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _numpy_call_name(node)
            label: str | None = None
            if name in _COPY_FUNCS:
                label = f"np.{name}"
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "copy",
                "flatten",
            ):
                recv = node.func.value
                # dict snapshots in pickling plumbing are not ndarray
                # copies; ``self.__dict__.copy()`` is idiomatic there.
                if isinstance(recv, ast.Attribute) and recv.attr == "__dict__":
                    continue
                label = f".{node.func.attr}()"
            if label is None:
                continue
            hint = (
                "prefer ravel()/reshape(-1) (views)"
                if label.endswith("flatten()")
                else "preallocate/views instead"
            )
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=f"{label} copies on a hot path; {hint}",
                snippet=source.snippet(node.lineno),
            )


def _is_scalar_rhs(node: ast.expr) -> bool:
    """Constants and signed constants — fills, not scatters."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        return True
    return False


def _is_fancy_index(node: ast.expr) -> bool:
    """An index expression that triggers numpy advanced indexing."""
    if isinstance(node, (ast.Slice, ast.Constant)):
        return False
    if isinstance(node, ast.Tuple):
        # A slice anywhere in the tuple means strided window assignment
        # (``cols[:, :, i, j, :, :] = ...`` with scalar loop indices) —
        # basic indexing, not a gather/scatter.
        if any(isinstance(element, ast.Slice) for element in node.elts):
            return False
        return any(_is_fancy_index(element) for element in node.elts)
    # Names, calls, attributes, lists, comparisons (boolean masks) all
    # potentially select with an index array.
    return isinstance(
        node, (ast.Name, ast.Call, ast.Attribute, ast.List, ast.Compare, ast.BinOp)
    )


@register_rule
class FancyIndexAssignRule(FileRule):
    """R403: no array-valued fancy-index scatter on hot paths."""

    id = "R403"
    summary = "hot-path fancy-index assignment with an array RHS"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not _is_hot(source, project):
            return
        for node in ast.walk(source.tree):
            targets: list[ast.expr]
            value: ast.expr
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            else:
                continue
            if _is_scalar_rhs(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                if _is_fancy_index(target.slice):
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=node.lineno,
                        message="fancy-index scatter of an array on a hot "
                        "path; if the gather/scatter is intentional, "
                        "justify it with a reprolint pragma",
                        snippet=source.snippet(node.lineno),
                    )
