"""R1: determinism — all randomness flows through seeded streams.

Bit-identical trajectories (the property the equivalence suites pin)
require every stochastic draw to come from an explicitly seeded
``numpy.random.Generator`` — in engine code, one derived from
:class:`repro.sim.kernel.SimKernel` streams.  Three things break that
silently:

* **R101** — the legacy ``numpy.random`` module-level API
  (``np.random.rand``, ``np.random.seed``, …) which draws from hidden
  global state;
* **R102** — the stdlib :mod:`random` module, same problem;
* **R103** — wall-clock reads (``time.time``, ``datetime.now``, …),
  which leak host time into simulated behaviour.

Constructing generators is fine: ``np.random.default_rng(seed)``,
``np.random.Generator``, ``np.random.SeedSequence`` and the bit
generators are the *sanctioned* API and are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = [
    "LegacyNumpyRandomRule",
    "StdlibRandomRule",
    "WallClockRule",
    "ALLOWED_NP_RANDOM",
]

# Names on numpy.random that construct/seed explicit generators rather
# than drawing from the hidden global RandomState.
ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # a *type* reference; instantiation is caught as a call
    }
)

_BANNED_TIME_ATTRS = frozenset({"time", "time_ns"})
_BANNED_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _numpy_random_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the ``numpy.random`` module in this file."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy.random":
                    aliases.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names bound to top-level module ``module`` (``import time as t``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
    return aliases


def _np_random_attr(node: ast.Attribute, np_random_names: set[str]) -> str | None:
    """If ``node`` reads ``<numpy.random>.<name>``, return ``name``."""
    value = node.value
    # np.random.X / numpy.random.X
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    ):
        return node.attr
    # X.Y where X aliases numpy.random directly
    if isinstance(value, ast.Name) and value.id in np_random_names:
        return node.attr
    return None


@register_rule
class LegacyNumpyRandomRule(FileRule):
    """R101: legacy numpy.random module-level API is forbidden."""

    id = "R101"
    summary = (
        "legacy numpy.random global-state API; use a seeded Generator "
        "(SimKernel streams in engine code)"
    )

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if project.config.module_rng_allowed(source.module):
            return
        np_random_names = _numpy_random_aliases(source.tree)
        for node in ast.walk(source.tree):
            banned: str | None = None
            lineno = node.lineno if hasattr(node, "lineno") else 0
            if isinstance(node, ast.Attribute):
                attr = _np_random_attr(node, np_random_names)
                if attr is not None and attr not in ALLOWED_NP_RANDOM:
                    banned = f"np.random.{attr}"
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                bad = [
                    alias.name
                    for alias in node.names
                    if alias.name not in ALLOWED_NP_RANDOM
                ]
                if bad:
                    banned = "from numpy.random import " + ", ".join(bad)
            if banned is not None:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=lineno,
                    message=f"{banned}: draws from hidden global RNG state; "
                    "use an explicitly seeded np.random.Generator",
                    snippet=source.snippet(lineno),
                )


@register_rule
class StdlibRandomRule(FileRule):
    """R102: the stdlib random module is forbidden."""

    id = "R102"
    summary = "stdlib random module; use seeded numpy Generators instead"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if project.config.module_rng_allowed(source.module):
            return
        for node in ast.walk(source.tree):
            hit = False
            if isinstance(node, ast.Import):
                hit = any(alias.name == "random" for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                hit = node.module == "random" and node.level == 0
            if hit:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message="stdlib random is seeded globally and breaks "
                    "run reproducibility; use np.random.default_rng / "
                    "kernel streams",
                    snippet=source.snippet(node.lineno),
                )


@register_rule
class WallClockRule(FileRule):
    """R103: wall-clock reads are forbidden in simulation code."""

    id = "R103"
    summary = "wall-clock read (time.time / datetime.now); simulated time only"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if project.config.module_rng_allowed(source.module):
            return
        time_names = _module_aliases(source.tree, "time")
        datetime_mods = _module_aliases(source.tree, "datetime")
        # names bound to the datetime.datetime / datetime.date classes
        datetime_classes: set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_classes.add(alias.asname or alias.name)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            banned: str | None = None
            if (
                isinstance(value, ast.Name)
                and value.id in time_names
                and node.attr in _BANNED_TIME_ATTRS
            ):
                banned = f"time.{node.attr}"
            elif (
                isinstance(value, ast.Name)
                and value.id in datetime_classes
                and node.attr in _BANNED_DATETIME_ATTRS
            ):
                banned = f"datetime.{node.attr}"
            elif (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id in datetime_mods
                and value.attr in ("datetime", "date")
                and node.attr in _BANNED_DATETIME_ATTRS
            ):
                banned = f"datetime.{value.attr}.{node.attr}"
            if banned is not None:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=f"{banned} reads the host clock; simulation code "
                    "must derive all time from the kernel clock",
                    snippet=source.snippet(node.lineno),
                )
