"""R10: dtype/promotion hygiene on benchmark-pinned hot paths.

R4 bans the *syntactic* shapes that allocate (``np.zeros`` without a
dtype, ``astype`` copies); R10 propagates abstract dtypes through
assignments and arithmetic (:mod:`repro.analysis.domains`) and flags
the *semantic* regressions the bench suite would only catch as a slow
drift:

* **R1001** — a float32 operand meets a float64 operand in arithmetic:
  the result silently widens and doubles the hot buffer.
* **R1002** — a ``dtype=object`` array reaches arithmetic, a return,
  or a call argument: every element op becomes a Python-level dispatch.
* **R1003** — an int array meets a float array in a ufunc: numpy
  upcasts the int side into a fresh float64 copy on every call.

In-place forms (``a += b``, ``a[idx] = b``) cast into the existing
buffer without promotion and are deliberately not flagged.  Instance
attributes assigned a decidable dtype anywhere in the class seed the
environment as ``self.X`` pseudo-variables (conflicting assignments
make them unknown).  Scope: :attr:`LintConfig.hotpath_modules` only —
elsewhere clarity wins, same policy as R4.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.dataflow import DataflowAnalysis, bound_names, solve
from repro.analysis.domains import (
    F32,
    F64,
    MIXED,
    OBJ,
    PROMOTES,
    infer_dtype,
    join_dtype,
    promote,
)
from repro.analysis.project import Project, SourceFile
from repro.analysis.rules.flowbase import flow_cache, function_flows

__all__ = ["R1001FloatPromotion", "R1002ObjectEscape", "R1003MixedIntFloat"]


def _class_attr_seeds(tree: ast.Module) -> dict[int, dict[str, str]]:
    """Per-function seed env of ``self.X`` dtypes, from class scans.

    Maps ``id(func_node)`` → env.  An attribute assigned a decidable
    dtype consistently across the class contributes a seed; any
    conflict or undecidable assignment drops it.
    """
    seeds: dict[int, dict[str, str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: dict[str, str | None] = {}
        methods = [
            n
            for n in node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            for stmt in ast.walk(method):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        inferred = infer_dtype(stmt.value, {})
                        key = target.attr
                        if key in attrs:
                            attrs[key] = join_dtype(attrs[key], inferred)
                        else:
                            attrs[key] = inferred
        env = {
            f"self.{name}": dtype for name, dtype in attrs.items() if dtype is not None
        }
        for method in methods:
            seeds[id(method)] = env
    return seeds


class _DtypeFlow(DataflowAnalysis):
    """var (or ``self.X``) → known abstract dtype."""

    def __init__(self, seed: dict[str, str]):
        self.seed = seed

    def bottom(self) -> dict:
        return {}

    def initial(self, cfg) -> dict:
        return dict(self.seed)

    def join(self, a: dict, b: dict) -> dict:
        return {k: v for k, v in a.items() if b.get(k) == v}

    def transfer(self, node, state: dict) -> dict:
        stmt = node.stmt
        assert stmt is not None
        if isinstance(stmt, ast.Assign):
            new = dict(state)
            inferred = infer_dtype(stmt.value, state)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if inferred is not None:
                        new[target.id] = inferred
                    else:
                        new.pop(target.id, None)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    key = f"self.{target.attr}"
                    if inferred is not None:
                        new[key] = inferred
                    else:
                        new.pop(key, None)
                # Subscript stores cast in place: dtype unchanged.
            return new
        if isinstance(stmt, ast.AugAssign):
            return state  # in-place: left operand's dtype wins
        killed = bound_names(stmt)
        if killed:
            new = dict(state)
            for name in killed:
                new.pop(name, None)
            return new
        return state


def _describe(expr: ast.expr) -> str:
    """Short operand description for messages (name or node type)."""
    if isinstance(expr, ast.Name):
        return f"'{expr.id}'"
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"'self.{expr.attr}'"
    return "expression"


def _scan_stmt(stmt: ast.stmt, env: dict[str, str], findings: list) -> None:
    """Flag promotions/object escapes in one statement's expressions."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested scopes get their own CFG and env
    if isinstance(stmt, ast.AugAssign):
        return  # in-place target cast, no promotion
    for node in ast.walk(stmt):
        if isinstance(node, ast.BinOp):
            left = infer_dtype(node.left, env)
            right = infer_dtype(node.right, env)
            if OBJ in (left, right):
                side = node.left if left == OBJ else node.right
                findings.append(
                    (
                        "R1002",
                        node.lineno,
                        f"arithmetic on dtype=object operand {_describe(side)}: "
                        "every element op dispatches through Python objects",
                    )
                )
                continue
            _result, flag = promote(left, right)
            if flag == PROMOTES:
                f32_side = node.left if left == F32 else node.right
                f64_side = node.right if f32_side is node.left else node.left
                findings.append(
                    (
                        "R1001",
                        node.lineno,
                        f"float32 operand {_describe(f32_side)} meets float64 "
                        f"operand {_describe(f64_side)}: result silently "
                        "promotes to float64 (fresh wide buffer)",
                    )
                )
            elif flag == MIXED:
                findings.append(
                    (
                        "R1003",
                        node.lineno,
                        f"int array {_describe(node.left if left == 'int' else node.right)} "
                        "meets float array in a ufunc: numpy upcasts the int "
                        "side into a fresh float64 copy per call",
                    )
                )
        elif isinstance(node, ast.Return) and node.value is not None:
            if infer_dtype(node.value, env) == OBJ:
                findings.append(
                    (
                        "R1002",
                        node.lineno,
                        "dtype=object array escapes via return; convert to a "
                        "numeric dtype at the boundary",
                    )
                )
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and env.get(arg.id) == OBJ:
                    findings.append(
                        (
                            "R1002",
                            node.lineno,
                            f"dtype=object array '{arg.id}' escapes as a call "
                            "argument; convert to a numeric dtype first",
                        )
                    )


def _analyse(source: SourceFile, project: Project) -> list[tuple[str, int, str]]:
    cache = flow_cache(project)
    key = ("r10", source.rel)
    if key in cache:
        return cache[key]
    findings: list[tuple[str, int, str]] = []
    if source.module not in project.config.hotpath_modules:
        cache[key] = findings
        return findings

    seeds = _class_attr_seeds(source.tree)
    for flow in function_flows(source, project):
        analysis = _DtypeFlow(seeds.get(id(flow.func), {}))
        result = solve(flow.cfg, analysis)
        for node in flow.cfg.stmt_nodes():
            env = result.at(node.idx)
            if env is None:
                continue  # unreachable
            _scan_stmt(node.stmt, env, findings)

    findings.sort(key=lambda f: (f[1], f[0]))
    cache[key] = findings
    return findings


class _R10Base(FileRule):
    def check_file(self, source: SourceFile, project: Project):
        for rule_id, line, message in _analyse(source, project):
            if rule_id == self.id:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=line,
                    message=message,
                    snippet=source.snippet(line),
                )


@register_rule
class R1001FloatPromotion(_R10Base):
    """R1001: hot-path arithmetic silently widens float32 to float64."""

    id = "R1001"
    summary = "no silent float32→float64 promotion in hot-path arithmetic"


@register_rule
class R1002ObjectEscape(_R10Base):
    """R1002: a dtype=object array reaches hot-path arithmetic or calls."""

    id = "R1002"
    summary = "no dtype=object arrays reaching hot-path arithmetic or APIs"


@register_rule
class R1003MixedIntFloat(_R10Base):
    """R1003: int-array and float-array meet in a copy-inducing ufunc."""

    id = "R1003"
    summary = "no copy-inducing int-array × float-array ufunc operands"
