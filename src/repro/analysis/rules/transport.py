"""R8: raw I/O primitives stay behind the transport layer.

The socket transport makes hard promises — every byte between server
and workers is a CRC'd :mod:`repro.wire` frame, every blocking recv
has a deadline, every worker process is spawned (and reaped) through
one launcher.  Those promises only hold if nobody *else* opens
sockets or forks processes: a stray ``socket.socket()`` in an engine
bypasses the frame/deadline discipline, and a stray ``subprocess``
call escapes the terminate/kill teardown that keeps test runs from
leaking orphans.

* **R801** — an import of a raw transport primitive (``socket``,
  ``subprocess``, ``multiprocessing``, ``asyncio``) anywhere in the
  root package outside :mod:`repro.transport`.  Code that needs bytes
  moved or workers spawned goes through the transport package's API.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = ["RawTransportImportRule"]


def _in_package(module: str, package: str) -> bool:
    return module == package or module.startswith(package + ".")


@register_rule
class RawTransportImportRule(FileRule):
    """R801: no raw socket/process imports outside the transport layer."""

    id = "R801"
    summary = "raw socket/process import outside the transport layer"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        config = project.config
        if not _in_package(source.module, config.package):
            return
        if _in_package(source.module, config.transport_package):
            return
        banned = config.raw_transport_modules
        for edge in source.imports():
            top = edge.target.split(".")[0]
            if top not in banned:
                continue
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=edge.line,
                message=f"'{top}' imported outside "
                f"{config.transport_package}; raw sockets and process "
                "spawning bypass the frame/deadline/teardown discipline — "
                "use the transport package's API instead",
                snippet=source.snippet(edge.line),
            )
