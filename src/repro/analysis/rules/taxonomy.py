"""R3: the event/drop-reason taxonomy is closed and fully consumed.

:mod:`repro.sim.trace` declares the complete event vocabulary
(``EVENT_TYPES``) and the drop-reason set (``DROP_REASONS``)
partitioned into counted / rejected / uncounted buckets.  Everything
downstream — ``MetricsReducer``, the trace summariser, the chaos
report — keys off those declarations, so an emit site inventing a new
string, or a declared reason missing from every accounting bucket,
corrupts metrics silently.  These rules re-derive the taxonomy from
the AST of the declaring module and cross-check every emit site and
consumer in the project:

* **R301** — ``trace.emit(<type>, ...)`` with an event type that is
  not declared (string literals and constants imported from the
  taxonomy module both resolve);
* **R302** — ``reason="..."`` keyword with an undeclared drop reason;
* **R303** — the declared partition is broken: counted / rejected /
  uncounted buckets must be disjoint and cover ``DROP_REASONS``
  exactly (and ``DROP_REASONS`` must be duplicate-free);
* **R304** — a known consumer module no longer references the
  taxonomy names it must dispatch on.

Emit sites are recognised syntactically: a call ``<recv>.emit(...)``
where the receiver is (an attribute ending in) ``trace`` or
``_trace`` — the convention every engine and the kernel follow.
Dynamic event types / reasons (``reason=reason``) are outside static
reach and are deliberately skipped.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import ProjectRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = [
    "Taxonomy",
    "extract_taxonomy",
    "iter_emit_calls",
    "EmitTypeRule",
    "DropReasonRule",
    "TaxonomyPartitionRule",
    "TaxonomyConsumerRule",
]

_PARTITION_NAMES = (
    "COUNTED_DROP_REASONS",
    "REJECTED_DROP_REASONS",
    "UNCOUNTED_DROP_REASONS",
)


@dataclass
class Taxonomy:
    """The declared vocabulary, re-derived statically from the AST."""

    module: str
    event_types: frozenset[str] = frozenset()
    drop_reasons: tuple[str, ...] = ()
    partitions: dict[str, frozenset[str]] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)  # NAME -> value
    lines: dict[str, int] = field(default_factory=dict)  # decl name -> line

    @property
    def complete(self) -> bool:
        """Whether the declaring module yielded both vocabularies."""
        return bool(self.event_types) and bool(self.drop_reasons)


def _literal_strings(node: ast.expr, constants: dict[str, str]) -> list[str] | None:
    """Resolve a tuple/set/frozenset literal of strings and known names."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name in ("frozenset", "set", "tuple") and len(node.args) == 1:
            return _literal_strings(node.args[0], constants)
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.append(element.value)
            elif isinstance(element, ast.Name) and element.id in constants:
                out.append(constants[element.id])
            else:
                return None
        return out
    return None


def extract_taxonomy(source: SourceFile) -> Taxonomy:
    """Parse the taxonomy declarations out of the declaring module."""
    taxonomy = Taxonomy(module=source.module)
    for node in source.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if (
            isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
            and name.isupper()
        ):
            taxonomy.constants[name] = node.value.value
            taxonomy.lines[name] = node.lineno
            continue
        values = _literal_strings(node.value, taxonomy.constants)
        if values is None:
            continue
        taxonomy.lines[name] = node.lineno
        if name == "EVENT_TYPES":
            taxonomy.event_types = frozenset(values)
        elif name == "DROP_REASONS":
            taxonomy.drop_reasons = tuple(values)
        elif name in _PARTITION_NAMES:
            taxonomy.partitions[name] = frozenset(values)
    return taxonomy


def _project_taxonomy(project: Project) -> tuple[Taxonomy, SourceFile] | None:
    source = project.resolve(project.config.taxonomy_module)
    if source is None:
        return None
    taxonomy = extract_taxonomy(source)
    return (taxonomy, source) if taxonomy.complete else None


def _is_trace_receiver(func: ast.expr) -> bool:
    """``x.emit`` where x syntactically looks like a trace bus."""
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    recv = func.value
    name = None
    if isinstance(recv, ast.Name):
        name = recv.id
    elif isinstance(recv, ast.Attribute):
        name = recv.attr
    return name is not None and (name == "trace" or name.endswith("_trace"))


def iter_emit_calls(source: SourceFile) -> Iterator[ast.Call]:
    """All syntactic trace-bus emit calls in one file."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and _is_trace_receiver(node.func):
            yield node


def _imported_taxonomy_names(source: SourceFile, taxonomy_module: str) -> set[str]:
    """Names this file imports from the taxonomy module (or its package)."""
    package = taxonomy_module.rsplit(".", 1)[0]
    names: set[str] = set()
    for edge in source.imports():
        if edge.target in (taxonomy_module, package):
            names.update(edge.names)
    return names


@register_rule
class EmitTypeRule(ProjectRule):
    """R301: every emitted event type is declared."""

    id = "R301"
    summary = "trace.emit with an event type not declared in the taxonomy"

    def check_project(self, project: Project) -> Iterator[Violation]:
        resolved = _project_taxonomy(project)
        if resolved is None:
            return
        taxonomy, decl = resolved
        for source in project.files:
            if source is decl:
                continue  # the bus implementation itself
            imported = _imported_taxonomy_names(source, taxonomy.module)
            for call in iter_emit_calls(source):
                if not call.args:
                    continue
                first = call.args[0]
                value: str | None = None
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    value = first.value
                elif isinstance(first, ast.Name):
                    if first.id in taxonomy.constants and first.id in imported:
                        value = taxonomy.constants[first.id]
                    else:
                        yield Violation(
                            rule=self.id,
                            path=source.rel,
                            line=call.lineno,
                            message=f"emit type '{first.id}' does not resolve "
                            f"to a constant imported from {taxonomy.module}",
                            snippet=source.snippet(call.lineno),
                        )
                        continue
                else:
                    continue  # dynamic expression: outside static reach
                if value not in taxonomy.event_types:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=call.lineno,
                        message=f"event type {value!r} is not declared in "
                        f"{taxonomy.module}.EVENT_TYPES",
                        snippet=source.snippet(call.lineno),
                    )


@register_rule
class DropReasonRule(ProjectRule):
    """R302: every emitted drop reason is declared."""

    id = "R302"
    summary = "trace.emit with a drop reason not declared in the taxonomy"

    def check_project(self, project: Project) -> Iterator[Violation]:
        resolved = _project_taxonomy(project)
        if resolved is None:
            return
        taxonomy, decl = resolved
        declared = set(taxonomy.drop_reasons)
        for source in project.files:
            if source is decl:
                continue
            for call in iter_emit_calls(source):
                for keyword in call.keywords:
                    if keyword.arg != "reason":
                        continue
                    value = keyword.value
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        if value.value not in declared:
                            yield Violation(
                                rule=self.id,
                                path=source.rel,
                                line=call.lineno,
                                message=f"drop reason {value.value!r} is not "
                                f"declared in {taxonomy.module}.DROP_REASONS",
                                snippet=source.snippet(call.lineno),
                            )


@register_rule
class TaxonomyPartitionRule(ProjectRule):
    """R303: counted/rejected/uncounted partition DROP_REASONS exactly."""

    id = "R303"
    summary = "drop-reason partition is not a disjoint, exhaustive cover"

    def check_project(self, project: Project) -> Iterator[Violation]:
        resolved = _project_taxonomy(project)
        if resolved is None:
            return
        taxonomy, decl = resolved
        line = taxonomy.lines.get("DROP_REASONS", 1)

        def _violation(message: str) -> Violation:
            return Violation(
                rule=self.id,
                path=decl.rel,
                line=line,
                message=message,
                snippet=decl.snippet(line),
            )

        declared = set(taxonomy.drop_reasons)
        if len(declared) != len(taxonomy.drop_reasons):
            dupes = sorted(
                r
                for r in declared
                if taxonomy.drop_reasons.count(r) > 1
            )
            yield _violation(f"DROP_REASONS contains duplicates: {dupes}")
        missing_buckets = [
            name for name in _PARTITION_NAMES if name not in taxonomy.partitions
        ]
        if missing_buckets:
            yield _violation(
                "missing partition bucket(s): " + ", ".join(missing_buckets)
            )
            return
        buckets = [taxonomy.partitions[name] for name in _PARTITION_NAMES]
        for i, left_name in enumerate(_PARTITION_NAMES):
            for right_name in _PARTITION_NAMES[i + 1 :]:
                overlap = taxonomy.partitions[left_name] & taxonomy.partitions[
                    right_name
                ]
                if overlap:
                    yield _violation(
                        f"{left_name} and {right_name} overlap: {sorted(overlap)}"
                    )
        union = frozenset().union(*buckets)
        unhandled = declared - union
        if unhandled:
            yield _violation(
                f"drop reasons in no accounting bucket: {sorted(unhandled)} "
                "(add to COUNTED/REJECTED/UNCOUNTED_DROP_REASONS)"
            )
        undeclared = union - declared
        if undeclared:
            yield _violation(
                f"partition names not in DROP_REASONS: {sorted(undeclared)}"
            )


@register_rule
class TaxonomyConsumerRule(ProjectRule):
    """R304: known consumers still reference the names they dispatch on."""

    id = "R304"
    summary = "taxonomy consumer no longer references a required name"

    def check_project(self, project: Project) -> Iterator[Violation]:
        resolved = _project_taxonomy(project)
        if resolved is None:
            return
        taxonomy, _ = resolved
        for module, required in sorted(project.config.taxonomy_consumers.items()):
            source = project.resolve(module)
            if source is None:
                continue  # partial lint run: consumer not in scope
            used = {
                node.id
                for node in ast.walk(source.tree)
                if isinstance(node, ast.Name)
            }
            for name in required:
                if name not in used:
                    yield Violation(
                        rule=self.id,
                        path=source.rel,
                        line=1,
                        message=f"consumer of the trace taxonomy must "
                        f"reference {taxonomy.module}.{name}",
                        snippet=source.snippet(1),
                    )
