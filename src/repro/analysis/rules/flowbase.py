"""Shared machinery for the flow-sensitive rule families (R9–R11).

CFG construction is the expensive part of a flow pass, and three rule
families want the same graphs, so they are memoised per
:class:`~repro.analysis.project.Project` under a ``flow_cache``
attribute created on demand (the Project class itself stays unaware).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    DataflowResult,
    ReachingDefinitions,
    param_names,
    solve,
)
from repro.analysis.project import Project, SourceFile

__all__ = [
    "FuncFlow",
    "dotted_name",
    "flow_cache",
    "function_flows",
]




class FuncFlow:
    """One function's flow artefacts: AST, CFG, reaching definitions."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef, cfg: CFG):
        self.func = func
        self.cfg = cfg
        self._reaching: DataflowResult | None = None

    @property
    def reaching(self) -> DataflowResult:
        """Reaching-definitions fixpoint, computed on first use."""
        if self._reaching is None:
            analysis = ReachingDefinitions(param_names(self.func))
            self._reaching = solve(self.cfg, analysis)
        return self._reaching


def flow_cache(project: Project) -> dict:
    """The project's memo dict for flow artefacts (created lazily)."""
    cache = getattr(project, "flow_cache_", None)
    if cache is None:
        cache = {}
        project.flow_cache_ = cache
    return cache


def function_flows(source: SourceFile, project: Project) -> list[FuncFlow]:
    """CFGs (+ lazy reaching-defs) for every function in ``source``."""
    cache = flow_cache(project)
    key = ("cfgs", source.module, source.rel)
    flows = cache.get(key)
    if flows is None:
        flows = [
            FuncFlow(node, build_cfg(node))
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        cache[key] = flows
    return flows


def dotted_name(expr: ast.expr) -> str:
    """``a.b.c`` for a pure name/attribute chain, else ``""``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
