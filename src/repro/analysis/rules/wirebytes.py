"""R6: byte accounting goes through the wire layer.

The analytic size formulas (``dense_bytes`` / ``sparse_payload_bytes``
/ ``quantized_bytes``) are *predictions*, pinned by a tier-1 test to
the exact frame-encode lengths in :mod:`repro.wire.codecs`.  Code that
calls a formula directly to charge a link or stamp a payload bypasses
the frames — its number can silently drift from what actually travels.
Since the wire refactor, every producer obtains sizes from an encoded
:class:`~repro.wire.frame.Frame` (or from
:func:`repro.wire.codecs.predicted_payload_nbytes`, which *is* the
codec's size model); the formulas themselves remain public for
analysis and cross-checking tests.

* **R601** — a call to one of the size formulas outside the modules
  allowed to define or re-export them (``repro.wire`` and the
  ``repro.compression.base`` shim).  Move the computation behind a
  frame encode, or consume ``Frame.payload_nbytes``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = ["SizeFormulaCallRule", "SIZE_FORMULAS"]

SIZE_FORMULAS = frozenset(
    {"dense_bytes", "sparse_payload_bytes", "quantized_bytes"}
)


def _called_name(node: ast.Call) -> str | None:
    """The terminal name of the callee: ``f(...)`` or ``mod.f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _module_allowed(module: str, allowed: tuple[str, ...]) -> bool:
    return any(module == m or module.startswith(m + ".") for m in allowed)


@register_rule
class SizeFormulaCallRule(FileRule):
    """R601: size-formula calls only inside the wire layer."""

    id = "R601"
    summary = "analytic byte-size formula called outside the wire layer"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if _module_allowed(source.module, project.config.size_formula_modules):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _called_name(node)
            if name not in SIZE_FORMULAS:
                continue
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message=f"{name}() outside the wire layer; byte accounting "
                "must come from an encoded Frame (payload_nbytes) or "
                "repro.wire.codecs.predicted_payload_nbytes",
                snippet=source.snippet(node.lineno),
            )
