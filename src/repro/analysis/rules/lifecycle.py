"""R11: resource/exception lifecycle in transport and population code.

The socket layer and the spill/restore machinery hold resources whose
lifetime must be exact on *every* CFG path — including the exception
edges chaos testing exercises on purpose:

* **R1101** — a resource acquired by a tracked call (``socket.socket``,
  ``dial``, ``open``, ``accept`` …) reaches the function's exit or an
  uncaught raise still merely *acquired*: neither released
  (``.close()``/``close_quietly``) nor escaped (returned, yielded, or
  stored into an object that owns it from then on).  Under connection
  churn each leaked fd is a slow fleet-killer.
* **R1102** — a resource used or re-released after every path has
  already released it: use-after-close.
* **R1103** — a destructive take from shared state (``X.discard(k)``,
  ``del X[k]`` on a ``self`` container, directly or via a local alias)
  can reach an uncaught raise before the taken value was committed
  back (re-stored into the same container): the marker is lost and the
  client silently forks a fresh trajectory.

Escape semantics: passing a resource to a *bare* call statement
(``send_message(sock, …)``) is a use, not an escape — helpers do not
retain their arguments; passing it into a call whose result is kept
(``link = _WorkerLink(sock)``) transfers ownership.  ``with``-managed
resources are exempt.  Scope:
:attr:`LintConfig.lifecycle_module_prefixes`.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.dataflow import DataflowAnalysis, bound_names, solve
from repro.analysis.project import Project, SourceFile
from repro.analysis.rules.flowbase import dotted_name, flow_cache, function_flows

__all__ = ["R1101ResourceLeak", "R1102UseAfterRelease", "R1103LossyTake"]

ACQ = "acq"
REL = "rel"
ESC = "esc"


def _in_scope(source: SourceFile, project: Project) -> bool:
    return any(
        source.module == p or source.module.startswith(p + ".")
        for p in project.config.lifecycle_module_prefixes
    )


def _acquire_targets(stmt: ast.stmt, config) -> list[ast.Name]:
    """Name(s) bound to a fresh resource by this statement, if any."""
    if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
        return []
    name = dotted_name(stmt.value.func)
    tail = name.rsplit(".", 1)[-1] if name else ""
    matches_plain = name and any(
        name == a or name.endswith("." + a) for a in config.resource_acquirers
    )
    matches_tuple = tail in config.resource_tuple_acquirers
    if not matches_plain and not matches_tuple:
        return []
    targets: list[ast.Name] = []
    for target in stmt.targets:
        if isinstance(target, ast.Name):
            targets.append(target)
        elif (
            matches_tuple
            and isinstance(target, (ast.Tuple, ast.List))
            and target.elts
            and isinstance(target.elts[0], ast.Name)
        ):
            targets.append(target.elts[0])
    return targets


def _release_names(stmt: ast.stmt, config) -> list[tuple[str, int]]:
    """Variables released by this statement: ``x.close()`` / ``close_quietly(x)``."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in config.resource_release_methods
            and isinstance(func.value, ast.Name)
        ):
            out.append((func.value.id, node.lineno))
        else:
            name = dotted_name(func)
            tail = name.rsplit(".", 1)[-1] if name else ""
            if tail in config.resource_release_funcs:
                # Quiet closers take any number of resources; a single
                # call releases them all atomically.
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        out.append((arg.id, node.lineno))
    return out


def _escape_names(stmt: ast.stmt) -> set[str]:
    """Variables whose value this statement hands off for keeps.

    Return/yield values, attribute/subscript stores, and arguments of
    calls whose result is itself kept (assigned, returned, stored).
    Bare ``Expr`` call statements are uses, not escapes.
    """
    escaped: set[str] = set()

    def names_in(expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                escaped.add(node.id)

    if isinstance(stmt, ast.Return) and stmt.value is not None:
        names_in(stmt.value)
    elif isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, (ast.Yield, ast.YieldFrom)
    ):
        if stmt.value.value is not None:
            names_in(stmt.value.value)
    elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        stored_elsewhere = any(
            isinstance(t, (ast.Attribute, ast.Subscript)) for t in targets
        )
        if value is not None:
            if isinstance(value, ast.Name):
                if stored_elsewhere:
                    escaped.add(value.id)
            else:
                # The value expression's result is kept; any resource
                # fed into a call inside it transfers ownership.
                for node in ast.walk(value):
                    if isinstance(node, ast.Call):
                        for arg in list(node.args) + [
                            kw.value for kw in node.keywords
                        ]:
                            names_in(arg)
                if stored_elsewhere:
                    names_in(value)
    return escaped


def _self_container_root(expr: ast.expr, aliases: dict) -> frozenset[str]:
    """Attribute names on ``self`` that ``expr`` may denote.

    ``self._spilled`` → {"_spilled"}; a local alias resolves through
    the state's alias map; anything else → ∅.
    """
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return frozenset({expr.attr})
    if isinstance(expr, ast.Name):
        return aliases.get(expr.id, frozenset())
    return frozenset()


_COMMIT_METHODS = frozenset(
    {"add", "append", "insert", "update", "setdefault", "extend", "push"}
)


class _Lifecycle(DataflowAnalysis):
    """Token statuses + variable bindings + pending destructive takes.

    State keys: ``("res", site)`` → frozenset of per-path statuses
    (:data:`ACQ`/:data:`REL`/:data:`ESC`); ``("var", name)`` →
    frozenset of resource sites bound to the name; ``("alias", name)``
    → frozenset of ``self`` attribute roots; ``("take", site)`` →
    frozenset of roots the take has not yet committed back to.
    """

    def __init__(self, config):
        self.config = config
        # (site, kind) effects recorded during reporting; transfer is pure.

    def bottom(self) -> dict:
        return {}

    def join(self, a: dict, b: dict) -> dict:
        out = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out

    # -- helpers -------------------------------------------------------

    def _aliases(self, state: dict) -> dict:
        return {
            key[1]: value for key, value in state.items() if key[0] == "alias"
        }

    def _tokens(self, state: dict, name: str) -> frozenset:
        return state.get(("var", name), frozenset())

    # -- transfer ------------------------------------------------------

    def transfer(self, node, state: dict) -> dict:
        stmt = node.stmt
        assert stmt is not None
        new = dict(state)

        # Kill rebindings first (acquisition below re-adds its own).
        for name in bound_names(stmt):
            new.pop(("var", name), None)
            new.pop(("alias", name), None)

        # Releases act on the pre-kill bindings.
        for name, _line in _release_names(stmt, self.config):
            for token in self._tokens(state, name):
                new[("res", token)] = frozenset({REL})

        # Escapes.
        escaped = _escape_names(stmt)
        for name in escaped:
            for token in self._tokens(state, name):
                new[("res", token)] = frozenset({ESC})

        # Acquisition: fresh token per site, bound to the target name.
        for target in _acquire_targets(stmt, self.config):
            new[("res", node.idx)] = frozenset({ACQ})
            new[("var", target.id)] = frozenset({node.idx})

        # Alias tracking: ``live = self._live``.
        if (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Attribute)
            and isinstance(stmt.value.value, ast.Name)
            and stmt.value.value.id == "self"
        ):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    new[("alias", target.id)] = frozenset({stmt.value.attr})

        aliases = self._aliases(state)

        # Destructive takes: ``X.discard(k)`` / ``del X[k]``.
        take_roots: frozenset[str] = frozenset()
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.config.destructive_take_methods
            ):
                take_roots = _self_container_root(func.value, aliases)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    take_roots = take_roots | _self_container_root(
                        target.value, aliases
                    )
        if take_roots:
            new[("take", node.idx)] = take_roots

        # Commits: re-storing into a taken root clears its takes.
        committed: set[str] = set()
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    committed.update(_self_container_root(target.value, aliases))
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    committed.add(target.attr)
        for cnode in ast.walk(stmt):
            if (
                isinstance(cnode, ast.Call)
                and isinstance(cnode.func, ast.Attribute)
                and cnode.func.attr in _COMMIT_METHODS
            ):
                committed.update(
                    _self_container_root(cnode.func.value, aliases)
                )
        if committed:
            for key in list(new):
                if key[0] == "take":
                    remaining = new[key] - frozenset(committed)
                    if remaining:
                        new[key] = remaining
                    else:
                        del new[key]
        return new

    def transfer_exception(self, node, state_in: dict, state_out: dict) -> dict:
        stmt = node.stmt
        assert stmt is not None
        # A failed acquisition never produced the resource; a failed
        # take never removed the value: the raise propagates the
        # *pre*-state.  A close()/commit that raises still released /
        # committed for lint purposes: *post*-state.
        if _acquire_targets(stmt, self.config) or _is_take(stmt, self.config):
            return state_in
        if _release_names(stmt, self.config):
            return state_out
        if _is_simple_commit(stmt):
            return state_out
        return self.join(state_in, state_out)


def _is_simple_commit(stmt: ast.stmt) -> bool:
    """``container[key] = name`` — a re-store whose value needs no
    evaluation.  Its only raise opportunity is the store itself, and a
    dict/list setitem on a hashable key failing means the process is
    done for anyway; the exception edge may assume the commit landed.
    """
    return (
        isinstance(stmt, ast.Assign)
        and all(isinstance(t, ast.Subscript) for t in stmt.targets)
        and isinstance(stmt.value, (ast.Name, ast.Constant))
    )


def _is_take(stmt: ast.stmt, config) -> bool:
    if isinstance(stmt, ast.Delete):
        return any(isinstance(t, ast.Subscript) for t in stmt.targets)
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr in config.destructive_take_methods
    )


def _analyse(source: SourceFile, project: Project) -> list[tuple[str, int, str]]:
    cache = flow_cache(project)
    key = ("r11", source.rel)
    if key in cache:
        return cache[key]
    findings: list[tuple[str, int, str]] = []
    if not _in_scope(source, project):
        cache[key] = findings
        return findings
    config = project.config

    for flow in function_flows(source, project):
        cfg = flow.cfg
        analysis = _Lifecycle(config)
        result = solve(cfg, analysis)

        # R1101: resources still merely-acquired at either exit.
        leaks: dict[int, str] = {}
        for exit_idx, how in ((cfg.raise_exit, "an exception path"), (cfg.exit, "a normal path")):
            state = result.at(exit_idx)
            if not state:
                continue
            for key_, statuses in state.items():
                if key_[0] == "res" and ACQ in statuses:
                    leaks.setdefault(key_[1], how)
        for site, how in sorted(leaks.items()):
            stmt = cfg.nodes[site].stmt
            findings.append(
                (
                    "R1101",
                    stmt.lineno,
                    f"resource acquired here can reach {how} without being "
                    "released or handed off; close it on every path "
                    "(including exception edges)",
                )
            )

        # R1102: releases/uses on definitely-released resources.
        for node in cfg.stmt_nodes():
            state = result.at(node.idx)
            if not state:
                continue
            for name, line in _release_names(node.stmt, config):
                tokens = state.get(("var", name), frozenset())
                if tokens and all(
                    state.get(("res", t)) == frozenset({REL}) for t in tokens
                ):
                    findings.append(
                        (
                            "R1102",
                            line,
                            f"'{name}' is already closed on every path "
                            "reaching this second release",
                        )
                    )
            # Any other use of a definitely-released resource.
            if not isinstance(node.stmt, (ast.Assign, ast.Expr)):
                continue
            for call in ast.walk(node.stmt):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.attr not in config.resource_release_methods
                ):
                    name = call.func.value.id
                    tokens = state.get(("var", name), frozenset())
                    if tokens and all(
                        state.get(("res", t)) == frozenset({REL})
                        for t in tokens
                    ):
                        findings.append(
                            (
                                "R1102",
                                call.lineno,
                                f"'{name}' is used after every path has "
                                "already closed it",
                            )
                        )

        # R1103: destructive takes alive at the raise exit.
        state = result.at(cfg.raise_exit)
        if state:
            for key_, roots in sorted(
                (k, v) for k, v in state.items() if k[0] == "take"
            ):
                stmt = cfg.nodes[key_[1]].stmt
                pretty = ", ".join(f"self.{r}" for r in sorted(roots))
                findings.append(
                    (
                        "R1103",
                        stmt.lineno,
                        f"value taken from {pretty} here can be lost to an "
                        "exception before being committed back; take after "
                        "the fallible work (or re-store on failure)",
                    )
                )

    findings.sort(key=lambda f: (f[1], f[0]))
    cache[key] = findings
    return findings


class _R11Base(FileRule):
    def check_file(self, source: SourceFile, project: Project):
        for rule_id, line, message in _analyse(source, project):
            if rule_id == self.id:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=line,
                    message=message,
                    snippet=source.snippet(line),
                )


@register_rule
class R1101ResourceLeak(_R11Base):
    """R1101: a resource can reach function exit neither released nor handed off."""

    id = "R1101"
    summary = "resources release or escape on every CFG path, exceptions included"


@register_rule
class R1102UseAfterRelease(_R11Base):
    """R1102: a resource is used or re-released after it is definitely closed."""

    id = "R1102"
    summary = "no use or re-release of a resource after it is definitely closed"


@register_rule
class R1103LossyTake(_R11Base):
    """R1103: a destructive take can be lost to an exception before commit."""

    id = "R1103"
    summary = "destructive takes from shared state commit before any raise can escape"
