"""R7: client lifecycle belongs to the population registry.

The virtual-population refactor moved client construction and
full-population iteration behind :mod:`repro.fl.population`: engines
and strategies hold a :class:`~repro.fl.population.ClientPopulation`
and only ever touch the *active cohort*.  An eager ``Client(...)``
call or a raw sweep over the client collection in those modules
silently reintroduces O(population) memory — exactly the regression
the registry exists to prevent — so both are lint errors there:

* **R701** — a ``Client(...)`` construction in an engine/strategy/
  selection module.  Clients are built only by the registry's
  ``client_fn`` (or by experiment setup code, which is unrestricted);
  inside the restricted modules, materialise through
  ``population[cid]``.
* **R702** — iterating the client collection itself (``for c in
  self.clients`` / a comprehension over a bare ``clients`` name).
  That materialises every client; iterate ids instead
  (``population.ids()`` / ``all_ids()`` / ``initial_ids()``) and
  index the cohort you actually need.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = ["EagerClientConstructionRule", "FullPopulationIterationRule"]

_COLLECTION_NAMES = frozenset({"clients"})


def _restricted(source: SourceFile, project: Project) -> bool:
    config = project.config
    if source.module == config.population_module:
        return False
    return source.module in config.population_restricted_modules


def _called_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _iterables(tree: ast.AST) -> Iterator[ast.expr]:
    """Every expression used as the iterable of a loop/comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for gen in node.generators:
                yield gen.iter


def _names_client_collection(expr: ast.expr) -> bool:
    """``clients`` or ``<anything>.clients`` (the raw collection)."""
    if isinstance(expr, ast.Name):
        return expr.id in _COLLECTION_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr in _COLLECTION_NAMES
    return False


@register_rule
class EagerClientConstructionRule(FileRule):
    """R701: no ``Client(...)`` construction outside the registry."""

    id = "R701"
    summary = "eager Client() construction outside the population registry"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not _restricted(source, project):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            if _called_name(node) != "Client":
                continue
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=node.lineno,
                message="Client() built outside the population registry; "
                "materialise through population[cid] so retention "
                "policies and snapshots stay in charge of client state",
                snippet=source.snippet(node.lineno),
            )


@register_rule
class FullPopulationIterationRule(FileRule):
    """R702: no raw iteration over the client collection."""

    id = "R702"
    summary = "full-population iteration over the raw client collection"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if not _restricted(source, project):
            return
        for expr in _iterables(source.tree):
            if not _names_client_collection(expr):
                continue
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=expr.lineno,
                message="iterating the client collection materialises every "
                "client; iterate population.ids()/all_ids()/initial_ids() "
                "and index only the active cohort",
                snippet=source.snippet(expr.lineno),
            )
