"""R5: API surface — ``__all__``, docstrings, annotation coverage.

The repo's convention: every module declares ``__all__`` naming its
public surface, every public top-level callable carries a docstring,
and packages that other layers build against (``repro.sim``,
``repro.fl.config``) keep their public signatures fully annotated.

* **R501** — an ``__all__`` entry that the module never defines (or a
  duplicate entry): silently broken ``from m import *`` and docs;
* **R502** — a public top-level function/class missing from
  ``__all__``: either export it or underscore it;
* **R503** — a module with no ``__all__`` at all (dunder modules like
  ``__main__`` are exempt via config);
* **R504** — a public callable in a strict-annotation package with
  unannotated parameters or return;
* **R505** — a public top-level function/class without a docstring.

Beyond violations, this module computes the **annotation-coverage
metric** reported by ``repro lint --json``: per top-level package, the
fraction of public-signature slots (parameters + returns) that carry
annotations — the dashboard number the strict packages hold at 100%.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.project import Project, SourceFile

__all__ = [
    "DunderAllDefinedRule",
    "DunderAllCoversRule",
    "DunderAllPresentRule",
    "StrictAnnotationRule",
    "PublicDocstringRule",
    "annotation_coverage",
]


def _declared_all(tree: ast.Module) -> tuple[list[str] | None, int]:
    """(entries, line) of the module's ``__all__`` literal, if resolvable."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                return None, node.lineno
            if isinstance(value, (list, tuple)) and all(
                isinstance(v, str) for v in value
            ):
                return list(value), node.lineno
            return None, node.lineno
    return None, 0


def _toplevel_names(tree: ast.Module) -> set[str]:
    """Every name a module binds at top level (defs, classes, assigns, imports)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.If, ast.Try)):
            # Names bound under conditional blocks (TYPE_CHECKING, etc.)
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    names.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        names.add((alias.asname or alias.name).split(".")[0])
    return names


def _public_toplevel_defs(
    tree: ast.Module,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef]:
    return [
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and not node.name.startswith("_")
    ]


@register_rule
class DunderAllDefinedRule(FileRule):
    """R501: every ``__all__`` entry resolves; no duplicates."""

    id = "R501"
    summary = "__all__ entry undefined in module, or duplicated"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        entries, line = _declared_all(source.tree)
        if entries is None:
            return
        defined = _toplevel_names(source.tree)
        for entry in sorted(set(entries)):
            if entries.count(entry) > 1:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=line,
                    message=f"__all__ lists {entry!r} more than once",
                    snippet=source.snippet(line),
                )
            if entry not in defined:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=line,
                    message=f"__all__ lists {entry!r} but the module never "
                    "defines it",
                    snippet=source.snippet(line),
                )


@register_rule
class DunderAllCoversRule(FileRule):
    """R502: public top-level defs are exported (or underscored)."""

    id = "R502"
    summary = "public top-level callable missing from __all__"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        entries, _ = _declared_all(source.tree)
        if entries is None:
            return
        exported = set(entries)
        for node in _public_toplevel_defs(source.tree):
            if node.name not in exported:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"'{node.name}' is not in __all__; export it or prefix "
                    "with an underscore",
                    snippet=source.snippet(node.lineno),
                )


@register_rule
class DunderAllPresentRule(FileRule):
    """R503: modules declare their public surface."""

    id = "R503"
    summary = "module does not declare __all__"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        if source.module in project.config.all_exempt_modules:
            return
        entries, _ = _declared_all(source.tree)
        if entries is None:
            yield Violation(
                rule=self.id,
                path=source.rel,
                line=1,
                message="module has no __all__; declare its public surface",
                snippet=source.snippet(1),
            )


def _signature_slots(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[int, int, list[str]]:
    """(annotated, total, missing-names) over parameters and return.

    ``self``/``cls`` are excluded; ``__init__`` has no return slot
    (its return is always None by construction).
    """
    args = list(node.args.posonlyargs) + list(node.args.args)
    args = [a for a in args if a.arg not in ("self", "cls")]
    args += list(node.args.kwonlyargs)
    args += [a for a in (node.args.vararg, node.args.kwarg) if a is not None]
    total = len(args)
    annotated = sum(1 for a in args if a.annotation is not None)
    missing = [a.arg for a in args if a.annotation is None]
    if node.name != "__init__":
        total += 1
        if node.returns is not None:
            annotated += 1
        else:
            missing.append("return")
    return annotated, total, missing


def _public_callables(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Public module-level functions and public/``__init__`` methods
    of public classes."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                yield node
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if member.name == "__init__" or not member.name.startswith("_"):
                    yield member


@register_rule
class StrictAnnotationRule(FileRule):
    """R504: strict packages keep public signatures fully annotated."""

    id = "R504"
    summary = "missing annotation on a public signature in a strict package"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        prefixes = project.config.strict_annotation_prefixes
        if not any(
            source.module == p or source.module.startswith(p + ".") for p in prefixes
        ):
            return
        for node in _public_callables(source.tree):
            annotated, total, missing = _signature_slots(node)
            if annotated < total:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=f"'{node.name}' missing annotations for: "
                    + ", ".join(missing),
                    snippet=source.snippet(node.lineno),
                )


@register_rule
class PublicDocstringRule(FileRule):
    """R505: public top-level callables carry docstrings."""

    id = "R505"
    summary = "public top-level function/class without a docstring"

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterator[Violation]:
        for node in _public_toplevel_defs(source.tree):
            if ast.get_docstring(node) is None:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=node.lineno,
                    message=f"public '{node.name}' has no docstring",
                    snippet=source.snippet(node.lineno),
                )


def annotation_coverage(project: Project) -> dict:
    """Per-package public-signature annotation coverage (the R5 metric)."""
    per_package: dict[str, list[int]] = {}
    for source in project.files:
        counts = per_package.setdefault(source.package or source.module, [0, 0])
        for node in _public_callables(source.tree):
            annotated, total, _ = _signature_slots(node)
            counts[0] += annotated
            counts[1] += total
    packages = {
        name: {
            "annotated": annotated,
            "slots": total,
            "coverage": round(annotated / total, 4) if total else 1.0,
        }
        for name, (annotated, total) in sorted(per_package.items())
    }
    annotated_sum = sum(v["annotated"] for v in packages.values())
    slot_sum = sum(v["slots"] for v in packages.values())
    return {
        "packages": packages,
        "total": {
            "annotated": annotated_sum,
            "slots": slot_sum,
            "coverage": round(annotated_sum / slot_sum, 4) if slot_sum else 1.0,
        },
    }
