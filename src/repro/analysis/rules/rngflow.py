"""R9: RNG-stream discipline (flow-sensitive).

The kernel hands out *named* generator streams — ``kernel.stream(key,
cid)`` — and bit-reproducibility holds only while a stream stays with
the key it was created under.  R101 can ban ``np.random.*`` syntactically,
but the dangerous regressions are flow shaped:

* **R901** — a stream value stored into an attribute or container:
  shared state now aliases a per-call stream, and two call sites will
  interleave draws non-deterministically.
* **R902** — a stream drawn from (or passed on) after one of the key
  variables it was created with was rebound: the draws no longer
  belong to the client/purpose the key named.
* **R903** — a stream both drawn from locally *and* escaping (passed
  to a callee, returned, yielded, or handed to two callees): two
  consumers now share one generator's sequence.  Pure forwarders —
  ``return kernel.stream("retry", cid)`` with zero local draws — stay
  clean; that is the sanctioned way to hand a stream onward.

Taint starts at calls of the configured stream methods
(:attr:`LintConfig.stream_methods`) and propagates through name
copies; reaching definitions supply the key-rebinding signal.  The
kernel module itself (:attr:`LintConfig.stream_factory_modules`) is
exempt — it owns the per-key cache these rules protect.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileRule, Violation, register_rule
from repro.analysis.dataflow import (
    DataflowAnalysis,
    bound_names,
    join_union_maps,
    solve,
)
from repro.analysis.project import Project, SourceFile
from repro.analysis.rules.flowbase import FuncFlow, flow_cache, function_flows

__all__ = ["R901StreamShared", "R902KeyRebound", "R903DrawAndEscape"]


def _is_source_call(expr: ast.expr, methods: frozenset[str]) -> bool:
    """``kernel.stream(...)`` / ``self._kernel.client_rng(...)``."""
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in methods
    )


def _call_key_names(call: ast.Call) -> set[str]:
    """Simple variable names appearing in the stream call's arguments."""
    names: set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                names.add(node.id)
    return names


def _source_sites(
    flow: FuncFlow, methods: frozenset[str]
) -> dict[int, tuple[list[str], dict[str, frozenset]]]:
    """CFG nodes assigning a fresh stream to local name(s).

    Maps node idx → (bound names, snapshot of each key variable's
    reaching definitions at the call).
    """
    sites: dict[int, tuple[list[str], dict[str, frozenset]]] = {}
    for node in flow.cfg.stmt_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Assign) or not _is_source_call(stmt.value, methods):
            continue
        targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        if not targets:
            continue  # attribute targets are R901's business, not taint's
        rd_in = flow.reaching.at(node.idx, {})
        snapshot = {
            name: rd_in.get(name, frozenset())
            for name in _call_key_names(stmt.value)
        }
        sites[node.idx] = (targets, snapshot)
    return sites


class _StreamTaint(DataflowAnalysis):
    """var → set of stream-site node indices that may flow into it."""

    def __init__(self, sites: dict[int, tuple[list[str], dict[str, frozenset]]]):
        self.sites = sites

    def bottom(self) -> dict:
        return {}

    def join(self, a: dict, b: dict) -> dict:
        return join_union_maps(a, b)

    def transfer(self, node, state: dict) -> dict:
        stmt = node.stmt
        assert stmt is not None
        if node.idx in self.sites:
            new = dict(state)
            for name in self.sites[node.idx][0]:
                new[name] = frozenset({node.idx})
            return new
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
            source_taint = state.get(stmt.value.id)
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if targets:
                new = dict(state)
                for name in targets:
                    if source_taint:
                        new[name] = source_taint
                    else:
                        new.pop(name, None)
                return new
        killed = bound_names(stmt)
        if killed:
            new = dict(state)
            for name in killed:
                new.pop(name, None)
            return new
        return state


def _stream_uses(stmt: ast.stmt, tainted: frozenset[str]):
    """(draws, escapes) of tainted names inside one statement.

    A draw is a method call on the stream (``rng.normal()``); an
    escape hands the stream object onward (call argument, return,
    yield).  Draw bases are excluded from escape collection so
    ``f(rng.normal())`` escapes the *draw result*, not the stream.
    """
    draws: list[tuple[str, int]] = []
    escapes: list[tuple[str, int]] = []
    draw_bases: set[int] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in tainted
            ):
                draws.append((func.value.id, node.lineno))
                draw_bases.add(id(func.value))
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for name in ast.walk(arg):
                    if (
                        isinstance(name, ast.Name)
                        and name.id in tainted
                        and isinstance(name.ctx, ast.Load)
                        and id(name) not in draw_bases
                    ):
                        escapes.append((name.id, name.lineno))
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None:
                for name in ast.walk(value):
                    if (
                        isinstance(name, ast.Name)
                        and name.id in tainted
                        and id(name) not in draw_bases
                    ):
                        escapes.append((name.id, name.lineno))
    return draws, escapes


def _analyse(source: SourceFile, project: Project) -> list[tuple[str, int, str]]:
    """All R9 findings for one file: (rule id, line, message)."""
    cache = flow_cache(project)
    key = ("r9", source.rel)
    if key in cache:
        return cache[key]
    config = project.config
    findings: list[tuple[str, int, str]] = []
    if source.module in config.stream_factory_modules:
        cache[key] = findings
        return findings

    for flow in function_flows(source, project):
        sites = _source_sites(flow, config.stream_methods)
        # R901 needs no taint for the direct form.
        for node in flow.cfg.stmt_nodes():
            stmt = node.stmt
            if isinstance(stmt, ast.Assign) and _is_source_call(
                stmt.value, config.stream_methods
            ):
                for target in stmt.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        findings.append(
                            (
                                "R901",
                                stmt.lineno,
                                "RNG stream stored into shared state; "
                                "re-request it from the kernel by key instead",
                            )
                        )
        if not sites:
            continue

        taint = solve(flow.cfg, _StreamTaint(sites))
        token_keys = {idx: snapshot for idx, (_t, snapshot) in sites.items()}
        per_token: dict[int, tuple[set[int], set[int]]] = {}
        reported_r902: set[tuple[int, str, int]] = set()

        for node in flow.cfg.stmt_nodes():
            state = taint.at(node.idx)
            if not state:
                continue
            tainted = frozenset(n for n, toks in state.items() if toks)
            if not tainted:
                continue
            stmt = node.stmt
            # R901, indirect form: a tainted name stored into shared state.
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
                if stmt.value.id in tainted and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in stmt.targets
                ):
                    findings.append(
                        (
                            "R901",
                            stmt.lineno,
                            f"RNG stream '{stmt.value.id}' stored into shared "
                            "state; re-request it from the kernel by key instead",
                        )
                    )
            draws, escapes = _stream_uses(stmt, tainted)
            rd_here = flow.reaching.at(node.idx, {})
            for name, line in draws + escapes:
                for token in state.get(name, ()):
                    snapshot = token_keys.get(token, {})
                    for var, defs in snapshot.items():
                        if var == name:
                            continue  # the stream variable itself
                        if rd_here.get(var, frozenset()) != defs:
                            mark = (token, var, line)
                            if mark not in reported_r902:
                                reported_r902.add(mark)
                                findings.append(
                                    (
                                        "R902",
                                        line,
                                        f"RNG stream '{name}' used after key "
                                        f"variable '{var}' was rebound; the "
                                        "draws no longer belong to the key "
                                        "it was created under",
                                    )
                                )
                    bucket = per_token.setdefault(token, (set(), set()))
                    if (name, line) in draws:
                        bucket[0].add(line)
            for name, line in escapes:
                for token in state.get(name, ()):
                    per_token.setdefault(token, (set(), set()))[1].add(line)

        for token, (draw_lines, escape_lines) in sorted(per_token.items()):
            if escape_lines and (draw_lines or len(escape_lines) >= 2):
                line = min(escape_lines)
                what = (
                    "drawn from locally and also passed onward"
                    if draw_lines
                    else "passed to multiple call sites"
                )
                findings.append(
                    (
                        "R903",
                        line,
                        f"RNG stream is {what}; two consumers would share "
                        "one generator sequence — pass the key and let each "
                        "call site request its own stream",
                    )
                )

    findings.sort(key=lambda f: (f[1], f[0]))
    cache[key] = findings
    return findings


class _R9Base(FileRule):
    def check_file(self, source: SourceFile, project: Project):
        for rule_id, line, message in _analyse(source, project):
            if rule_id == self.id:
                yield Violation(
                    rule=self.id,
                    path=source.rel,
                    line=line,
                    message=message,
                    snippet=source.snippet(line),
                )


@register_rule
class R901StreamShared(_R9Base):
    """R901: an RNG stream is stored into a shared attribute or container."""

    id = "R901"
    summary = "RNG streams must not be stored into shared attributes/containers"


@register_rule
class R902KeyRebound(_R9Base):
    """R902: an RNG stream is drawn from after its key variable was rebound."""

    id = "R902"
    summary = "RNG streams must not be used after their key variable is rebound"


@register_rule
class R903DrawAndEscape(_R9Base):
    """R903: an RNG stream is both drawn from locally and handed away."""

    id = "R903"
    summary = "an RNG stream has one consumer: draw locally or forward, not both"
