"""Abstract value domains — numpy dtypes for the R10 rule family.

A tiny non-relational domain: each variable maps to one abstract
dtype.  Array-valued expressions carry ``f32``/``f64``/``int``/
``bool``/``obj``; python scalars carry the *weak* kinds ``pyfloat``/
``pyint``/``pybool`` (NEP 50: a python scalar adopts the array's
dtype instead of promoting it).  ``None`` means unknown — the domain
only reports on pairs it actually knows, so unknowns silence rather
than spam.

:func:`promote` mirrors the numpy promotion table closely enough for
lint purposes and additionally *classifies* the promotions the hot
path must not contain: a float32 operand silently widening to float64
(``PROMOTES``) and an int-array/float-array mix forcing an upcast
copy of the int side (``MIXED``).
"""

from __future__ import annotations

import ast

__all__ = [
    "F32",
    "F64",
    "INT",
    "BOOL",
    "OBJ",
    "PYFLOAT",
    "PYINT",
    "PYBOOL",
    "ARRAY_KINDS",
    "WEAK_KINDS",
    "MIXED",
    "PROMOTES",
    "infer_dtype",
    "join_dtype",
    "parse_dtype_expr",
    "promote",
]

F32 = "float32"
F64 = "float64"
INT = "int"
BOOL = "bool"
OBJ = "object"
PYFLOAT = "pyfloat"
PYINT = "pyint"
PYBOOL = "pybool"

ARRAY_KINDS = frozenset({F32, F64, INT, BOOL, OBJ})
WEAK_KINDS = frozenset({PYFLOAT, PYINT, PYBOOL})

# Promotion classifications returned alongside the result dtype.
PROMOTES = "float32→float64"
MIXED = "int/float mix"

_DTYPE_NAMES = {
    "float32": F32,
    "single": F32,
    "f4": F32,
    "float64": F64,
    "double": F64,
    "f8": F64,
    "float": F64,  # np.float_ / dtype("float") are 64-bit
    "float_": F64,
    "int8": INT,
    "int16": INT,
    "int32": INT,
    "int64": INT,
    "int": INT,
    "intp": INT,
    "uint8": INT,
    "uint16": INT,
    "uint32": INT,
    "uint64": INT,
    "bool": BOOL,
    "bool_": BOOL,
    "object": OBJ,
    "object_": OBJ,
    "O": OBJ,
}

# Calls returning an array of the same dtype as their first argument
# (for float inputs; int inputs mostly give float64, which we treat
# as unknown rather than model precisely).
_FLOAT_PRESERVING_CALLS = frozenset(
    {
        "abs",
        "absolute",
        "add",
        "ascontiguousarray",
        "clip",
        "concatenate",
        "copy",
        "cumsum",
        "diff",
        "dot",
        "exp",
        "flatten",
        "log",
        "matmul",
        "maximum",
        "minimum",
        "multiply",
        "negative",
        "ravel",
        "reshape",
        "sign",
        "sqrt",
        "square",
        "stack",
        "subtract",
        "sum",
        "tanh",
        "transpose",
        "where",
    }
)


def parse_dtype_expr(node: ast.expr | None) -> str | None:
    """The abstract dtype a ``dtype=`` argument denotes, if decidable.

    Handles ``np.float32``, string literals, ``np.dtype("f4")``,
    builtin ``float``/``int``/``bool``/``object`` names.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value)
    if isinstance(node, ast.Attribute):
        return _DTYPE_NAMES.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_NAMES.get(node.id)
    if isinstance(node, ast.Call):  # np.dtype("float32")
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name == "dtype" and node.args:
            return parse_dtype_expr(node.args[0])
    return None


def join_dtype(a: str | None, b: str | None) -> str | None:
    """Lattice join: agreeing dtypes survive, anything else is unknown."""
    return a if a == b else None


def promote(a: str | None, b: str | None) -> tuple[str | None, str | None]:
    """(result dtype, flag) of a binary op between ``a`` and ``b``.

    The flag is :data:`PROMOTES` for a silent float32→float64 widening,
    :data:`MIXED` for an int-array × float-array upcast copy, else
    ``None``.  Unknown operands yield unknown and never flag.
    """
    if a is None or b is None:
        return None, None
    if OBJ in (a, b):
        return OBJ, None
    if a == b:
        return a, None
    weak_a, weak_b = a in WEAK_KINDS, b in WEAK_KINDS
    if weak_a and weak_b:
        order = {PYBOOL: 0, PYINT: 1, PYFLOAT: 2}
        return (a if order[a] >= order[b] else b), None
    if weak_a or weak_b:
        array, weak = (b, a) if weak_a else (a, b)
        # NEP 50 weak promotion: the array dtype wins, except a python
        # float touching an int/bool array which becomes float64.
        if weak == PYFLOAT and array in (INT, BOOL):
            return F64, None
        return array, None
    # Both array kinds, different.
    if {a, b} == {F32, F64}:
        return F64, PROMOTES
    if BOOL in (a, b):
        return (a if b == BOOL else b), None
    if INT in (a, b):
        other = a if b == INT else b
        # int64 × float32 promotes all the way to float64.
        result = F64 if other in (F32, F64) else other
        return result, MIXED
    return None, None


def _call_name(func: ast.expr) -> str:
    """Trailing identifier of a call target (``np.sum`` → ``sum``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dtype_kwarg(call: ast.Call) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


def infer_dtype(expr: ast.expr, env: dict[str, str]) -> str | None:
    """Abstract dtype of ``expr`` under variable environment ``env``.

    ``env`` maps local names — and ``"self.X"`` pseudo-names for
    instance attributes — to abstract dtypes.  Anything the domain
    cannot decide is ``None`` (unknown), never a guess.
    """
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return PYBOOL
        if isinstance(expr.value, int):
            return PYINT
        if isinstance(expr.value, float):
            return PYFLOAT
        return None
    if isinstance(expr, ast.Name):
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return env.get(f"self.{expr.attr}")
        if expr.attr == "T":
            return infer_dtype(expr.value, env)
        return None
    if isinstance(expr, ast.Subscript):
        # Indexing/slicing an array yields the same dtype.
        return infer_dtype(expr.value, env)
    if isinstance(expr, ast.UnaryOp):
        return infer_dtype(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        left = infer_dtype(expr.left, env)
        right = infer_dtype(expr.right, env)
        result, _flag = promote(left, right)
        return result
    if isinstance(expr, ast.IfExp):
        return join_dtype(
            infer_dtype(expr.body, env), infer_dtype(expr.orelse, env)
        )
    if isinstance(expr, ast.Compare):
        operand = infer_dtype(expr.left, env)
        return BOOL if operand in ARRAY_KINDS else PYBOOL
    if isinstance(expr, ast.Call):
        return _infer_call(expr, env)
    return None


def _infer_call(call: ast.Call, env: dict[str, str]) -> str | None:
    name = _call_name(call.func)
    explicit = parse_dtype_expr(_dtype_kwarg(call))
    if explicit is not None:
        return explicit
    if name == "astype" and isinstance(call.func, ast.Attribute) and call.args:
        return parse_dtype_expr(call.args[0])
    if name in ("float32", "single"):
        return F32
    if name in ("float64", "double"):
        return F64
    if name == "float":
        return PYFLOAT
    if name in ("int", "len"):
        return PYINT
    if name == "bool":
        return PYBOOL
    if name in ("zeros", "ones", "empty", "full", "linspace"):
        return F64  # numpy default when no dtype= was given
    if name == "arange":
        if call.args:
            arg = infer_dtype(call.args[0], env)
            if arg == PYINT:
                return INT
            if arg == PYFLOAT:
                return F64
        return None
    if name in ("array", "asarray", "ascontiguousarray", "copy", "ravel",
                "reshape", "flatten", "transpose", "squeeze", "view"):
        base = (
            call.func.value
            if isinstance(call.func, ast.Attribute)
            else (call.args[0] if call.args else None)
        )
        return infer_dtype(base, env) if base is not None else None
    if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
        return infer_dtype(call.args[0], env) if call.args else None
    if name in _FLOAT_PRESERVING_CALLS:
        base = (
            call.func.value
            if isinstance(call.func, ast.Attribute) and not _looks_like_module(call.func.value)
            else (call.args[0] if call.args else None)
        )
        if base is None:
            return None
        operand = infer_dtype(base, env)
        if operand in (F32, F64):
            if len(call.args) >= 2 and isinstance(call.func, ast.Attribute):
                # np.dot(a, b) / np.maximum(a, b): promote both sides.
                second = infer_dtype(call.args[1], env)
                result, _ = promote(operand, second)
                return result
            return operand
        return None
    return None


def _looks_like_module(node: ast.expr) -> bool:
    """Heuristic: ``np.sum(x)`` — the attribute base is a module alias."""
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")
