"""Lint configuration: the repo's invariants, written down as data.

Every rule family reads its project-specific knowledge from
:class:`LintConfig` rather than hard-coding it, so the test suite can
lint synthetic fixture projects with a scaled-down configuration and
the shipped defaults stay in one reviewable place:

* which package layers may import which (:data:`ALLOWED_DEPS` — the
  DAG behind rule R201);
* which modules are deprecated shims (R203);
* where the trace taxonomy is declared and who must consume it
  (R301-R304);
* which modules are benchmark-pinned hot paths (R4);
* which packages require complete public annotations (R504).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = [
    "LintConfig",
    "ALLOWED_DEPS",
    "HOTPATH_MODULES",
    "default_config",
    "default_src_root",
    "default_lint_paths",
    "default_baseline_path",
]

# ----------------------------------------------------------------------
# R2: the package DAG.  Key: second-level package under ``repro``;
# value: packages it may import.  ``nn``/``compression``/``sim``/
# ``data``/``analysis`` are leaves; ``fl`` builds on the substrate;
# ``core`` (AdaFL) builds on ``fl``; ``experiments`` and the CLI sit on
# top.  Anything absent from a value set — in particular ``fl``,
# ``experiments``, and ``cli`` from any substrate package — is a
# layering violation.
# ----------------------------------------------------------------------
ALLOWED_DEPS: Mapping[str, frozenset[str]] = {
    "nn": frozenset(),
    "wire": frozenset(),
    "compression": frozenset({"wire"}),
    "sim": frozenset({"wire"}),
    "data": frozenset(),
    "analysis": frozenset(),
    "network": frozenset({"sim"}),
    "embedded": frozenset({"nn"}),
    "transport": frozenset({"compression", "sim", "wire"}),
    "fl": frozenset(
        {
            "compression",
            "data",
            "embedded",
            "network",
            "nn",
            "sim",
            "transport",
            "wire",
        }
    ),
    "core": frozenset(
        {"compression", "data", "fl", "network", "nn", "sim", "wire"}
    ),
    "experiments": frozenset(
        {
            "compression",
            "core",
            "data",
            "embedded",
            "fl",
            "network",
            "nn",
            "sim",
            "transport",
        }
    ),
    "cli": frozenset(
        {
            "analysis",
            "compression",
            "core",
            "data",
            "embedded",
            "experiments",
            "fl",
            "network",
            "nn",
            "sim",
            "transport",
            "wire",
        }
    ),
}

# ----------------------------------------------------------------------
# R4: modules on the flat-parameter / DGC / conv hot paths pinned by
# BENCH_hotpath.json (sections flat_roundtrip, local_train,
# dgc_roundtrip, conv_fwd_bwd).  Allocation and copy discipline is
# enforced only here — elsewhere clarity wins.
# ----------------------------------------------------------------------
HOTPATH_MODULES: frozenset[str] = frozenset(
    {
        "repro.nn.sequential",
        "repro.nn.subspace",
        "repro.nn.optim",
        "repro.nn.conv_utils",
        "repro.nn.layers",
        "repro.nn.batched",
        "repro.compression.dgc",
        "repro.compression.topk",
        "repro.compression.error_feedback",
        "repro.fl.client",
    }
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint pass (defaults describe this repo)."""

    # Root package the layering/taxonomy rules reason about.
    package: str = "repro"
    # R1: module suffixes where legacy RNG / wall-clock calls are
    # legitimate (none in src today; tests inject their own).
    rng_allowed_modules: frozenset[str] = frozenset()
    # R2
    allowed_deps: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(ALLOWED_DEPS)
    )
    deprecated_modules: Mapping[str, str] = field(
        default_factory=lambda: {"repro.network.events": "repro.sim.events"}
    )
    # R3: where the taxonomy lives and which consumers must reference
    # which of its names.
    taxonomy_module: str = "repro.sim.trace"
    taxonomy_consumers: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: {
            "repro.fl.metrics": (
                "COUNTED_DROP_REASONS",
                "REJECTED_DROP_REASONS",
            ),
            "repro.experiments.chaos": (
                "COUNTED_DROP_REASONS",
                "REJECTED_DROP_REASONS",
            ),
            "repro.sim.analysis": ("DROPPED",),
        }
    )
    # R4
    hotpath_modules: frozenset[str] = HOTPATH_MODULES
    # R5: packages whose *public* callables must be fully annotated.
    strict_annotation_prefixes: tuple[str, ...] = (
        "repro.sim",
        "repro.fl.config",
        "repro.nn.subspace",
        "repro.experiments.sweep",
    )
    # R6: the only modules that may call the analytic byte-size
    # formulas directly (the wire layer owns them; compression.base
    # re-exports for backwards compatibility).
    size_formula_modules: tuple[str, ...] = (
        "repro.wire",
        "repro.compression.base",
    )
    # Modules exempt from the module-level ``__all__`` requirement.
    all_exempt_modules: frozenset[str] = frozenset({"repro.__main__"})
    # R7: client lifecycle ownership.  Only the population registry may
    # construct Clients or sweep the full population; engine, strategy,
    # and selection modules go through the registry's cohort API.
    population_module: str = "repro.fl.population"
    population_restricted_modules: frozenset[str] = frozenset(
        {
            "repro.fl.sync_engine",
            "repro.fl.async_engine",
            "repro.fl.batched",
            "repro.fl.strategy",
            "repro.fl.baselines",
            "repro.fl.fedat",
            "repro.core.selection",
            "repro.core.adafl",
        }
    )
    # R8: the only package that may touch raw sockets or spawn
    # processes.  Everything else goes through its API, so the
    # frame/CRC/deadline discipline and worker teardown stay airtight.
    transport_package: str = "repro.transport"
    raw_transport_modules: frozenset[str] = frozenset(
        {"socket", "subprocess", "multiprocessing", "asyncio"}
    )
    # R9 (flow): methods whose return value is a seeded RNG stream.
    # The kernel module itself is exempt — it *owns* the per-key
    # generator cache, so storing/returning streams there is the point.
    stream_methods: frozenset[str] = frozenset({"stream", "client_rng"})
    stream_factory_modules: frozenset[str] = frozenset({"repro.sim.kernel"})
    # R11 (flow): where the resource-lifecycle rules run, and what
    # counts as acquiring/releasing a leakable resource.  Acquirers
    # match on the trailing dotted name of the call (``sockets.dial``
    # matches ``dial``); tuple acquirers bind the resource to the
    # first element of a tuple-unpack target (``sock, _ = accept()``).
    lifecycle_module_prefixes: tuple[str, ...] = (
        "repro.transport",
        "repro.fl.population",
    )
    resource_acquirers: frozenset[str] = frozenset(
        {"socket.socket", "open", "dial", "os.fdopen"}
    )
    resource_tuple_acquirers: frozenset[str] = frozenset(
        {"accept", "open_listener", "socketpair"}
    )
    resource_release_methods: frozenset[str] = frozenset({"close"})
    resource_release_funcs: frozenset[str] = frozenset(
        {"close_quietly", "_close_quietly"}
    )
    # R1103: destructive one-way takes from shared containers that
    # must be committed (re-stored) before any raise can escape.
    destructive_take_methods: frozenset[str] = frozenset({"discard"})

    def module_rng_allowed(self, module: str) -> bool:
        """Whether R1 is switched off for ``module``."""
        return any(
            module == m or module.endswith("." + m) for m in self.rng_allowed_modules
        )


def default_config() -> LintConfig:
    """The shipped configuration for linting this repository."""
    return LintConfig()


def default_src_root() -> Path:
    """The ``src/`` directory this installed ``repro`` package lives in."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def default_lint_paths() -> list[Path]:
    """What ``repro lint`` checks when no paths are given: the package."""
    return [default_src_root() / "repro"]


def default_baseline_path() -> Path:
    """Repo-root ``LINT_baseline.json`` next to ``BENCH_hotpath.json``."""
    return default_src_root().parent / "LINT_baseline.json"
