"""Project model: parsed source files and the cross-file import graph.

:class:`SourceFile` is one parsed module — AST, raw lines, pragma
table, and its dotted module name.  :class:`Project` is the set of
files one lint pass sees plus everything the project rules need to
cross-reference them: a module index and the intra-package import
graph (module-level and function-level imports recorded separately,
because lazy imports are a legitimate layering *deferral* but still a
layering *dependency*).

Module names are derived from the path relative to the source root
(``src/repro/sim/trace.py`` → ``repro.sim.trace``); snippet files
outside any package — the test fixtures — can be loaded with an
explicit module name via :meth:`SourceFile.from_path`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.config import LintConfig, default_config
from repro.analysis.core import parse_pragmas

__all__ = ["SourceFile", "ImportEdge", "Project", "LintError", "SourceLoader"]

# (path, module=..., rel=...) -> SourceFile; see Project.load(loader=...).
SourceLoader = Callable[..., "SourceFile"]


class LintError(Exception):
    """Unrecoverable lint-pass failure (unreadable/unparsable input)."""


@dataclass(frozen=True)
class ImportEdge:
    """One import statement resolved to a target module."""

    target: str  # dotted module actually imported ("repro.fl.metrics")
    line: int
    toplevel: bool  # False for imports nested in a function/method
    names: tuple[str, ...] = ()  # names bound by ``from target import a, b``


@dataclass
class SourceFile:
    """One parsed Python source file."""

    path: Path
    rel: str  # repo-relative posix path used in reports
    module: str  # dotted module name ("repro.sim.trace")
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    pragmas: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_path(
        cls, path: Path, module: str, rel: str | None = None
    ) -> "SourceFile":
        """Parse ``path`` as module ``module``; raises LintError on syntax errors."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"syntax error in {path}: {exc}") from exc
        lines = text.splitlines()
        return cls(
            path=path,
            rel=rel if rel is not None else path.as_posix(),
            module=module,
            text=text,
            tree=tree,
            lines=lines,
            pragmas=parse_pragmas(lines),
        )

    @property
    def package(self) -> str:
        """Second-level package key (``repro.sim.trace`` → ``sim``).

        Top-level modules (``repro.cli``, ``repro.__init__``) map to
        their own name; non-package snippets map to ``""``.
        """
        parts = self.module.split(".")
        if len(parts) < 2:
            return ""
        return parts[1]

    def snippet(self, line: int) -> str:
        """The stripped source text of a 1-based line (for baselines)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def imports(self) -> Iterator[ImportEdge]:
        """Every import in the file, resolved to absolute module targets."""
        for node in ast.walk(self.tree):
            toplevel = getattr(node, "col_offset", 1) == 0
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield ImportEdge(alias.name, node.lineno, toplevel)
            elif isinstance(node, ast.ImportFrom):
                target = node.module or ""
                if node.level:  # resolve "from . import x" relative imports
                    base = self.module.split(".")
                    # level 1 from a module means its own package
                    anchor = base[: len(base) - node.level]
                    target = ".".join(anchor + ([target] if target else []))
                if target:
                    names = tuple(alias.name for alias in node.names)
                    yield ImportEdge(target, node.lineno, toplevel, names)


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to source root ``root``."""
    rel = path.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Project:
    """Everything one lint pass looks at."""

    def __init__(
        self,
        files: Iterable[SourceFile],
        repo_root: Path | None = None,
        config: LintConfig | None = None,
    ):
        self.files: list[SourceFile] = sorted(files, key=lambda f: f.rel)
        self.repo_root = repo_root
        self.config = config if config is not None else default_config()
        self.by_module: dict[str, SourceFile] = {f.module: f for f in self.files}

    @classmethod
    def load(
        cls,
        paths: Iterable[Path],
        src_root: Path,
        repo_root: Path | None = None,
        config: LintConfig | None = None,
        loader: "SourceLoader | None" = None,
    ) -> "Project":
        """Collect ``*.py`` under ``paths``; module names hang off ``src_root``.

        ``repo_root`` (default: parent of ``src_root``) anchors the
        repo-relative paths used in reports and baseline entries.
        ``loader`` swaps the per-file parser — the incremental pass
        injects a content-hash cache this way.
        """
        load_one = loader if loader is not None else SourceFile.from_path
        src_root = src_root.resolve()
        repo_root = (repo_root or src_root.parent).resolve()
        seen: set[Path] = set()
        files: list[SourceFile] = []
        for entry in paths:
            entry = Path(entry).resolve()
            candidates = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
            for path in candidates:
                if path in seen:
                    continue
                seen.add(path)
                try:
                    rel = path.relative_to(repo_root).as_posix()
                except ValueError:
                    rel = path.as_posix()
                module = (
                    _module_name(path, src_root)
                    if src_root in path.parents
                    else path.stem
                )
                files.append(load_one(path, module=module, rel=rel))
        return cls(files, repo_root=repo_root, config=config)

    def __len__(self) -> int:
        return len(self.files)

    def resolve(self, module: str) -> SourceFile | None:
        """The project file defining ``module``, if any (package inits too)."""
        return self.by_module.get(module)

    def internal_import_graph(
        self, package_root: str, toplevel_only: bool = False
    ) -> dict[str, list[tuple[str, ImportEdge, SourceFile]]]:
        """Module → imported project modules, restricted to ``package_root``.

        Import targets are normalised to a module present in the
        project: ``from repro.sim.trace import DROPPED`` maps to
        ``repro.sim.trace``; ``from repro.sim import SimKernel`` maps
        to the package ``__init__`` module ``repro.sim``.
        """
        prefix = package_root + "."
        graph: dict[str, list[tuple[str, ImportEdge, SourceFile]]] = {}
        for source in self.files:
            edges = graph.setdefault(source.module, [])
            for edge in source.imports():
                if edge.target != package_root and not edge.target.startswith(prefix):
                    continue
                if toplevel_only and not edge.toplevel:
                    continue
                # ``from pkg import name`` binds submodules when they
                # exist; the dependency is then on the submodule, not
                # on the package __init__ (else every sibling import
                # would fabricate a cycle through the package).
                targets = set()
                unresolved = not edge.names
                for name in edge.names:
                    sub = f"{edge.target}.{name}"
                    if sub in self.by_module:
                        targets.add(sub)
                    else:
                        unresolved = True
                if unresolved:
                    targets.add(edge.target)
                for target in sorted(targets):
                    if target in self.by_module and target != source.module:
                        edges.append((target, edge, source))
        return graph
