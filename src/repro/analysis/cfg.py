"""Intraprocedural control-flow graphs over stdlib ``ast``.

One :class:`CFG` per function (or module body): statement-granularity
nodes plus three synthetic nodes — ``entry``, ``exit`` (normal
returns/fall-off), and ``raise_exit`` (uncaught exceptions).  Edges
carry a kind, :data:`NORMAL` or :data:`EXCEPTION`, so dataflow rules
can distinguish "close() ran" from "close() was skipped by a raise".

Modelling decisions (all deliberately conservative for a linter):

* Compound statements contribute one node for their *header*
  expression (``if``/``while`` test, ``for`` iterator, ``with``
  context expression); bodies are flattened into their own nodes.
* Any statement whose expressions could plausibly raise — calls,
  attribute/subscript access, arithmetic, ``assert``, ``raise`` —
  gets an :data:`EXCEPTION` edge to the innermost handler (or the
  ``finally`` block, or ``raise_exit``).  Exception *types* are not
  modelled: every handler is assumed to catch.
* ``finally`` bodies are built once, with the normal continuation and
  an :data:`EXCEPTION` edge onward to the enclosing handler or
  ``raise_exit``.  ``return``/``break``/``continue`` crossing a
  ``finally`` are routed through its block to their target.  This
  conflates the finally's several dynamic contexts into one static
  block — sound for the may-analyses reprolint runs.
* Nested ``def``/``class`` bodies are opaque: the statement binds a
  name and evaluates decorators/defaults, nothing more.  Analyse
  nested functions as their own CFGs (:func:`function_cfgs`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "CFG",
    "CFGNode",
    "NORMAL",
    "EXCEPTION",
    "build_cfg",
    "function_cfgs",
]

NORMAL = "normal"
EXCEPTION = "exception"

# AST expression nodes whose evaluation can raise at runtime.  Name
# loads (NameError) are excluded as noise; comprehensions count via
# the calls/subscripts they contain.
_RAISING_EXPR = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.UnaryOp,
    ast.Compare,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Starred,
)


@dataclass
class CFGNode:
    """One CFG node: a statement, or a synthetic marker.

    ``kind`` is ``"stmt"`` for real statements, ``"join"`` for
    synthetic pass-through anchors (handler heads, finally entries),
    and ``"entry"``/``"exit"``/``"raise_exit"`` for the graph ends.
    """

    idx: int
    stmt: ast.stmt | None
    kind: str
    label: str = ""

    @property
    def line(self) -> int:
        """Source line of the statement (0 for synthetic nodes)."""
        return getattr(self.stmt, "lineno", 0)


@dataclass
class CFG:
    """A directed graph of :class:`CFGNode` with kinded edges."""

    name: str
    nodes: list[CFGNode] = field(default_factory=list)
    succ: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    pred: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    entry: int = -1
    exit: int = -1
    raise_exit: int = -1

    def add_node(self, stmt: ast.stmt | None, kind: str = "stmt", label: str = "") -> int:
        idx = len(self.nodes)
        self.nodes.append(CFGNode(idx=idx, stmt=stmt, kind=kind, label=label))
        self.succ[idx] = []
        self.pred[idx] = []
        return idx

    def add_edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self.succ[src]:
            self.succ[src].append((dst, kind))
            self.pred[dst].append((src, kind))

    def successors(self, idx: int) -> list[tuple[int, str]]:
        return self.succ[idx]

    def predecessors(self, idx: int) -> list[tuple[int, str]]:
        return self.pred[idx]

    def stmt_nodes(self) -> Iterator[CFGNode]:
        """The real statement nodes, in creation (roughly source) order."""
        for node in self.nodes:
            if node.kind == "stmt" and node.stmt is not None:
                yield node

    def reachable(self) -> set[int]:
        """Node indices reachable from ``entry`` over any edge kind."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            stack.extend(dst for dst, _ in self.succ[idx])
        return seen

    def rpo(self) -> list[int]:
        """Reverse postorder from entry — a good worklist seed order."""
        order: list[int] = []
        seen: set[int] = {self.entry}
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        while stack:
            idx, child = stack[-1]
            succs = self.succ[idx]
            if child < len(succs):
                stack[-1] = (idx, child + 1)
                nxt = succs[child][0]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(idx)
                stack.pop()
        order.reverse()
        return order


def _can_raise(stmt: ast.stmt) -> bool:
    """Whether evaluating ``stmt``'s own expressions could raise."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    if isinstance(stmt, ast.Delete):
        return True  # del x[k] / del x.a call __delitem__/__delattr__
    for expr in _own_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, _RAISING_EXPR):
                return True
    return False


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a statement's CFG node evaluates itself.

    Compound statements own only their header (test / iterator /
    context expressions); bodies get their own nodes.  Nested
    ``def``/``class`` own decorators and argument defaults only.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = stmt.args
        return list(stmt.decorator_list) + [
            d for d in args.defaults + args.kw_defaults if d is not None
        ]
    if isinstance(stmt, ast.ClassDef):
        return list(stmt.decorator_list) + list(stmt.bases)
    out: list[ast.expr] = []
    for _fname, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.expr))
    return out


class _Finally:
    """One enclosing ``finally`` block under construction."""

    def __init__(self, entry: int):
        self.entry = entry
        # Node indices control continues to after the finally runs,
        # for jumps (return/break/continue) routed through it.
        self.jump_targets: list[int] = []


class _Builder:
    """Recursive-descent CFG construction with a frontier discipline.

    ``_emit(stmts, frontier)`` wires a statement list after the given
    frontier (node indices whose normal out-edges flow into whatever
    comes next) and returns the new frontier.  An empty frontier means
    control cannot fall through.
    """

    def __init__(self, name: str):
        self.cfg = CFG(name=name)
        self.cfg.entry = self.cfg.add_node(None, kind="entry", label="entry")
        self.cfg.exit = self.cfg.add_node(None, kind="exit", label="exit")
        self.cfg.raise_exit = self.cfg.add_node(None, kind="raise_exit", label="raise")
        self._exc_targets: list[list[int]] = [[self.cfg.raise_exit]]
        # (after_join, continue_target, finally_depth_at_loop_entry)
        self._loops: list[tuple[int, int, int]] = []
        self._finallies: list[_Finally] = []

    # -- plumbing ------------------------------------------------------

    def _connect(self, frontier: list[int], dst: int, kind: str = NORMAL) -> None:
        for src in frontier:
            self.cfg.add_edge(src, dst, kind)

    def _exception_edges(self, idx: int) -> None:
        for target in self._exc_targets[-1]:
            self.cfg.add_edge(idx, target, EXCEPTION)

    def _route_jump(self, src: int, target: int, boundary: int) -> None:
        """Route a return/continue from ``src`` to ``target``.

        ``boundary`` is the finally-stack depth the jump may not
        escape without running intervening finally bodies (0 for
        return).  The jump enters the innermost intervening finally;
        its block then continues to ``target`` (intermediate nested
        finallies are conflated — acceptable for a may-analysis).
        """
        intervening = self._finallies[boundary:]
        if not intervening:
            self.cfg.add_edge(src, target, NORMAL)
            return
        fin = intervening[-1]
        self.cfg.add_edge(src, fin.entry, NORMAL)
        if target not in fin.jump_targets:
            fin.jump_targets.append(target)

    # -- statements ----------------------------------------------------

    def _emit(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in stmts:
            frontier = self._emit_stmt(stmt, frontier)
        return frontier

    def _emit_stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._emit_loop(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._emit_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._emit_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._leaf(stmt, frontier)
            # __exit__ runs on every path; the managed resource is the
            # rules' concern, not the CFG's.
            return self._emit(stmt.body, [head])
        if isinstance(stmt, ast.Return):
            idx = self._leaf(stmt, frontier)
            self._route_jump(idx, self.cfg.exit, 0)
            return []
        if isinstance(stmt, ast.Raise):
            idx = self.cfg.add_node(stmt)
            self._connect(frontier, idx)
            self._exception_edges(idx)
            return []
        if isinstance(stmt, ast.Break):
            idx = self.cfg.add_node(stmt)
            self._connect(frontier, idx)
            after_join, _cont, depth = self._loops[-1]
            self._route_jump(idx, after_join, depth)
            return []
        if isinstance(stmt, ast.Continue):
            idx = self.cfg.add_node(stmt)
            self._connect(frontier, idx)
            _after, cont, depth = self._loops[-1]
            self._route_jump(idx, cont, depth)
            return []
        return [self._leaf(stmt, frontier)]

    def _leaf(self, stmt: ast.stmt, frontier: list[int]) -> int:
        idx = self.cfg.add_node(stmt)
        self._connect(frontier, idx)
        if _can_raise(stmt):
            self._exception_edges(idx)
        return idx

    def _emit_if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        head = self._leaf(stmt, frontier)
        then_out = self._emit(stmt.body, [head])
        else_out = self._emit(stmt.orelse, [head]) if stmt.orelse else [head]
        return then_out + else_out

    def _emit_loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: list[int]
    ) -> list[int]:
        head = self._leaf(stmt, frontier)
        # Breaks need a target before the loop's natural exit is
        # known, so every loop gets a synthetic exit join.
        after_join = self.cfg.add_node(None, kind="join", label="loop-exit")
        self._loops.append((after_join, head, len(self._finallies)))
        body_out = self._emit(stmt.body, [head])
        self._loops.pop()
        self._connect(body_out, head)  # back edge

        natural: list[int] = []
        endless = isinstance(stmt, ast.While) and (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        if not endless:
            natural.append(head)  # condition false / iterator exhausted
        out = self._emit(stmt.orelse, natural) if stmt.orelse else natural
        self._connect(out, after_join)
        return [after_join]

    def _emit_try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        has_finally = bool(stmt.finalbody)
        fin: _Finally | None = None
        if has_finally:
            # Pre-created anchor so body statements can jump to it
            # before the finally body itself is built.
            fin = _Finally(self.cfg.add_node(None, kind="join", label="finally"))
            self._finallies.append(fin)

        # Where do exceptions inside the try body go?
        handler_heads = [
            self.cfg.add_node(None, kind="join", label="except")
            for _ in stmt.handlers
        ]
        if handler_heads:
            self._exc_targets.append(handler_heads)
        elif fin is not None:
            self._exc_targets.append([fin.entry])
        body_out = self._emit(stmt.body, frontier)
        if handler_heads or fin is not None:
            self._exc_targets.pop()

        # Handler bodies: exceptions inside them go to the finally (if
        # any) or outward.
        handler_out: list[int] = []
        if stmt.handlers:
            if fin is not None:
                self._exc_targets.append([fin.entry])
            for head, handler in zip(handler_heads, stmt.handlers):
                handler_out.extend(self._emit(handler.body, [head]))
            if fin is not None:
                self._exc_targets.pop()

        # else clause runs only after an exception-free body.
        else_out = self._emit(stmt.orelse, body_out) if stmt.orelse else body_out
        fallthrough = else_out + handler_out

        if fin is None:
            return fallthrough

        self._finallies.pop()
        self._connect(fallthrough, fin.entry)
        fin_out = self._emit(stmt.finalbody, [fin.entry])
        # The finally re-raises pending exceptions onward.
        for target in self._exc_targets[-1]:
            self._connect(fin_out, target, EXCEPTION)
        # Jumps routed through this finally continue to their targets.
        for target in fin.jump_targets:
            self._connect(fin_out, target)
        # Normal fall-through exists only if the try/handlers could
        # complete normally.
        return fin_out if fallthrough else []


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    name: str | None = None,
) -> CFG:
    """Build the CFG of one function body (or a module body)."""
    label = name if name is not None else getattr(func, "name", "<module>")
    builder = _Builder(label)
    frontier = builder._emit(list(func.body), [builder.cfg.entry])
    builder._connect(frontier, builder.cfg.exit)
    return builder.cfg


def function_cfgs(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """CFGs for every function/method in a module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, build_cfg(node)
