"""Reporters: human text and machine JSON for a lint result.

The text form groups violations by file and ends with a one-line
verdict; the JSON form is stable and sorted (suitable for diffing and
for the ``check_lint`` CI gate) and carries the annotation-coverage
metric alongside the violations.
"""

from __future__ import annotations

import json

from repro.analysis.core import LintResult, rule_catalogue

__all__ = ["render_text", "render_json", "render_sarif", "render_catalogue"]


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The ``repro lint`` terminal report."""
    lines: list[str] = []
    current = None
    for violation in result.violations:
        if violation.path != current:
            if current is not None:
                lines.append("")
            current = violation.path
        lines.append(violation.render())
    if result.stale_baseline:
        if lines:
            lines.append("")
        lines.append("stale baseline entries (fixed code — remove them):")
        for entry in result.stale_baseline:
            lines.append(
                f"  {entry['path']}: {entry['rule']} {entry['snippet']!r}"
            )
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined (suppressed) violations: {len(result.baselined)}")
        for violation in result.baselined:
            lines.append("  " + violation.render())
    if lines:
        lines.append("")
    coverage = result.metrics.get("annotation_coverage", {}).get("total", {})
    summary = (
        f"{len(result.violations)} violation(s) in {result.files_checked} file(s)"
        f" [{len(result.rules_run)} rules"
        f", {result.pragma_suppressed} pragma-allowed"
        f", {len(result.baselined)} baselined]"
    )
    if coverage:
        summary += f"; public annotation coverage {coverage.get('coverage', 0):.1%}"
    lines.append(summary)
    lines.append("lint: " + ("clean" if result.clean else "FAILED"))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable machine-readable report (``repro lint --json``)."""
    payload = {
        "schema": 1,
        "clean": result.clean,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "pragma_suppressed": result.pragma_suppressed,
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "message": v.message,
                "snippet": v.snippet,
            }
            for v in result.violations
        ],
        "baselined": [
            {"rule": v.rule, "path": v.path, "line": v.line} for v in result.baselined
        ],
        "stale_baseline": result.stale_baseline,
        "metrics": result.metrics,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report (``repro lint --format sarif``).

    Minimal but valid: the tool driver carries the full rule
    catalogue, each result points at its rule by id and index, and
    locations use repo-relative URIs — enough for code-scanning UIs
    to ingest and deduplicate findings.
    """
    catalogue = rule_catalogue()
    rule_index = {rule_id: i for i, (rule_id, _summary) in enumerate(catalogue)}
    run = {
        "tool": {
            "driver": {
                "name": "reprolint",
                "informationUri": "https://example.invalid/reprolint",
                "rules": [
                    {
                        "id": rule_id,
                        "shortDescription": {"text": summary},
                        "defaultConfiguration": {"level": "error"},
                    }
                    for rule_id, summary in catalogue
                ],
            }
        },
        "results": [
            {
                "ruleId": v.rule,
                "ruleIndex": rule_index[v.rule],
                "level": "error",
                "message": {"text": v.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": v.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": v.line,
                                "snippet": {"text": v.snippet},
                            },
                        }
                    }
                ],
            }
            for v in result.violations
        ],
    }
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [run],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_catalogue() -> str:
    """The rule catalogue (``repro lint --rules``)."""
    lines = ["reprolint rule catalogue", ""]
    family = None
    for rule_id, summary in rule_catalogue():
        if rule_id[:-2] != family:
            family = rule_id[:-2]
            lines.append(f"{family}xx:")
        lines.append(f"  {rule_id}  {summary}")
    return "\n".join(lines)
