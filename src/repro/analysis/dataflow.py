"""Generic monotone-fixpoint dataflow over :mod:`repro.analysis.cfg`.

:func:`solve` runs a forward worklist iteration to a fixpoint.  An
analysis supplies the lattice (``bottom`` + ``join``) and the transfer
functions; states must be plain comparable values (dicts of frozensets
work well).  Exception edges get their own transfer hook so rules can
model "this statement raised *before* (or *after*) its effect" — e.g.
a ``sock = dial(...)`` that raises never acquired the socket, while a
``sock.close()`` that raises still closed it for lint purposes.

:class:`ReachingDefinitions` is the canonical instantiation: it maps
each variable to the set of CFG node indices whose definitions may
reach the current point.  The RNG-taint rule family uses it to detect
streams drawn under a different key binding than they were created
with.
"""

from __future__ import annotations

import ast
import heapq
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.analysis.cfg import CFG, EXCEPTION, CFGNode

__all__ = [
    "DataflowAnalysis",
    "DataflowResult",
    "FixpointError",
    "ReachingDefinitions",
    "bound_names",
    "join_union_maps",
    "param_names",
    "solve",
]


class FixpointError(RuntimeError):
    """The iteration failed to stabilise (non-monotone transfer)."""


class DataflowAnalysis:
    """Interface for a forward dataflow analysis.

    Subclasses define the lattice and transfer; states must support
    ``==`` and be treated as immutable (return fresh states from
    ``transfer``, never mutate the argument).
    """

    def bottom(self) -> Any:
        """The least element — the state of unvisited program points."""
        raise NotImplementedError  # pragma: no cover - interface

    def initial(self, cfg: CFG) -> Any:
        """The state at function entry (defaults to ``bottom``)."""
        return self.bottom()

    def join(self, a: Any, b: Any) -> Any:
        """Least upper bound of two states (must be monotone)."""
        raise NotImplementedError  # pragma: no cover - interface

    def transfer(self, node: CFGNode, state: Any) -> Any:
        """State after normally executing ``node`` from ``state``."""
        raise NotImplementedError  # pragma: no cover - interface

    def transfer_exception(self, node: CFGNode, state_in: Any, state_out: Any) -> Any:
        """State flowing along ``node``'s exception out-edges.

        The default joins pre- and post-states — the raise may have
        happened before or after the statement's effect.  Rules
        override this per statement when they know better.
        """
        return self.join(state_in, state_out)


@dataclass
class DataflowResult:
    """Fixpoint states per CFG node (indices absent = unreachable)."""

    input: dict[int, Any] = field(default_factory=dict)
    output: dict[int, Any] = field(default_factory=dict)
    exc_output: dict[int, Any] = field(default_factory=dict)

    def at(self, idx: int, default: Any = None) -> Any:
        """In-state of node ``idx``; ``default`` if unreachable."""
        return self.input.get(idx, default)


def solve(cfg: CFG, analysis: DataflowAnalysis, max_visits_per_node: int = 200) -> DataflowResult:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint (forward).

    Nodes unreachable from entry are never visited and stay absent
    from the result.  A monotone transfer on a finite-height lattice
    always terminates; the per-node visit cap turns a non-monotone
    transfer into :class:`FixpointError` instead of a hang.
    """
    order = cfg.rpo()
    position = {idx: i for i, idx in enumerate(order)}
    result = DataflowResult()
    visits: dict[int, int] = {}
    budget = max_visits_per_node * max(1, len(cfg.nodes))
    heap: list[tuple[int, int]] = [(position[cfg.entry], cfg.entry)]
    queued = {cfg.entry}
    spent = 0
    while heap:
        _, idx = heapq.heappop(heap)
        queued.discard(idx)
        spent += 1
        visits[idx] = visits.get(idx, 0) + 1
        if visits[idx] > max_visits_per_node or spent > budget:
            raise FixpointError(
                f"dataflow failed to stabilise in {cfg.name!r} "
                f"(node {idx} visited {visits[idx]} times)"
            )
        node = cfg.nodes[idx]

        state_in = analysis.initial(cfg) if idx == cfg.entry else None
        for src, kind in cfg.predecessors(idx):
            contrib = (
                result.exc_output.get(src)
                if kind == EXCEPTION
                else result.output.get(src)
            )
            if contrib is None:
                continue
            state_in = contrib if state_in is None else analysis.join(state_in, contrib)
        if state_in is None:
            continue  # no reachable predecessor yet

        if node.kind == "stmt" and node.stmt is not None:
            state_out = analysis.transfer(node, state_in)
            state_exc = analysis.transfer_exception(node, state_in, state_out)
        else:  # synthetic nodes pass state through untouched
            state_out = state_in
            state_exc = state_in

        changed = (
            idx not in result.input
            or result.input[idx] != state_in
            or result.output[idx] != state_out
            or result.exc_output[idx] != state_exc
        )
        result.input[idx] = state_in
        result.output[idx] = state_out
        result.exc_output[idx] = state_exc
        if changed:
            for dst, _kind in cfg.successors(idx):
                if dst not in queued:
                    queued.add(dst)
                    heapq.heappush(heap, (position.get(dst, len(order)), dst))
    return result


# ----------------------------------------------------------------------
# Helpers shared by analyses
# ----------------------------------------------------------------------


def _target_names(target: ast.expr) -> list[str]:
    """Variable names bound by an assignment target expression."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    return []  # attribute / subscript targets bind no local


def bound_names(stmt: ast.stmt) -> list[str]:
    """Local variable names (re)bound by executing ``stmt``.

    Walrus assignments anywhere in the statement's expressions count;
    attribute/subscript stores do not (they bind no local).
    """
    names: list[str] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, ast.AugAssign):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, ast.Import):
        for alias in stmt.names:
            names.append(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, ast.ImportFrom):
        for alias in stmt.names:
            names.append(alias.asname or alias.name)
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            names.append(node.target.id)
    return names


def join_union_maps(
    a: Mapping[str, frozenset], b: Mapping[str, frozenset]
) -> dict[str, frozenset]:
    """Key-wise union join for ``var → set`` lattices (missing = ∅)."""
    out = dict(a)
    for key, value in b.items():
        existing = out.get(key)
        out[key] = value if existing is None else existing | value
    return out


class ReachingDefinitions(DataflowAnalysis):
    """var → set of CFG node indices whose definition may reach here.

    Function parameters are seeded as defined at the entry node, so a
    parameter rebound inside the function changes its reaching set —
    exactly the signal the RNG-key rule needs.
    """

    def __init__(self, params: tuple[str, ...] = ()):
        self.params = params

    def bottom(self) -> dict[str, frozenset]:
        return {}

    def initial(self, cfg: CFG) -> dict[str, frozenset]:
        return {name: frozenset({cfg.entry}) for name in self.params}

    def join(self, a: dict, b: dict) -> dict:
        return join_union_maps(a, b)

    def transfer(self, node: CFGNode, state: dict) -> dict:
        assert node.stmt is not None
        defs = bound_names(node.stmt)
        if not defs:
            return state
        new = dict(state)
        for name in defs:
            new[name] = frozenset({node.idx})
        return new


def param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    """All positional/keyword/vararg parameter names of a function."""
    args = func.args
    collected = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if args.vararg:
        collected.append(args.vararg.arg)
    if args.kwarg:
        collected.append(args.kwarg.arg)
    return tuple(collected)
