"""Reprolint core: violations, the rule registry, and pragmas.

Reprolint is a project-specific static checker built on the stdlib
``ast`` module.  It exists because this repo's central guarantees —
bit-identical trajectories from kernel-owned RNG streams, a package
DAG that keeps the simulation substrate FL-agnostic, a closed
event/drop-reason taxonomy, allocation-free hot paths — are invariants
of the *source*, and waiting for a runtime equivalence suite to catch
a stray ``np.random.rand`` is hours slower than catching it at lint
time.

Two kinds of rules exist:

* **file rules** see one :class:`~repro.analysis.project.SourceFile`
  at a time (determinism, hot-path hygiene, API surface);
* **project rules** see the whole
  :class:`~repro.analysis.project.Project` (layering/import cycles,
  trace-taxonomy exhaustiveness) — they cross-reference files.

Rule identifiers are ``R<family><index>`` (``R101``); the family digit
groups related checks (``R1`` determinism, ``R2`` layering, ``R3``
taxonomy, ``R4`` hot path, ``R5`` API surface).  A violation can be
silenced three ways, in order of preference: fix it, annotate the line
with ``# reprolint: allow[R101]`` (see :func:`parse_pragmas`), or park
it in the checked-in baseline file (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.project import Project, SourceFile

__all__ = [
    "LintResult",
    "Violation",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RULE_REGISTRY",
    "register_rule",
    "iter_rules",
    "rule_catalogue",
    "parse_pragmas",
    "is_allowed",
    "ALLOW_PRAGMA",
]

# ``# reprolint: allow[R101]`` or ``allow[R1,R403]``; anything after the
# closing bracket is free-form justification.  ``allow[*]`` silences
# every rule on the line.
ALLOW_PRAGMA = re.compile(r"#\s*reprolint:\s*allow\[([A-Za-z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule breach at one source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int  # 1-based
    message: str
    snippet: str = ""  # stripped source line, used for baseline matching

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used by the baseline file.

        Keyed on (path, rule, snippet) so unrelated edits that shift
        line numbers do not invalidate baseline entries.
        """
        return (self.path, self.rule, self.snippet)

    def render(self) -> str:
        """The canonical one-line text form ``path:line: RULE message``."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


class Rule:
    """Base class: subclasses declare an id, a family, and a summary.

    Subclasses implement either :meth:`check_file` (file rules) or
    :meth:`check_project` (project rules) and are added to the global
    registry with :func:`register_rule`.
    """

    id: str = ""
    summary: str = ""
    scope: str = "file"  # "file" | "project"

    @property
    def family(self) -> str:
        """The family prefix, e.g. ``R1`` for ``R101``, ``R11`` for ``R1103``.

        Ids are ``R<family><index>`` with a two-digit index, so the
        family is everything but the last two characters — this keeps
        multi-digit families (``R10``, ``R11``) grouping correctly.
        """
        return self.id[:-2]

    def check_file(self, source: "SourceFile", project: "Project") -> Iterable[Violation]:
        """Yield violations found in one file (file rules only)."""
        raise NotImplementedError  # pragma: no cover - interface

    def check_project(self, project: "Project") -> Iterable[Violation]:
        """Yield violations found across files (project rules only)."""
        raise NotImplementedError  # pragma: no cover - interface


class FileRule(Rule):
    """Marker base for per-file rules."""

    scope = "file"


class ProjectRule(Rule):
    """Marker base for cross-file rules."""

    scope = "project"


RULE_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if not rule.id or not rule.id.startswith("R"):
        raise ValueError(f"rule {cls.__name__} has no valid id")
    if rule.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULE_REGISTRY[rule.id] = rule
    return cls


def iter_rules(select: Iterable[str] | None = None) -> Iterator[Rule]:
    """Registered rules, optionally filtered by id or family prefix.

    ``select`` entries may be full ids (``R101``) or family prefixes
    (``R1``); ``None`` selects everything.  A selector matching no
    registered rule raises ``ValueError`` — a typo'd ``--select`` must
    not silently lint with zero rules.
    """
    chosen = None if select is None else {s.strip() for s in select if s.strip()}
    if chosen is not None:
        known = set(RULE_REGISTRY) | {r.family for r in RULE_REGISTRY.values()}
        unknown = sorted(chosen - known)
        if unknown:
            raise ValueError(
                f"unknown rule selector(s): {', '.join(unknown)} "
                "(see `repro lint --rules`)"
            )
    for rule_id in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[rule_id]
        if chosen is None or rule_id in chosen or rule.family in chosen:
            yield rule


def rule_catalogue() -> list[tuple[str, str]]:
    """(id, summary) for every registered rule, sorted by id."""
    return [(r.id, r.summary) for r in iter_rules()]


def parse_pragmas(lines: Iterable[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids allowed on them.

    A pragma on a code line covers that line; a pragma on a
    comment-only line covers the *next* line as well, so::

        # reprolint: allow[R403] scatter into a fresh buffer
        dense[idx] = values

    is suppressed.  Entries are ids (``R403``), families (``R4``), or
    ``*``.
    """
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = ALLOW_PRAGMA.search(line)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allowed.setdefault(lineno, set()).update(ids)
        if line.lstrip().startswith("#"):  # comment-only line covers the next
            allowed.setdefault(lineno + 1, set()).update(ids)
    return {line: frozenset(ids) for line, ids in allowed.items()}


def is_allowed(pragmas: dict[int, frozenset[str]], line: int, rule_id: str) -> bool:
    """Whether a pragma on ``line`` silences ``rule_id``."""
    ids = pragmas.get(line)
    if not ids:
        return False
    return "*" in ids or rule_id in ids or rule_id[:-2] in ids


@dataclass
class LintResult:
    """Outcome of one lint pass (see :func:`repro.analysis.runner.run_lint`)."""

    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    pragma_suppressed: int = 0
    stale_baseline: list[dict] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when nothing actionable remains (stale entries count)."""
        return not self.violations and not self.stale_baseline
