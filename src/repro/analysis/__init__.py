"""reprolint — project-specific static analysis for repo invariants.

A self-contained, stdlib-``ast`` static checker that enforces the
guarantees the runtime suites only verify after the fact:

* **R1 determinism** — all randomness/time flows through seeded
  kernel streams (no ``np.random.*`` legacy API, stdlib ``random``,
  or wall-clock reads);
* **R2 layering** — the package DAG holds, no import cycles, no new
  importers of deprecated shims;
* **R3 trace taxonomy** — every emitted event type / drop reason is
  declared in :mod:`repro.sim.trace`, the drop-reason partition is
  closed, and the consumers still dispatch on it;
* **R4 hot-path hygiene** — explicit dtypes, no copy-inducing
  constructs, no array scatters in benchmark-pinned modules;
* **R5 API surface** — ``__all__`` consistency, docstrings, and
  annotation coverage on public callables;
* **R9–R11 flow-sensitive families** — built on an intraprocedural
  CFG (:mod:`repro.analysis.cfg`) and a monotone-fixpoint dataflow
  solver (:mod:`repro.analysis.dataflow`): RNG-stream discipline
  (R9), dtype/promotion hygiene on benchmark-pinned hot paths (R10),
  and resource/exception lifecycle in transport and population code
  (R11).

Entry points: ``repro lint`` (CLI, with ``--diff <ref>`` incremental
mode and ``--format sarif``), ``scripts/check_lint.py`` (CI gate),
:func:`repro.analysis.runner.run_lint` (library).  The package
depends only on the standard library — it never imports the code it
analyses.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, save_baseline
from repro.analysis.config import (
    LintConfig,
    default_baseline_path,
    default_config,
    default_lint_paths,
    default_src_root,
)
from repro.analysis.core import (
    LintResult,
    Rule,
    RULE_REGISTRY,
    Violation,
    iter_rules,
    parse_pragmas,
    rule_catalogue,
)
from repro.analysis.incremental import lint_diff
from repro.analysis.project import LintError, Project, SourceFile
from repro.analysis.report import (
    render_catalogue,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.runner import exit_code, lint_project, run_lint

__all__ = [
    "LintConfig",
    "LintError",
    "LintResult",
    "Project",
    "Rule",
    "RULE_REGISTRY",
    "SourceFile",
    "Violation",
    "apply_baseline",
    "default_baseline_path",
    "default_config",
    "default_lint_paths",
    "default_src_root",
    "exit_code",
    "iter_rules",
    "lint_diff",
    "lint_project",
    "load_baseline",
    "parse_pragmas",
    "render_catalogue",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_catalogue",
    "run_lint",
    "save_baseline",
]
