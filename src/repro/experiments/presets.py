"""Experiment scale presets.

Every experiment runner accepts a :class:`ExperimentScale` so the same
code serves three audiences:

* ``FAST`` — seconds per run; used by the test suite and CI smoke.
* ``BENCH`` — the default for the pytest-benchmark harness; minutes
  per table/figure, enough rounds for the paper's qualitative shapes
  (who wins, by roughly what factor) to emerge.
* ``FULL`` — closest to the paper's setup (400 client updates etc.);
  hours on a single CPU core, provided for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "FAST", "BENCH", "FULL", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared across all experiment runners."""

    name: str
    num_clients: int
    num_rounds: int
    train_samples: int
    test_samples: int
    local_epochs: int
    batch_size: int
    eval_every: int
    max_sim_time_s: float
    repeats: int
    # Model size knobs (channels for the CNN, hidden width for MLP).
    cnn_channels: tuple[int, int]
    cnn_hidden: int
    image_size: int

    def __post_init__(self) -> None:
        if self.num_clients <= 0 or self.num_rounds <= 0 or self.repeats <= 0:
            raise ValueError("counts must be positive")
        if self.train_samples < self.num_clients:
            raise ValueError("need at least one sample per client")


FAST = ExperimentScale(
    name="fast",
    num_clients=10,
    num_rounds=8,
    train_samples=400,
    test_samples=120,
    local_epochs=1,
    batch_size=20,
    eval_every=2,
    max_sim_time_s=200.0,
    repeats=1,
    cnn_channels=(4, 8),
    cnn_hidden=32,
    image_size=10,
)

BENCH = ExperimentScale(
    name="bench",
    num_clients=10,
    num_rounds=40,
    train_samples=1200,
    test_samples=300,
    local_epochs=1,
    batch_size=20,
    eval_every=4,
    max_sim_time_s=1500.0,
    repeats=1,
    cnn_channels=(8, 16),
    cnn_hidden=64,
    image_size=14,
)

FULL = ExperimentScale(
    name="full",
    num_clients=10,
    num_rounds=80,
    train_samples=4000,
    test_samples=1000,
    local_epochs=1,
    batch_size=32,
    eval_every=4,
    max_sim_time_s=6000.0,
    repeats=3,
    cnn_channels=(20, 50),
    cnn_hidden=128,
    image_size=14,
)

SCALES = {scale.name: scale for scale in (FAST, BENCH, FULL)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {name!r}; known scales: {known}") from None
