"""Plain-text reporting: the tables and series the paper prints.

Benchmarks call these formatters so running ``pytest benchmarks/``
produces output directly comparable, row by row, against the paper's
Tables I/II and the figure series.
"""

from __future__ import annotations

import numpy as np

__all__ = ["format_table", "format_series", "format_bytes", "format_pct"]


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte size (KB/MB like the paper's tables)."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    if num_bytes < 1024:
        return f"{num_bytes:.0f}B"
    if num_bytes < 1024**2:
        return f"{num_bytes / 1024:.0f}KB"
    return f"{num_bytes / 1024**2:.2f}MB"


def format_pct(fraction: float, signed: bool = False) -> str:
    """Render a fraction as a percentage string."""
    pct = 100.0 * fraction
    if signed:
        return f"{-pct:.2f}%" if pct >= 0 else f"+{-pct:.2f}%"
    return f"{pct:.2f}%"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width ASCII table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str,
    x: np.ndarray,
    y: np.ndarray,
    x_name: str = "round",
    y_name: str = "accuracy",
    max_points: int = 12,
) -> str:
    """One figure series as a compact text row set.

    Long series are subsampled (keeping endpoints) so benchmark output
    stays readable.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x.size == 0:
        return f"{label}: (no data)"
    if x.size > max_points:
        idx = np.unique(
            np.concatenate([[0], np.linspace(0, x.size - 1, max_points).astype(int)])
        )
        x, y = x[idx], y[idx]
    pairs = ", ".join(f"{xi:g}:{yi:.3f}" for xi, yi in zip(x, y))
    return f"{label} ({x_name}:{y_name}): {pairs}"
