"""Declarative strategy sweeps: grid runs with a comparison artifact.

A sweep is a grid of **strategy × network profile × fault plan** run
on one federation workload, the head-to-head harness ROADMAP asks for:
every cell runs under identical conditions (same data, same seeds,
same link mix), per-cell metrics land in :class:`SweepRow`, and each
``(network, fault)`` cell is compared against its *reference* strategy
(FedAvg by default) — uplink-byte reduction and accuracy delta — so a
claim like "AdaGQ saves 77% uplink at no accuracy cost on the
constrained preset" is one artifact, not a notebook.

Entries are plain names resolved through three registries
(:data:`STRATEGY_FACTORIES`, :data:`NETWORK_PROFILES`,
:data:`FAULT_PLANS`) so a sweep is fully described by a
:class:`SweepConfig` — JSON-serialisable, CLI-friendly (``repro
sweep``), and deterministic: the artifact for a given config is
bit-identical across runs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.adafl import AdaFLSync
from repro.core.zoo import AdaGQQuantization, AdaptiveFederatedDropout
from repro.experiments.presets import ExperimentScale, get_scale
from repro.experiments.reporting import format_bytes, format_table
from repro.experiments.runner import FederationSpec, run_sync
from repro.fl.baselines import FedAvg, FedProx, Scaffold
from repro.fl.metrics import RunResult
from repro.fl.strategy import SyncStrategy
from repro.network.conditions import NetworkConditions
from repro.sim.faults import ClientCrashModel, FaultPlan

__all__ = [
    "SweepConfig",
    "SweepRow",
    "SweepResult",
    "STRATEGY_FACTORIES",
    "NETWORK_PROFILES",
    "FAULT_PLANS",
    "run_sweep",
    "render_sweep",
]


# ----------------------------------------------------------------------
# Registries: names a config may use.  Factories take what they need to
# stay deterministic per (config, seed) — nothing reads global state.
# ----------------------------------------------------------------------
STRATEGY_FACTORIES: dict[str, Callable[[], SyncStrategy]] = {
    "fedavg": lambda: FedAvg(participation_rate=0.5),
    "fedprox": lambda: FedProx(participation_rate=0.5, mu=0.01),
    "scaffold": lambda: Scaffold(participation_rate=0.5),
    "adafl": lambda: AdaFLSync(),
    "afd": lambda: AdaptiveFederatedDropout(),
    "adagq": lambda: AdaGQQuantization(),
}

# name -> factory(num_clients, seed) -> NetworkConditions | None.
# "constrained" is the Tables I/II straggler mix (80% wifi, 20%
# constrained edge links) — the paper's problem regime.
NETWORK_PROFILES: dict[
    str, Callable[[int, int], NetworkConditions | None]
] = {
    "none": lambda n, seed: None,
    "wifi": lambda n, seed: NetworkConditions.uniform(n, "wifi"),
    "constrained": lambda n, seed: NetworkConditions.with_stragglers(
        n,
        straggler_fraction=0.2,
        good_preset="wifi",
        bad_preset="constrained",
        rng=np.random.default_rng(seed + 17),
    ),
}

# name -> factory(seed) -> FaultPlan | None.  "crashy" models flaky
# embedded devices: frequent crashes with quick restarts.
FAULT_PLANS: dict[str, Callable[[int], FaultPlan | None]] = {
    "none": lambda seed: None,
    "crashy": lambda seed: FaultPlan(
        ClientCrashModel(mtbf_s=400.0, mean_downtime_s=30.0)
    ),
}


@dataclass(frozen=True)
class SweepConfig:
    """One sweep, fully described (see module docstring).

    ``rounds`` / ``max_sim_time_s`` override the named scale's values
    without defining a new preset — sweeps usually want more rounds
    than the CI-oriented ``fast`` scale ships with.  ``reference`` is
    the strategy every other row in the same ``(network, fault)`` cell
    is compared against; it must be in ``strategies``.
    """

    strategies: tuple[str, ...] = ("fedavg", "afd", "adagq")
    networks: tuple[str, ...] = ("constrained",)
    faults: tuple[str, ...] = ("none",)
    scale: str = "fast"
    dataset: str = "mnist"
    model: str = "mnist_cnn"
    distribution: str = "iid"
    seed: int = 0
    reference: str = "fedavg"
    rounds: int | None = None
    max_sim_time_s: float | None = None
    eval_every: int | None = None

    def __post_init__(self) -> None:
        if not self.strategies:
            raise ValueError("sweep needs at least one strategy")
        for name in self.strategies:
            if name not in STRATEGY_FACTORIES:
                known = ", ".join(sorted(STRATEGY_FACTORIES))
                raise ValueError(f"unknown strategy {name!r}; known: {known}")
        for name in self.networks:
            if name not in NETWORK_PROFILES:
                known = ", ".join(sorted(NETWORK_PROFILES))
                raise ValueError(f"unknown network profile {name!r}; known: {known}")
        for name in self.faults:
            if name not in FAULT_PLANS:
                known = ", ".join(sorted(FAULT_PLANS))
                raise ValueError(f"unknown fault plan {name!r}; known: {known}")
        if self.reference not in self.strategies:
            raise ValueError(
                f"reference {self.reference!r} must be one of the swept strategies"
            )
        if self.rounds is not None and self.rounds < 1:
            raise ValueError("rounds override must be positive")

    def resolved_scale(self) -> ExperimentScale:
        """The named scale with this config's overrides applied."""
        scale = get_scale(self.scale)
        overrides: dict = {}
        if self.rounds is not None:
            overrides["num_rounds"] = self.rounds
        if self.max_sim_time_s is not None:
            overrides["max_sim_time_s"] = self.max_sim_time_s
        if self.eval_every is not None:
            overrides["eval_every"] = self.eval_every
        return dataclasses.replace(scale, **overrides) if overrides else scale

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, raw: dict) -> "SweepConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown sweep config keys: {sorted(unknown)}")
        for key in ("strategies", "networks", "faults"):
            if key in raw:
                raw = {**raw, key: tuple(raw[key])}
        return cls(**raw)


@dataclass(frozen=True)
class SweepRow:
    """One (strategy, network, fault) cell's outcome."""

    strategy: str
    network: str
    fault: str
    final_accuracy: float
    total_bytes_up: int
    total_bytes_down: int
    total_uploads: int
    total_sim_time: float
    # vs. the reference strategy in the same (network, fault) cell;
    # zero for the reference row itself.
    uplink_reduction: float
    accuracy_delta: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class SweepResult:
    """All rows of one sweep plus the config that produced them."""

    config: SweepConfig
    rows: list[SweepRow] = field(default_factory=list)

    def row(self, strategy: str, network: str, fault: str) -> SweepRow:
        for r in self.rows:
            if (r.strategy, r.network, r.fault) == (strategy, network, fault):
                return r
        raise KeyError(f"no sweep row for ({strategy}, {network}, {fault})")

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "rows": [r.to_dict() for r in self.rows],
        }

    def save(self, path: "Path | str") -> None:
        """Write the comparison artifact as pretty-printed JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: "Path | str") -> "SweepResult":
        raw = json.loads(Path(path).read_text())
        return cls.from_dict(raw)

    @classmethod
    def from_dict(cls, raw: dict) -> "SweepResult":
        return cls(
            config=SweepConfig.from_dict(raw["config"]),
            rows=[SweepRow(**row) for row in raw["rows"]],
        )


def _run_cell(
    config: SweepConfig,
    scale: ExperimentScale,
    strategy_name: str,
    network_name: str,
    fault_name: str,
) -> RunResult:
    spec = FederationSpec(
        dataset=config.dataset,
        model=config.model,
        distribution=config.distribution,
        scale=scale,
        seed=config.seed,
    )
    network = NETWORK_PROFILES[network_name](scale.num_clients, config.seed)
    chaos = FAULT_PLANS[fault_name](config.seed)
    strategy = STRATEGY_FACTORIES[strategy_name]()
    return run_sync(spec, strategy, network=network, chaos=chaos)


def run_sweep(
    config: SweepConfig,
    progress: Callable[[str], None] | None = None,
) -> SweepResult:
    """Run the full grid; reference cells run first within each cell.

    ``progress`` (e.g. ``print``) is called with a one-line status per
    completed run.
    """
    scale = config.resolved_scale()
    result = SweepResult(config=config)
    ordered = [config.reference] + [
        s for s in config.strategies if s != config.reference
    ]
    for network_name in config.networks:
        for fault_name in config.faults:
            reference: RunResult | None = None
            for strategy_name in ordered:
                run = _run_cell(
                    config, scale, strategy_name, network_name, fault_name
                )
                if strategy_name == config.reference:
                    reference = run
                assert reference is not None
                ref_bytes = reference.total_bytes_up
                reduction = (
                    0.0
                    if ref_bytes <= 0
                    else 1.0 - run.total_bytes_up / ref_bytes
                )
                row = SweepRow(
                    strategy=strategy_name,
                    network=network_name,
                    fault=fault_name,
                    final_accuracy=run.final_accuracy,
                    total_bytes_up=run.total_bytes_up,
                    total_bytes_down=run.total_bytes_down,
                    total_uploads=run.total_uploads,
                    total_sim_time=run.total_sim_time,
                    uplink_reduction=reduction,
                    accuracy_delta=run.final_accuracy - reference.final_accuracy,
                )
                result.rows.append(row)
                if progress is not None:
                    progress(
                        f"[{network_name}/{fault_name}] {strategy_name}: "
                        f"acc={row.final_accuracy:.3f} "
                        f"up={format_bytes(row.total_bytes_up)} "
                        f"({row.uplink_reduction:+.1%} vs {config.reference})"
                    )
    return result


def render_sweep(result: SweepResult) -> str:
    """The sweep as a comparison table (reporting conventions)."""
    headers = [
        "Strategy",
        "Network",
        "Faults",
        "Accuracy",
        "Uplink",
        "Reduction",
        "Acc delta",
        "Uploads",
    ]
    body = []
    for row in result.rows:
        body.append(
            [
                row.strategy,
                row.network,
                row.fault,
                f"{100 * row.final_accuracy:.2f}%",
                format_bytes(row.total_bytes_up),
                f"{100 * row.uplink_reduction:+.1f}%",
                f"{100 * row.accuracy_delta:+.2f}pt",
                str(row.total_uploads),
            ]
        )
    title = (
        f"Strategy sweep — {result.config.dataset}/{result.config.model} "
        f"({result.config.distribution}, scale={result.config.scale}, "
        f"seed={result.config.seed}, reference={result.config.reference})"
    )
    return format_table(headers, body, title=title)
