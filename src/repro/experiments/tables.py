"""Tables I and II — headline evaluation numbers (§V).

Each row reports, per method: participation, client-to-server update
frequency, communication-cost reduction against the all-clients ideal,
the range of transmitted gradient sizes, the achieved compression
ratio, and top-1 accuracy under IID and non-IID partitions of both
datasets (MNIST-like with the paper's CNN, CIFAR-100-like with the
VGG-style net).

Accounting conventions (documented in EXPERIMENTS.md):

* *Ideal updates* = ``num_rounds * num_clients`` (the paper's 800);
  "Cost Reduc." = 1 - updates/ideal, matching the paper's arithmetic
  (FedAvg at r_p=0.5 -> -50%; AdaFL's 233/800 -> -70.88%).
* Gradient sizes are honest wire bytes: a sparse update costs 8 bytes
  per retained coordinate (value + index), so our wire compression
  ratio is half the sparsity ratio the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.adafl import AdaFLAsync, AdaFLSync
from repro.embedded.cluster import compute_rates, make_heterogeneous_cluster
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.reporting import format_bytes, format_table
from repro.experiments.runner import FederationSpec, run_async, run_sync
from repro.fl.baselines import FedAdam, FedAsync, FedAvg, FedBuff, FedProx, Scaffold
from repro.fl.metrics import RunResult
from repro.network.conditions import NetworkConditions

__all__ = ["TableRow", "run_table1", "run_table2", "render_table"]

_DATASET_MODELS = {"mnist": "mnist_cnn", "cifar100": "vgg_mini"}


@dataclass
class TableRow:
    """One method's row in Table I or II."""

    method: str
    num_clients: int
    participation: str
    update_freq: int
    cost_reduction: float  # fraction of ideal updates saved
    byte_reduction: float  # fraction of ideal uplink bytes saved
    gradient_size: tuple[int, int]  # (min, max) wire bytes
    compression_ratio: tuple[float, float]  # (max, min)
    accuracies: dict[tuple[str, str], float] = field(default_factory=dict)
    runs: dict[tuple[str, str], RunResult] = field(default_factory=dict)

    def accuracy(self, dataset: str, distribution: str) -> float:
        return self.accuracies[(dataset, distribution)]


def _network(scale: ExperimentScale, seed: int) -> NetworkConditions:
    return NetworkConditions.with_stragglers(
        scale.num_clients,
        straggler_fraction=0.2,
        good_preset="wifi",
        bad_preset="constrained",
        rng=np.random.default_rng(seed + 17),
    )


def _fill_comm_columns(row: TableRow, reference: RunResult, ideal_updates: int) -> None:
    row.update_freq = reference.total_uploads
    row.cost_reduction = reference.update_cost_reduction(ideal_updates)
    row.byte_reduction = reference.byte_cost_reduction(ideal_updates)
    row.gradient_size = reference.gradient_size_range()
    row.compression_ratio = reference.compression_ratio_range()


def run_table1(
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist", "cifar100"),
    distributions: tuple[str, ...] = ("iid", "shard"),
) -> list[TableRow]:
    """Table I: synchronous methods."""
    network = _network(scale, seed)
    ideal = scale.num_rounds * scale.num_clients

    def make_strategies():
        return [
            ("fedavg", "0.5", lambda: FedAvg(participation_rate=0.5)),
            ("fedadam", "0.5", lambda: FedAdam(participation_rate=0.5)),
            ("fedprox", "0.5", lambda: FedProx(participation_rate=0.5, mu=0.01)),
            ("scaffold", "0.5", lambda: Scaffold(participation_rate=0.5)),
            ("adafl", "adaptive", lambda: AdaFLSync(default_adafl_config(scale))),
        ]

    rows = []
    for name, participation, factory in make_strategies():
        row = TableRow(
            method=name,
            num_clients=scale.num_clients,
            participation=participation,
            update_freq=0,
            cost_reduction=0.0,
            byte_reduction=0.0,
            gradient_size=(0, 0),
            compression_ratio=(1.0, 1.0),
        )
        reference: RunResult | None = None
        for dataset in datasets:
            for distribution in distributions:
                spec = FederationSpec(
                    dataset=dataset,
                    model=_DATASET_MODELS[dataset],
                    distribution=distribution,
                    scale=scale,
                    seed=seed,
                )
                result = run_sync(spec, factory(), network=network)
                row.accuracies[(dataset, distribution)] = result.final_accuracy
                row.runs[(dataset, distribution)] = result
                if reference is None:
                    reference = result  # comm columns from the first workload
        assert reference is not None
        _fill_comm_columns(row, reference, ideal)
        rows.append(row)
    return rows


def run_table2(
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    datasets: tuple[str, ...] = ("mnist", "cifar100"),
    distributions: tuple[str, ...] = ("iid", "shard"),
) -> list[TableRow]:
    """Table II: asynchronous methods.

    Equal-time protocol: FedAsync runs to its fixed update budget
    (``num_rounds * N/2``, the paper's 400) and the simulated time it
    took becomes the budget for every other method on that workload.
    AdaFL's lower update frequency within the same time window is then
    entirely due to utility-gated halting, not a shorter run.
    """
    network = _network(scale, seed)
    ideal = scale.num_rounds * scale.num_clients
    baseline_updates = scale.num_rounds * max(1, scale.num_clients // 2)
    cluster = make_heterogeneous_cluster(
        scale.num_clients,
        ["pi4"],
        rng=np.random.default_rng(seed + 23),
        slow_fraction=0.2,
        slow_factor=3.0,
    )
    rates = compute_rates(cluster)

    # Pass 1: FedAsync sets the per-workload time budget.
    time_budget: dict[tuple[str, str], float] = {}
    strategies = [
        ("fedasync", "0.5", lambda: FedAsync()),
        ("fedbuff", "0.5", lambda: FedBuff(buffer_size=3)),
        (
            "adafl-async",
            "adaptive",
            lambda: AdaFLAsync(default_adafl_config(scale, async_mode=True), network=network),
        ),
    ]
    rows = []
    for name, participation, factory in strategies:
        row = TableRow(
            method=name,
            num_clients=scale.num_clients,
            participation=participation,
            update_freq=0,
            cost_reduction=0.0,
            byte_reduction=0.0,
            gradient_size=(0, 0),
            compression_ratio=(1.0, 1.0),
        )
        reference: RunResult | None = None
        for dataset in datasets:
            for distribution in distributions:
                spec = FederationSpec(
                    dataset=dataset,
                    model=_DATASET_MODELS[dataset],
                    distribution=distribution,
                    scale=scale,
                    seed=seed,
                )
                workload = (dataset, distribution)
                if name == "fedasync":
                    result = run_async(
                        spec,
                        factory(),
                        network=network,
                        device_flops=rates,
                        max_updates=baseline_updates,
                    )
                    time_budget[workload] = result.total_sim_time
                else:
                    result = run_async(
                        spec,
                        factory(),
                        network=network,
                        device_flops=rates,
                        max_updates=ideal,  # runaway backstop only
                        max_sim_time_s=time_budget[workload],
                    )
                row.accuracies[workload] = result.final_accuracy
                row.runs[workload] = result
                if reference is None:
                    reference = result
        assert reference is not None
        _fill_comm_columns(row, reference, ideal)
        rows.append(row)
    return rows


def render_table(rows: list[TableRow], title: str, datasets: tuple[str, ...] = ("mnist", "cifar100")) -> str:
    """Format rows the way the paper prints Tables I / II."""
    headers = [
        "Method",
        "#Clients",
        "Particip.",
        "Update Freq.",
        "Cost Reduc.",
        "Gradient Size",
        "Compress. Ratio",
    ]
    for dataset in datasets:
        headers.append(f"{dataset} (IID/non-IID)")
    body = []
    for row in rows:
        lo, hi = row.gradient_size
        rmax, rmin = row.compression_ratio
        cells = [
            row.method,
            str(row.num_clients),
            row.participation,
            str(row.update_freq),
            f"-{100 * row.cost_reduction:.2f}%",
            f"{format_bytes(lo)} - {format_bytes(hi)}" if lo != hi else format_bytes(lo),
            f"{rmax:.0f}x - {rmin:.0f}x" if rmax != rmin else f"{rmax:.0f}x",
        ]
        for dataset in datasets:
            iid = row.accuracies.get((dataset, "iid"), float("nan"))
            noniid = row.accuracies.get((dataset, "shard"), float("nan"))
            cells.append(f"{100 * iid:.2f}% / {100 * noniid:.2f}%")
        body.append(cells)
    return format_table(headers, body, title=title)
