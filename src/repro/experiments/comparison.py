"""Figure 3 — AdaFL vs the state of the art (§V, "Effectiveness").

Four panels of CNN-on-MNIST accuracy curves:

* (a) synchronous, IID — FedAvg / FedAdam / FedProx / SCAFFOLD / AdaFL
  against communication rounds;
* (b) synchronous, non-IID — same methods;
* (c) asynchronous, IID — FedAsync / FedBuff / AdaFL against simulated
  time;
* (d) asynchronous, non-IID — same methods.

Baselines run at the paper's fixed participation rate ``r_p = 0.5``;
AdaFL selects adaptively with ``k <= 5``.
"""

from __future__ import annotations

import numpy as np

from repro.core.adafl import AdaFLAsync, AdaFLConfig, AdaFLSync
from repro.core.compression_policy import AdaptiveCompressionPolicy
from repro.embedded.cluster import compute_rates, make_heterogeneous_cluster
from repro.experiments.empirical import PanelResult
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, run_async, run_sync
from repro.fl.baselines import FedAdam, FedAsync, FedAvg, FedBuff, FedProx, Scaffold
from repro.network.conditions import NetworkConditions

__all__ = [
    "default_adafl_config",
    "run_fig3_sync_panel",
    "run_fig3_async_panel",
    "run_fig3",
]


def default_adafl_config(scale: ExperimentScale, async_mode: bool = False) -> AdaFLConfig:
    """AdaFL settings matched to the paper's evaluation (k<=5, warm-up).

    Synchronous runs use the relative threshold (filter the lowest 60%
    of utility scores each round), which keeps the adaptive
    participation rate below the baselines' fixed 0.5 while preserving
    accuracy parity at bench scale.  Asynchronous runs use an absolute
    threshold — halting is a local per-client decision with no round
    population to take a quantile over.
    """
    warmup = max(2, scale.num_rounds // 10)
    policy = AdaptiveCompressionPolicy(
        min_ratio=4.0,
        max_ratio=105.0 if async_mode else 210.0,
        warmup_rounds=warmup,
        warmup_ratio=4.0,
    )
    if async_mode:
        return AdaFLConfig(
            k_max=max(1, scale.num_clients // 2),
            tau=0.62,
            tau_mode="absolute",
            score_smoothing=0.5,
            policy=policy,
        )
    return AdaFLConfig(
        k_max=max(1, scale.num_clients // 2),
        tau=0.6,
        tau_mode="relative",
        score_smoothing=0.5,
        rotation_bonus=0.15,
        policy=policy,
    )


def _network(scale: ExperimentScale, seed: int) -> NetworkConditions:
    """The evaluation's fixed-bandwidth network with a slow minority."""
    return NetworkConditions.with_stragglers(
        scale.num_clients,
        straggler_fraction=0.2,
        good_preset="wifi",
        bad_preset="constrained",
        rng=np.random.default_rng(seed + 17),
    )


def run_fig3_sync_panel(
    distribution: str = "iid",
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    dataset: str = "mnist",
    model: str = "mnist_cnn",
) -> PanelResult:
    """One synchronous Figure 3 panel (accuracy vs round)."""
    panel = PanelResult(
        panel_id=f"fig3-sync-{distribution}",
        title=f"Sync comparison, {dataset}, {distribution}",
        x_name="round",
    )
    network = _network(scale, seed)
    methods = [
        FedAvg(participation_rate=0.5),
        FedAdam(participation_rate=0.5),
        FedProx(participation_rate=0.5, mu=0.01),
        Scaffold(participation_rate=0.5),
        AdaFLSync(default_adafl_config(scale)),
    ]
    for strategy in methods:
        spec = FederationSpec(
            dataset=dataset,
            model=model,
            distribution=distribution,
            scale=scale,
            seed=seed,
        )
        result = run_sync(spec, strategy, network=network)
        panel.series[strategy.name] = result.accuracy_curve()
        panel.runs[strategy.name] = result
    return panel


def run_fig3_async_panel(
    distribution: str = "iid",
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    dataset: str = "mnist",
    model: str = "mnist_cnn",
) -> PanelResult:
    """One asynchronous Figure 3 panel (accuracy vs simulated time)."""
    panel = PanelResult(
        panel_id=f"fig3-async-{distribution}",
        title=f"Async comparison, {dataset}, {distribution}",
        x_name="time_s",
    )
    network = _network(scale, seed)
    cluster = make_heterogeneous_cluster(
        scale.num_clients,
        ["pi4"],
        rng=np.random.default_rng(seed + 23),
        slow_fraction=0.2,
        slow_factor=3.0,
    )
    rates = compute_rates(cluster)
    max_updates = scale.num_rounds * max(1, scale.num_clients // 2)
    methods = [
        FedAsync(),
        FedBuff(buffer_size=3),
        AdaFLAsync(default_adafl_config(scale, async_mode=True), network=network),
    ]
    for strategy in methods:
        spec = FederationSpec(
            dataset=dataset,
            model=model,
            distribution=distribution,
            scale=scale,
            seed=seed,
        )
        result = run_async(
            spec, strategy, network=network, device_flops=rates, max_updates=max_updates
        )
        panel.series[strategy.name] = result.time_accuracy_curve()
        panel.runs[strategy.name] = result
    return panel


def run_fig3(scale: ExperimentScale = BENCH, seed: int = 0) -> list[PanelResult]:
    """All four Figure 3 panels."""
    return [
        run_fig3_sync_panel("iid", scale, seed),
        run_fig3_sync_panel("shard", scale, seed),
        run_fig3_async_panel("iid", scale, seed),
        run_fig3_async_panel("shard", scale, seed),
    ]
