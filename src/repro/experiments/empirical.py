"""Figure 1 — the empirical study of FL network resiliency (§III-B).

Twelve panels:

* (a)–(h) synchronous FedAvg under 0/10/20/50% stragglers, in two
  failure modes (*dropout*: the straggler reaches the server only
  every other round; *data loss*: the straggler's upload is lost in
  transit with probability 1/2), for two workloads (CNN on the
  MNIST-like set, residual CNN on the CIFAR-10-like set) and two data
  distributions (IID, non-IID shards).
* (i)–(l) asynchronous FedAsync where the straggler fraction is made
  3x slower (staleness) — accuracy against simulated time, compared
  with the equivalent dropout runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedded.cluster import compute_rates, make_heterogeneous_cluster
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, run_async, run_sync
from repro.fl.baselines import FedAsync, FedAvg
from repro.fl.faults import FaultInjector
from repro.fl.metrics import RunResult

__all__ = ["PanelResult", "run_fig1_sync_panel", "run_fig1_async_panel", "run_fig1",
           "STRAGGLER_FRACTIONS"]

STRAGGLER_FRACTIONS = (0.0, 0.1, 0.2, 0.5)

_WORKLOADS = {
    "mnist": ("mnist", "mnist_cnn"),
    "cifar10": ("cifar10", "resnet_mini"),
}


@dataclass
class PanelResult:
    """One figure panel: a family of labelled curves."""

    panel_id: str
    title: str
    x_name: str
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    runs: dict[str, RunResult] = field(default_factory=dict)

    def final_accuracies(self) -> dict[str, float]:
        """Label -> last point of each curve."""
        return {
            label: float(y[-1]) if y.size else float("nan")
            for label, (_, y) in self.series.items()
        }


def run_fig1_sync_panel(
    workload: str = "mnist",
    distribution: str = "iid",
    mode: str = "dropout",
    fractions: tuple[float, ...] = STRAGGLER_FRACTIONS,
    scale: ExperimentScale = BENCH,
    seed: int = 0,
) -> PanelResult:
    """One synchronous panel of Figure 1."""
    if workload not in _WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    if mode not in ("dropout", "dataloss"):
        raise ValueError("mode must be 'dropout' or 'dataloss'")
    dataset, model = _WORKLOADS[workload]
    panel = PanelResult(
        panel_id=f"fig1-sync-{workload}-{distribution}-{mode}",
        title=f"Sync FedAvg, {workload}, {distribution}, {mode}",
        x_name="round",
    )
    for fraction in fractions:
        spec = FederationSpec(
            dataset=dataset,
            model=model,
            distribution=distribution,
            scale=scale,
            seed=seed,
            participation_rate=1.0,  # the study isolates faults, not sampling
        )
        rng = np.random.default_rng(seed + int(fraction * 100))
        faults = FaultInjector.from_fraction(
            mode if fraction > 0 else "none",
            scale.num_clients,
            fraction,
            rng,
        )
        result = run_sync(spec, FedAvg(participation_rate=1.0), faults=faults)
        label = f"{int(fraction * 100)}%"
        panel.series[label] = result.accuracy_curve()
        panel.runs[label] = result
    return panel


def run_fig1_async_panel(
    workload: str = "mnist",
    distribution: str = "iid",
    fractions: tuple[float, ...] = STRAGGLER_FRACTIONS,
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    slow_factor: float = 3.0,
) -> PanelResult:
    """One asynchronous (staleness) panel of Figure 1.

    The straggler fraction runs on devices ``slow_factor`` slower, so
    their updates arrive stale; accuracy is plotted against simulated
    time.
    """
    if workload not in _WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    dataset, model = _WORKLOADS[workload]
    panel = PanelResult(
        panel_id=f"fig1-async-{workload}-{distribution}-staleness",
        title=f"Async FedAsync, {workload}, {distribution}, {slow_factor}x-slow stragglers",
        x_name="time_s",
    )
    # Half the sync ideal is plenty to expose the staleness gap (the
    # wall-clock ratio is budget-independent) at half the bench cost.
    max_updates = scale.num_rounds * scale.num_clients // 2
    for fraction in fractions:
        spec = FederationSpec(
            dataset=dataset,
            model=model,
            distribution=distribution,
            scale=scale,
            seed=seed,
        )
        cluster = make_heterogeneous_cluster(
            scale.num_clients,
            ["pi4"],
            rng=np.random.default_rng(seed + int(fraction * 100)),
            slow_fraction=fraction,
            slow_factor=slow_factor,
        )
        result = run_async(
            spec,
            FedAsync(),
            device_flops=compute_rates(cluster),
            max_updates=max_updates,
        )
        label = f"{int(fraction * 100)}%"
        panel.series[label] = result.time_accuracy_curve()
        panel.runs[label] = result
    return panel


def run_fig1(
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    workloads: tuple[str, ...] = ("mnist", "cifar10"),
) -> list[PanelResult]:
    """All panels of Figure 1 (8 sync + 4 async for the default workloads)."""
    panels = []
    for workload in workloads:
        for distribution in ("iid", "shard"):
            for mode in ("dropout", "dataloss"):
                panels.append(
                    run_fig1_sync_panel(workload, distribution, mode, scale=scale, seed=seed)
                )
    for workload in workloads:
        for distribution in ("iid", "shard"):
            panels.append(
                run_fig1_async_panel(workload, distribution, scale=scale, seed=seed)
            )
    return panels
