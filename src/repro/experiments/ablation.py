"""Ablations over AdaFL's design choices.

DESIGN.md calls out four knobs the paper fixes without sweeping; the
ablation bench regenerates evidence for each:

* **similarity metric** — cosine (paper's choice) vs L2 vs Euclidean
  (the alternatives §IV mentions);
* **warm-up length** — no warm-up vs the default vs extended;
* **compression bounds** — adaptive 4x–210x vs fixed-light (4x) vs
  fixed-heavy (210x);
* **bandwidth term** — utility with vs without the ``B_i`` inputs
  (similarity-only selection).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.adafl import AdaFLConfig, AdaFLSync
from repro.core.utility import UtilityScorer
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, run_sync
from repro.fl.metrics import RunResult
from repro.network.conditions import NetworkConditions

__all__ = ["AblationPoint", "run_ablation", "ablation_variants"]


@dataclass(frozen=True)
class AblationPoint:
    """One AdaFL variant's outcome."""

    variant: str
    accuracy: float
    updates: int
    bytes_up: int
    run: RunResult


def ablation_variants(scale: ExperimentScale) -> dict[str, AdaFLConfig]:
    """Named AdaFL configurations for the ablation sweep."""
    base = default_adafl_config(scale)
    policy = base.policy
    return {
        "base(cosine)": base,
        "metric=l2": replace(base, scorer=replace(base.scorer, metric="l2")),
        "metric=euclidean": replace(base, scorer=replace(base.scorer, metric="euclidean")),
        "no-warmup": replace(base, policy=replace(policy, warmup_rounds=0)),
        "long-warmup": replace(base, policy=replace(policy, warmup_rounds=max(4, scale.num_rounds // 4))),
        "fixed-light(4x)": replace(
            base, policy=replace(policy, min_ratio=4.0, max_ratio=4.0, warmup_ratio=4.0)
        ),
        "fixed-heavy(210x)": replace(
            base,
            policy=replace(policy, min_ratio=210.0, max_ratio=210.0, warmup_ratio=210.0),
        ),
        "no-bandwidth-term": replace(
            base, scorer=UtilityScorer(metric=base.scorer.metric, sim_weight=1.0, bw_weight=0.0)
        ),
        "no-threshold(tau=0)": replace(base, tau=0.0),
        "no-score-smoothing": replace(base, score_smoothing=0.0),
        "no-rotation-bonus": replace(base, rotation_bonus=0.0),
        "absolute-tau(0.6)": replace(base, tau=0.6, tau_mode="absolute"),
    }


def run_ablation(
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    distribution: str = "shard",
    variants: dict[str, AdaFLConfig] | None = None,
) -> list[AblationPoint]:
    """Run each AdaFL variant on the same federation and compare."""
    variants = variants if variants is not None else ablation_variants(scale)
    network = NetworkConditions.with_stragglers(
        scale.num_clients,
        straggler_fraction=0.2,
        good_preset="wifi",
        bad_preset="constrained",
        rng=np.random.default_rng(seed + 17),
    )
    points = []
    for name, config in variants.items():
        spec = FederationSpec(
            dataset="mnist",
            model="mnist_cnn",
            distribution=distribution,
            scale=scale,
            seed=seed,
        )
        result = run_sync(spec, AdaFLSync(config), network=network)
        points.append(
            AblationPoint(
                variant=name,
                accuracy=result.final_accuracy,
                updates=result.total_uploads,
                bytes_up=result.total_bytes_up,
                run=result,
            )
        )
    return points
