"""Shared experiment plumbing: build a federation from a spec and run it.

Every figure/table runner builds on :func:`run_sync` / :func:`run_async`
so that the only thing an experiment module describes is *what varies*
(strategy, faults, network mix) — dataset synthesis, partitioning,
model construction, and engine wiring stay in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.data.partition import partition_dataset
from repro.data.synthetic import make_image_classification
from repro.experiments.presets import BENCH, ExperimentScale
from repro.fl.async_engine import AsyncEngine
from repro.fl.client import Client
from repro.fl.config import FederationConfig, LocalTrainingConfig
from repro.fl.faults import FaultInjector
from repro.fl.metrics import RunResult
from repro.fl.server import Server
from repro.fl.strategy import AsyncStrategy, SyncStrategy
from repro.fl.sync_engine import SyncEngine
from repro.network.conditions import NetworkConditions
from repro.sim import EventTrace
from repro.nn.models import build_mlp, build_mnist_cnn, build_resnet_mini, build_vgg_mini
from repro.nn.sequential import Sequential

__all__ = ["DatasetProfile", "DATASET_PROFILES", "FederationSpec", "Federation",
           "build_federation", "run_sync", "run_async"]


@dataclass(frozen=True)
class DatasetProfile:
    """Synthesis parameters for one named dataset stand-in.

    ``sample_multiplier`` scales the experiment's ``train_samples`` for
    datasets that need more data per class (CIFAR-100's hundred classes
    would otherwise see ~12 samples each at bench scale).
    """

    channels: int
    num_classes: int
    noise_std: float
    prototypes_per_class: int
    sample_multiplier: float = 1.0


# Noise levels are calibrated so the paper's models approach the
# paper's accuracy regimes (MNIST low-90s; CIFAR-100 middling) rather
# than saturating instantly — see EXPERIMENTS.md.
DATASET_PROFILES: dict[str, DatasetProfile] = {
    "mnist": DatasetProfile(channels=1, num_classes=10, noise_std=1.35, prototypes_per_class=1),
    "cifar10": DatasetProfile(channels=3, num_classes=10, noise_std=1.7, prototypes_per_class=2),
    "cifar100": DatasetProfile(
        channels=3,
        num_classes=100,
        noise_std=0.95,
        prototypes_per_class=1,
        sample_multiplier=3.0,
    ),
}


@dataclass(frozen=True)
class FederationSpec:
    """A complete description of one federated run's fixed inputs."""

    dataset: str = "mnist"
    model: str = "mnist_cnn"
    distribution: str = "iid"  # iid | shard | dirichlet | label_skew
    scale: ExperimentScale = field(default_factory=lambda: BENCH)
    seed: int = 0
    lr: float = 0.02
    momentum: float = 0.0
    participation_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_PROFILES:
            known = ", ".join(sorted(DATASET_PROFILES))
            raise ValueError(f"unknown dataset {self.dataset!r}; known: {known}")


@dataclass
class Federation:
    """A constructed federation, ready for an engine."""

    server: Server
    clients: list[Client]
    test_set: Dataset
    model_fn: Callable[[], Sequential]
    spec: FederationSpec


def _model_builder(spec: FederationSpec) -> Callable[[], Sequential]:
    profile = DATASET_PROFILES[spec.dataset]
    size = spec.scale.image_size
    shape = (profile.channels, size, size)
    classes = profile.num_classes
    model_seed = spec.seed + 7919  # decouple init from data sampling
    if spec.model == "mnist_cnn":
        return lambda: build_mnist_cnn(
            shape,
            classes,
            channels=spec.scale.cnn_channels,
            hidden=spec.scale.cnn_hidden,
            seed=model_seed,
        )
    if spec.model == "mlp":
        return lambda: build_mlp(shape, classes, hidden=(spec.scale.cnn_hidden,), seed=model_seed)
    if spec.model == "resnet_mini":
        return lambda: build_resnet_mini(
            shape, classes, width=spec.scale.cnn_channels[0], num_blocks=1, seed=model_seed
        )
    if spec.model == "vgg_mini":
        return lambda: build_vgg_mini(
            shape,
            classes,
            widths=spec.scale.cnn_channels,
            hidden=spec.scale.cnn_hidden,
            seed=model_seed,
        )
    raise ValueError(f"unknown model {spec.model!r}")


def build_federation(spec: FederationSpec) -> Federation:
    """Synthesize data, partition it, and build server + clients."""
    profile = DATASET_PROFILES[spec.dataset]
    size = spec.scale.image_size
    train, test = make_image_classification(
        n_train=int(spec.scale.train_samples * profile.sample_multiplier),
        n_test=spec.scale.test_samples,
        num_classes=profile.num_classes,
        image_shape=(profile.channels, size, size),
        noise_std=profile.noise_std,
        prototypes_per_class=profile.prototypes_per_class,
        seed=spec.seed,
        name=spec.dataset,
    )
    rng = np.random.default_rng(spec.seed + 1)
    shards = partition_dataset(train, spec.scale.num_clients, spec.distribution, rng)
    model_fn = _model_builder(spec)
    clients = [
        Client(i, shards[i], model_fn, seed=spec.seed + 1000 + i)
        for i in range(spec.scale.num_clients)
    ]
    server = Server(model_fn, test)
    return Federation(server=server, clients=clients, test_set=test, model_fn=model_fn, spec=spec)


def _federation_config(
    spec: FederationSpec,
    max_updates: int | None = None,
    max_sim_time_s: float | None = None,
    validation=None,
    downlink_retry=None,
    uplink_retry=None,
) -> FederationConfig:
    return FederationConfig(
        num_rounds=spec.scale.num_rounds,
        participation_rate=spec.participation_rate,
        eval_every=spec.scale.eval_every,
        seed=spec.seed + 2,
        local=LocalTrainingConfig(
            local_epochs=spec.scale.local_epochs,
            batch_size=spec.scale.batch_size,
            lr=spec.lr,
            momentum=spec.momentum,
        ),
        max_sim_time_s=(
            max_sim_time_s if max_sim_time_s is not None else spec.scale.max_sim_time_s
        ),
        max_updates=max_updates,
        validation=validation,
        downlink_retry=downlink_retry,
        uplink_retry=uplink_retry,
    )


def run_sync(
    spec: FederationSpec,
    strategy: SyncStrategy,
    network: NetworkConditions | None = None,
    faults: FaultInjector | None = None,
    device_flops: np.ndarray | None = None,
    churn=None,
    chaos=None,
    validation=None,
    downlink_retry=None,
    uplink_retry=None,
    trace: EventTrace | None = None,
    snapshot_path=None,
    snapshot_every: int | None = None,
) -> RunResult:
    """Build a federation and run it synchronously.

    ``churn`` is an availability model (``repro.network.churn``);
    ``chaos`` a :class:`~repro.sim.FaultPlan`, ``validation`` a
    :class:`~repro.fl.validation.ValidationConfig`, and
    ``downlink_retry``/``uplink_retry`` per-leg
    :class:`~repro.sim.RetryPolicy` overrides; ``snapshot_path`` makes
    the run crash-safe (see :mod:`repro.fl.snapshot`).  ``trace`` is an
    :class:`~repro.sim.EventTrace` with caller-attached sinks (e.g. a
    JSONL writer) to record the run's event stream.
    """
    fed = build_federation(spec)
    engine = SyncEngine(
        fed.server,
        fed.clients,
        strategy,
        _federation_config(
            spec,
            validation=validation,
            downlink_retry=downlink_retry,
            uplink_retry=uplink_retry,
        ),
        network=network,
        faults=faults,
        device_flops=device_flops,
        churn=churn,
        chaos=chaos,
        trace=trace,
        snapshot_path=snapshot_path,
        snapshot_every=snapshot_every,
    )
    return engine.run()


def run_async(
    spec: FederationSpec,
    strategy: AsyncStrategy,
    network: NetworkConditions | None = None,
    device_flops: np.ndarray | None = None,
    max_updates: int | None = None,
    max_sim_time_s: float | None = None,
    churn=None,
    faults: FaultInjector | None = None,
    chaos=None,
    validation=None,
    downlink_retry=None,
    uplink_retry=None,
    trace: EventTrace | None = None,
    snapshot_path=None,
    snapshot_every: int | None = None,
) -> RunResult:
    """Build a federation and run it asynchronously.

    ``max_updates`` caps the number of delivered client updates;
    ``max_sim_time_s`` overrides the scale's simulated-time budget
    (the paper's Table II compares methods over an equal time budget).
    ``churn``/``faults``/``chaos``/``validation``/retry/``trace``/
    snapshot parameters mirror :func:`run_sync`.
    """
    fed = build_federation(spec)
    engine = AsyncEngine(
        fed.server,
        fed.clients,
        strategy,
        _federation_config(
            spec,
            max_updates=max_updates,
            max_sim_time_s=max_sim_time_s,
            validation=validation,
            downlink_retry=downlink_retry,
            uplink_retry=uplink_retry,
        ),
        network=network,
        device_flops=device_flops,
        churn=churn,
        faults=faults,
        chaos=chaos,
        trace=trace,
        snapshot_path=snapshot_path,
        snapshot_every=snapshot_every,
    )
    return engine.run()
