"""Energy extension of the overhead study (Q3, in joules).

The paper argues in CPU cycles; on battery-powered embedded devices
the real currency is energy, where radio transmission dominates.  This
runner replays a FedAvg run and an AdaFL run through the
:class:`repro.embedded.energy.EnergyModel` and reports per-client
joules split into compute / uplink / downlink — quantifying how much
of AdaFL's saving comes from bytes not sent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adafl import AdaFLSync
from repro.embedded.device import DEVICE_PRESETS
from repro.embedded.energy import RADIO_PRESETS, EnergyModel
from repro.embedded.profiler import training_flops
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, build_federation
from repro.fl.baselines import FedAvg
from repro.fl.config import FederationConfig, LocalTrainingConfig
from repro.fl.metrics import RunResult
from repro.fl.sync_engine import SyncEngine

__all__ = ["EnergyStudyResult", "run_energy_study"]


@dataclass(frozen=True)
class EnergyStudyResult:
    """Fleet-total energy for FedAvg vs AdaFL over the same task."""

    fedavg_compute_j: float
    fedavg_comm_j: float
    adafl_compute_j: float
    adafl_comm_j: float
    fedavg_accuracy: float
    adafl_accuracy: float

    @property
    def fedavg_total_j(self) -> float:
        return self.fedavg_compute_j + self.fedavg_comm_j

    @property
    def adafl_total_j(self) -> float:
        return self.adafl_compute_j + self.adafl_comm_j

    @property
    def energy_saving(self) -> float:
        """Fraction of FedAvg's total energy that AdaFL avoids."""
        if self.fedavg_total_j == 0:
            return 0.0
        return 1.0 - self.adafl_total_j / self.fedavg_total_j


def _replay_energy(
    result: RunResult,
    train_flops_per_client: dict[int, int],
    model: EnergyModel,
) -> tuple[float, float]:
    """(compute joules, communication joules) across the whole fleet."""
    compute = 0.0
    comm = 0.0
    for record in result.records:
        for cid in record.participants:
            compute += model.compute_energy(train_flops_per_client[cid])
        comm += model.tx_energy(record.bytes_up) + model.rx_energy(record.bytes_down)
    return compute, comm


def run_energy_study(
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    device_model: str = "pi4",
    radio: str = "lte",
) -> EnergyStudyResult:
    """Run FedAvg and AdaFL, then account fleet energy for both."""
    energy_model = EnergyModel(DEVICE_PRESETS[device_model], RADIO_PRESETS[radio])

    def run(strategy_factory):
        spec = FederationSpec(
            dataset="mnist",
            model="mnist_cnn",
            distribution="shard",
            scale=scale,
            seed=seed,
        )
        fed = build_federation(spec)
        config = FederationConfig(
            num_rounds=scale.num_rounds,
            participation_rate=0.5,
            eval_every=scale.num_rounds,
            seed=seed + 2,
            local=LocalTrainingConfig(
                local_epochs=scale.local_epochs,
                batch_size=scale.batch_size,
                lr=spec.lr,
            ),
        )
        engine = SyncEngine(fed.server, fed.clients, strategy_factory(), config)
        result = engine.run()
        model = fed.model_fn()
        flops = {
            c.client_id: training_flops(model, len(c.dataset), scale.local_epochs)
            for c in fed.clients
        }
        return result, flops

    fedavg_result, flops = run(lambda: FedAvg(participation_rate=0.5))
    adafl_result, _ = run(lambda: AdaFLSync(default_adafl_config(scale)))

    fedavg_compute, fedavg_comm = _replay_energy(fedavg_result, flops, energy_model)
    adafl_compute, adafl_comm = _replay_energy(adafl_result, flops, energy_model)
    return EnergyStudyResult(
        fedavg_compute_j=fedavg_compute,
        fedavg_comm_j=fedavg_comm,
        adafl_compute_j=adafl_compute,
        adafl_comm_j=adafl_comm,
        fedavg_accuracy=fedavg_result.final_accuracy,
        adafl_accuracy=adafl_result.final_accuracy,
    )
