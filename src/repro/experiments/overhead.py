"""§V Q3 — AdaFL's on-device overhead, on a simulated Pi cluster.

The paper runs a ten-node Raspberry Pi cluster under ``perf`` and
reports that utility-score calculation adds ~0.05% CPU cycles over the
training baseline, compression adds more, and adaptive selection's
compute savings dwarf both.  This runner reproduces that accounting
with the cycle cost model of :mod:`repro.embedded.profiler`:

1. run AdaFL-sync for real to obtain the actual per-round selection
   decisions;
2. charge each client's cycle counter for its training, utility
   scoring, and compression work as they would occur on a Pi;
3. compare against the no-AdaFL baseline in which every selected-rate
   client trains and uploads densely every round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adafl import AdaFLSync
from repro.embedded.cluster import compute_rates, make_pi_cluster
from repro.embedded.profiler import (
    CycleCounter,
    dgc_compress_flops,
    training_flops,
    utility_score_flops,
)
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, build_federation
from repro.fl.config import FederationConfig, LocalTrainingConfig
from repro.fl.sync_engine import SyncEngine

__all__ = ["OverheadResult", "run_overhead_study"]


@dataclass(frozen=True)
class OverheadResult:
    """Cycle accounting for the overhead experiment."""

    baseline_cycles: float  # training every round without AdaFL
    utility_cycles: float  # added by utility scoring
    compression_cycles: float  # added by DGC compression
    adafl_training_cycles: float  # training actually performed by AdaFL
    rounds: int
    accuracy: float

    @property
    def utility_overhead_pct(self) -> float:
        """The paper's headline ~0.05% figure."""
        return 100.0 * self.utility_cycles / self.baseline_cycles

    @property
    def compression_overhead_pct(self) -> float:
        return 100.0 * self.compression_cycles / self.baseline_cycles

    @property
    def compute_saving_pct(self) -> float:
        """Training cycles saved by adaptive selection (positive = saved)."""
        return 100.0 * (1.0 - self.adafl_training_cycles / self.baseline_cycles)

    @property
    def net_cycles(self) -> float:
        """AdaFL total including overheads."""
        return self.adafl_training_cycles + self.utility_cycles + self.compression_cycles


def run_overhead_study(
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    device_model: str = "pi4",
) -> OverheadResult:
    """Run AdaFL on a Pi cluster and account CPU cycles per component."""
    cluster = make_pi_cluster(scale.num_clients, model=device_model)
    rates = compute_rates(cluster)

    spec = FederationSpec(
        dataset="mnist",
        model="mnist_cnn",
        distribution="shard",
        scale=scale,
        seed=seed,
    )
    fed = build_federation(spec)
    strategy = AdaFLSync(default_adafl_config(scale))
    config = FederationConfig(
        num_rounds=scale.num_rounds,
        participation_rate=1.0,
        eval_every=scale.num_rounds,  # one final evaluation is enough here
        seed=seed + 2,
        local=LocalTrainingConfig(
            local_epochs=scale.local_epochs,
            batch_size=scale.batch_size,
            lr=0.02,
        ),
    )
    engine = SyncEngine(
        fed.server, fed.clients, strategy, config, device_flops=rates
    )
    result = engine.run()

    model = fed.model_fn()
    dim = model.num_params
    counter = CycleCounter(cluster[0])

    # Per-client per-round training cost (local data sizes differ).
    train_cost = {
        c.client_id: training_flops(model, len(c.dataset), scale.local_epochs)
        for c in fed.clients
    }

    # Baseline: every client trains and uploads densely every round —
    # the "without AdaFL" perf run the paper subtracts against.
    for _ in range(scale.num_rounds):
        for cid, flops in train_cost.items():
            counter.charge_flops("training", flops)
    baseline = counter.cycles("training")
    counter.reset()

    # AdaFL: training only for actual participants; utility scoring for
    # every client every post-warm-up round; compression per upload.
    warmup = strategy.config.policy.warmup_rounds
    for record in result.records:
        for cid in record.participants:
            counter.charge_flops("training", train_cost[cid])
        if record.round_index >= warmup:
            for cid in train_cost:
                counter.charge_flops("utility", utility_score_flops(dim))
        for _ in record.participants:
            counter.charge_flops("compression", dgc_compress_flops(dim))

    return OverheadResult(
        baseline_cycles=baseline,
        utility_cycles=counter.cycles("utility"),
        compression_cycles=counter.cycles("compression"),
        adafl_training_cycles=counter.cycles("training"),
        rounds=scale.num_rounds,
        accuracy=result.final_accuracy,
    )
