"""§V scalability claim — AdaFL with 20 to 100 clients.

The paper states AdaFL was additionally evaluated "with 20 to 100
clients to assess its scalability".  This runner sweeps the federation
size, holding per-client data volume constant, and reports accuracy,
update frequency, and communication volume per size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.adafl import AdaFLSync
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, run_sync
from repro.fl.baselines import FedAvg
from repro.fl.metrics import RunResult
from repro.network.conditions import NetworkConditions

__all__ = ["ScalePoint", "run_scalability"]

DEFAULT_CLIENT_COUNTS = (20, 50, 100)
_SAMPLES_PER_CLIENT = 40


@dataclass(frozen=True)
class ScalePoint:
    """Results at one federation size."""

    num_clients: int
    adafl_accuracy: float
    fedavg_accuracy: float
    adafl_updates: int
    fedavg_updates: int
    adafl_bytes_up: int
    fedavg_bytes_up: int
    adafl_run: RunResult
    fedavg_run: RunResult

    @property
    def update_saving(self) -> float:
        """Fraction of FedAvg's updates that AdaFL avoided."""
        if self.fedavg_updates == 0:
            return 0.0
        return 1.0 - self.adafl_updates / self.fedavg_updates

    @property
    def byte_saving(self) -> float:
        if self.fedavg_bytes_up == 0:
            return 0.0
        return 1.0 - self.adafl_bytes_up / self.fedavg_bytes_up


def run_scalability(
    client_counts: tuple[int, ...] = DEFAULT_CLIENT_COUNTS,
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    distribution: str = "shard",
) -> list[ScalePoint]:
    """Sweep the number of clients; compare AdaFL against FedAvg."""
    points = []
    for n in client_counts:
        sized = replace(
            scale,
            num_clients=n,
            train_samples=max(scale.train_samples, n * _SAMPLES_PER_CLIENT),
        )
        spec = FederationSpec(
            dataset="mnist",
            model="mnist_cnn",
            distribution=distribution,
            scale=sized,
            seed=seed,
        )
        network = NetworkConditions.with_stragglers(
            n,
            straggler_fraction=0.2,
            good_preset="wifi",
            bad_preset="constrained",
            rng=np.random.default_rng(seed + n),
        )
        adafl = run_sync(spec, AdaFLSync(default_adafl_config(sized)), network=network)
        fedavg = run_sync(spec, FedAvg(participation_rate=0.5), network=network)
        points.append(
            ScalePoint(
                num_clients=n,
                adafl_accuracy=adafl.final_accuracy,
                fedavg_accuracy=fedavg.final_accuracy,
                adafl_updates=adafl.total_uploads,
                fedavg_updates=fedavg.total_uploads,
                adafl_bytes_up=adafl.total_bytes_up,
                fedavg_bytes_up=fedavg.total_bytes_up,
                adafl_run=adafl,
                fedavg_run=fedavg,
            )
        )
    return points
