"""§V scalability claim — AdaFL with 20 to 100 clients, and beyond.

The paper states AdaFL was additionally evaluated "with 20 to 100
clients to assess its scalability".  This runner sweeps the federation
size, holding per-client data volume constant, and reports accuracy,
update frequency, and communication volume per size.

:func:`run_population_smoke` goes past the paper's 100 clients: it
drives a federated round over a **virtual population** of (by default)
100 000 clients through the :class:`~repro.fl.population.ClientPopulation`
registry, where only the active cohort is ever materialised.  The
returned accounting (peak live clients, live bytes, descriptor bytes,
materialization counts) is what the ``population`` bench section and
the CLI ``scalability --population`` path report.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.adafl import AdaFLSync
from repro.core.selection import reservoir_sample
from repro.data.synthetic import make_image_classification
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, run_sync
from repro.fl.async_engine import AsyncEngine
from repro.fl.baselines import FedAsync, FedAvg
from repro.fl.client import Client
from repro.fl.config import FederationConfig, LocalTrainingConfig
from repro.fl.metrics import RunResult
from repro.fl.population import ClientPopulation, RetentionPolicy
from repro.fl.server import Server
from repro.fl.sync_engine import SyncEngine
from repro.network.conditions import NetworkConditions
from repro.nn.models import build_mlp

__all__ = [
    "ScalePoint",
    "run_scalability",
    "SyntheticShardFactory",
    "run_population_smoke",
]

DEFAULT_CLIENT_COUNTS = (20, 50, 100)
_SAMPLES_PER_CLIENT = 40


@dataclass(frozen=True)
class ScalePoint:
    """Results at one federation size."""

    num_clients: int
    adafl_accuracy: float
    fedavg_accuracy: float
    adafl_updates: int
    fedavg_updates: int
    adafl_bytes_up: int
    fedavg_bytes_up: int
    adafl_run: RunResult
    fedavg_run: RunResult

    @property
    def update_saving(self) -> float:
        """Fraction of FedAvg's updates that AdaFL avoided."""
        if self.fedavg_updates == 0:
            return 0.0
        return 1.0 - self.adafl_updates / self.fedavg_updates

    @property
    def byte_saving(self) -> float:
        if self.fedavg_bytes_up == 0:
            return 0.0
        return 1.0 - self.adafl_bytes_up / self.fedavg_bytes_up


def run_scalability(
    client_counts: tuple[int, ...] = DEFAULT_CLIENT_COUNTS,
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    distribution: str = "shard",
) -> list[ScalePoint]:
    """Sweep the number of clients; compare AdaFL against FedAvg."""
    points = []
    for n in client_counts:
        sized = replace(
            scale,
            num_clients=n,
            train_samples=max(scale.train_samples, n * _SAMPLES_PER_CLIENT),
        )
        spec = FederationSpec(
            dataset="mnist",
            model="mnist_cnn",
            distribution=distribution,
            scale=sized,
            seed=seed,
        )
        network = NetworkConditions.with_stragglers(
            n,
            straggler_fraction=0.2,
            good_preset="wifi",
            bad_preset="constrained",
            rng=np.random.default_rng(seed + n),
        )
        adafl = run_sync(spec, AdaFLSync(default_adafl_config(sized)), network=network)
        fedavg = run_sync(spec, FedAvg(participation_rate=0.5), network=network)
        points.append(
            ScalePoint(
                num_clients=n,
                adafl_accuracy=adafl.final_accuracy,
                fedavg_accuracy=fedavg.final_accuracy,
                adafl_updates=adafl.total_uploads,
                fedavg_updates=fedavg.total_uploads,
                adafl_bytes_up=adafl.total_bytes_up,
                fedavg_bytes_up=fedavg.total_bytes_up,
                adafl_run=adafl,
                fedavg_run=fedavg,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Population-scale smoke: 100k virtual clients in O(active) memory
# ---------------------------------------------------------------------------

_SMOKE_SHAPE = (1, 6, 6)
_SMOKE_CLASSES = 4


@dataclass(frozen=True)
class SyntheticShardFactory:
    """Picklable ``client_fn`` for virtual populations.

    Each client's tiny synthetic shard and model replica are derived
    from literal seeds, so any client can be rebuilt bit-identically at
    any time — the regenerate retention mode's contract.  The factory
    travels inside snapshots (it is the population's ``client_fn``), so
    it must stay a plain picklable value object.
    """

    num_clients: int
    samples_per_client: int = 8
    seed: int = 0
    image_shape: tuple[int, int, int] = _SMOKE_SHAPE
    num_classes: int = _SMOKE_CLASSES
    hidden: tuple[int, ...] = (12,)
    model_seed: int = 99

    def model_fn(self):
        """Deterministic model replica (same weights for every call)."""
        return build_mlp(
            self.image_shape,
            num_classes=self.num_classes,
            hidden=self.hidden,
            seed=self.model_seed,
        )

    def test_set(self, n_test: int = 40):
        """A shared held-out set for server-side evaluation."""
        return make_image_classification(
            n_train=1,
            n_test=n_test,
            num_classes=self.num_classes,
            image_shape=self.image_shape,
            noise_std=0.4,
            seed=self.seed,
        )[1]

    def __call__(self, cid: int) -> Client:
        if not 0 <= cid < self.num_clients:
            raise ValueError(f"client id {cid} out of range")
        shard = make_image_classification(
            n_train=self.samples_per_client,
            n_test=self.num_classes,
            num_classes=self.num_classes,
            image_shape=self.image_shape,
            noise_std=0.4,
            seed=self.seed,  # shared prototypes ...
        )[0]
        # ... but a per-client sample draw: subsetting a per-seed
        # permutation keeps shards distinct without per-client dataset
        # generation cost beyond the tiny shard itself.
        rng = np.random.default_rng(self.seed * 1_000_003 + cid)
        order = rng.permutation(len(shard))
        return Client(
            cid,
            shard.subset(np.sort(order[: max(2, len(shard) // 2)])),
            self.model_fn,
            seed=self.seed + 17 * cid + 1,
        )


def run_population_smoke(
    num_clients: int = 100_000,
    rounds: int = 2,
    cohort: int = 20,
    mode: str = "regenerate",
    spill_dir=None,
    engine: str = "sync",
    seed: int = 0,
    sample_check: int = 8,
) -> dict:
    """One bounded-memory federated run over a virtual population.

    Returns a flat accounting dict (no heavyweight objects) so the CLI
    and the bench section can serialise it directly.  The key claim —
    live heavy state stays O(active cohort), never O(population) — is
    asserted here, not just reported.
    """
    if cohort < 1 or cohort > num_clients:
        raise ValueError("cohort must be in [1, num_clients]")
    if engine not in ("sync", "async"):
        raise ValueError("engine must be 'sync' or 'async'")
    factory = SyntheticShardFactory(num_clients=num_clients, seed=seed)
    policy = RetentionPolicy(
        mode=mode,
        max_live=max(2 * cohort, 2),
        spill_dir=spill_dir,
    )
    population = ClientPopulation(
        num_clients=num_clients, client_fn=factory, policy=policy
    )
    server = Server(factory.model_fn, factory.test_set())
    local = LocalTrainingConfig(local_epochs=1, batch_size=8, lr=0.1)
    if engine == "sync":
        config = FederationConfig(
            num_rounds=rounds,
            participation_rate=cohort / num_clients,
            eval_every=rounds,
            seed=seed,
            local=local,
        )
        result = SyncEngine(
            server, population, FedAvg(participation_rate=cohort / num_clients),
            config,
        ).run()
    else:
        config = FederationConfig(
            num_rounds=rounds,
            participation_rate=cohort / num_clients,
            eval_every=max(1, rounds * cohort),
            seed=seed,
            local=local,
            max_sim_time_s=1e9,
            max_updates=rounds * cohort,
            async_cohort=cohort,
        )
        result = AsyncEngine(server, population, FedAsync(), config).run()

    stats = population.stats
    if stats.peak_live > policy.max_live + cohort:
        raise AssertionError(
            f"live clients peaked at {stats.peak_live}, above the "
            f"O(active) bound {policy.max_live + cohort}"
        )
    # Spot-check regeneration determinism on a uniform reservoir sample
    # of ids — O(sample) memory, never an O(population) candidate list.
    sampled = reservoir_sample(
        population.ids(), min(sample_check, num_clients),
        np.random.default_rng(seed + 1),
    )
    rebuilds_verified = 0
    for cid in sampled:
        a, b = factory(cid), factory(cid)
        if np.array_equal(
            a._model.get_flat_params(), b._model.get_flat_params()
        ) and np.array_equal(a.dataset.x, b.dataset.x):
            rebuilds_verified += 1
    if rebuilds_verified != len(sampled):
        raise AssertionError("client regeneration is not deterministic")

    return {
        "engine": engine,
        "mode": mode,
        "num_clients": num_clients,
        "rounds": rounds,
        "cohort": cohort,
        "max_live": policy.max_live,
        "total_uploads": int(result.total_uploads),
        "final_accuracy": float(result.final_accuracy),
        "materializations": stats.materializations,
        "restores": stats.restores,
        "evictions": stats.evictions,
        "spills": stats.spills,
        "peak_live": stats.peak_live,
        "peak_live_nbytes": stats.peak_live_nbytes,
        "live_count_end": population.live_count,
        "retained_nbytes": population.retained_nbytes(),
        "descriptor_nbytes": population.descriptor_nbytes(),
        "descriptor_bytes_per_client": (
            population.descriptor_nbytes() / num_clients
        ),
        "sampled_rebuilds_verified": rebuilds_verified,
    }
