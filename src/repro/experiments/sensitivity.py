"""Network-sensitivity sweep (extension experiment).

The paper's motivating claim is that static communication strategies
degrade under real network dynamics while AdaFL adapts.  This sweep
quantifies that: FedAvg and AdaFL run over progressively worse — and
finally *time-varying* — network conditions, recording accuracy, bytes
moved, and wall-clock per condition.

Conditions: uniform ``ethernet`` / ``wifi`` / ``lte`` / ``constrained``
links, a mixed fleet with 20% constrained stragglers, and a ``dynamic``
condition where every link follows a Gauss-Markov fading trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adafl import AdaFLSync
from repro.experiments.comparison import default_adafl_config
from repro.experiments.presets import BENCH, ExperimentScale
from repro.experiments.runner import FederationSpec, run_sync
from repro.fl.baselines import FedAvg
from repro.fl.metrics import RunResult
from repro.network.conditions import ClientNetwork, NetworkConditions
from repro.network.link import link_preset
from repro.network.traces import gauss_markov_trace

__all__ = ["SensitivityPoint", "NETWORK_CONDITIONS", "run_network_sensitivity"]

NETWORK_CONDITIONS = ("ethernet", "wifi", "lte", "constrained", "mixed", "dynamic")


@dataclass(frozen=True)
class SensitivityPoint:
    """Both methods' outcomes under one network condition."""

    condition: str
    adafl_accuracy: float
    fedavg_accuracy: float
    adafl_bytes_up: int
    fedavg_bytes_up: int
    adafl_time_s: float
    fedavg_time_s: float
    adafl_run: RunResult
    fedavg_run: RunResult

    @property
    def byte_saving(self) -> float:
        if self.fedavg_bytes_up == 0:
            return 0.0
        return 1.0 - self.adafl_bytes_up / self.fedavg_bytes_up

    @property
    def speedup(self) -> float:
        """FedAvg wall-clock divided by AdaFL wall-clock (>1 = faster)."""
        if self.adafl_time_s == 0:
            return 1.0
        return self.fedavg_time_s / self.adafl_time_s


def _build_network(condition: str, num_clients: int, seed: int) -> NetworkConditions:
    rng = np.random.default_rng(seed + 41)
    if condition in ("ethernet", "wifi", "lte", "constrained"):
        return NetworkConditions.uniform(num_clients, condition)
    if condition == "mixed":
        return NetworkConditions.with_stragglers(
            num_clients, 0.2, good_preset="wifi", bad_preset="constrained", rng=rng
        )
    if condition == "dynamic":
        base = link_preset("wifi")
        clients = []
        for _ in range(num_clients):
            trace = gauss_markov_trace(base.bandwidth_mbps, rng, volatility=0.5, step_s=5.0)
            clients.append(
                ClientNetwork(
                    uplink=base,
                    downlink=base,
                    uplink_trace=trace,
                    downlink_trace=trace,
                    label="dynamic",
                )
            )
        return NetworkConditions(clients=clients)
    known = ", ".join(NETWORK_CONDITIONS)
    raise ValueError(f"unknown condition {condition!r}; known: {known}")


def run_network_sensitivity(
    conditions: tuple[str, ...] = NETWORK_CONDITIONS,
    scale: ExperimentScale = BENCH,
    seed: int = 0,
    distribution: str = "shard",
) -> list[SensitivityPoint]:
    """Sweep network conditions; compare AdaFL against FedAvg on each."""
    points = []
    for condition in conditions:
        network = _build_network(condition, scale.num_clients, seed)
        spec = FederationSpec(
            dataset="mnist",
            model="mnist_cnn",
            distribution=distribution,
            scale=scale,
            seed=seed,
        )
        adafl = run_sync(spec, AdaFLSync(default_adafl_config(scale)), network=network)
        fedavg = run_sync(spec, FedAvg(participation_rate=0.5), network=network)
        points.append(
            SensitivityPoint(
                condition=condition,
                adafl_accuracy=adafl.final_accuracy,
                fedavg_accuracy=fedavg.final_accuracy,
                adafl_bytes_up=adafl.total_bytes_up,
                fedavg_bytes_up=fedavg.total_bytes_up,
                adafl_time_s=adafl.total_sim_time,
                fedavg_time_s=fedavg.total_sim_time,
                adafl_run=adafl,
                fedavg_run=fedavg,
            )
        )
    return points
