"""Multi-process federated runs: engines over the socket transport.

Mirrors :mod:`repro.experiments.runner`'s ``run_sync``/``run_async``
but with the clients living in real worker processes: the server opens
a :class:`~repro.transport.SocketTransport`, spawns K workers
(``python -m repro.transport.worker``), optionally threads every
connection through a :class:`~repro.transport.ChaosProxy`, and runs
the engine against the remote population.

The headline property — proven by the equivalence tests — is that a
socket run with no chaos produces a :class:`~repro.fl.metrics.RunResult`
*byte-identical* to the in-memory run of the same spec: the workers
build the same federation from the same spec (same shards, same
seeds), the sim clock never observes wall time, and every payload
crosses the wire as the same CRC'd frames the in-memory engines
account for.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.experiments.runner import (
    FederationSpec,
    _federation_config,
    build_federation,
)
from repro.fl.async_engine import AsyncEngine
from repro.fl.metrics import RunResult
from repro.fl.strategy import AsyncStrategy, SyncStrategy
from repro.fl.sync_engine import SyncEngine
from repro.sim import EventTrace
from repro.transport import (
    ChaosConfig,
    ChaosProxy,
    SocketTransport,
    TransportConfig,
    WorkerSetup,
    spawn_worker,
    terminate_workers,
)

__all__ = [
    "SocketSession",
    "socket_session",
    "run_sync_sockets",
    "run_async_sockets",
]


@dataclass
class SocketSession:
    """A live multi-process federation: engine, transport, workers.

    Exposed (rather than hidden inside a run function) so chaos tests
    can reach in — kill a worker process mid-round, read proxy fault
    counters — while the run is in flight.
    """

    engine: SyncEngine | AsyncEngine
    transport: SocketTransport
    procs: list
    proxy: ChaosProxy | None

    def run(self) -> RunResult:
        """Drive the engine to completion (workers stay up throughout)."""
        return self.engine.run()

    def close(self) -> None:
        """Tear down transport, proxy, and worker processes."""
        self.transport.close()
        if self.proxy is not None:
            self.proxy.close()
        terminate_workers(self.procs)


@contextmanager
def socket_session(
    spec: FederationSpec,
    strategy: SyncStrategy | AsyncStrategy,
    mode: str = "sync",
    num_workers: int = 4,
    chaos: ChaosConfig | None = None,
    transport_config: TransportConfig | None = None,
    quorum_frac: float | None = None,
    validation=None,
    max_updates: int | None = None,
    trace: EventTrace | None = None,
    address: str = "127.0.0.1:0",
    ready_timeout_s: float = 60.0,
) -> Iterator[SocketSession]:
    """Open a multi-process federation and yield the live session.

    The server process builds its own replica of the federation (for
    the server model and test set); each spawned worker builds the
    same one from the pickled spec and serves its share of the
    clients.  With ``chaos`` set, workers dial through a
    :class:`~repro.transport.ChaosProxy` that injects the configured
    faults into the real byte stream.
    """
    if mode not in ("sync", "async"):
        raise ValueError(f"mode must be 'sync' or 'async', not {mode!r}")
    config = _federation_config(spec, max_updates=max_updates, validation=validation)
    if quorum_frac is not None:
        config = dataclasses.replace(config, quorum_frac=quorum_frac)
    setup = WorkerSetup(
        builder=build_federation,
        builder_arg=spec,
        strategy=strategy,
        config=config,
    )
    transport = SocketTransport(
        address,
        num_workers=num_workers,
        num_clients=spec.scale.num_clients,
        setup=setup,
        config=transport_config,
    )
    proxy = None
    procs: list = []
    try:
        worker_target = transport.address
        if chaos is not None and chaos.active:
            proxy = ChaosProxy(transport.address, chaos)
            worker_target = proxy.address
        procs = [spawn_worker(worker_target, i) for i in range(num_workers)]
        transport.wait_ready(ready_timeout_s)
        fed = build_federation(spec)
        if mode == "sync":
            engine = SyncEngine(
                fed.server, None, strategy, config, trace=trace, transport=transport
            )
        else:
            engine = AsyncEngine(
                fed.server, None, strategy, config, trace=trace, transport=transport
            )
        yield SocketSession(
            engine=engine, transport=transport, procs=procs, proxy=proxy
        )
    finally:
        transport.close()
        if proxy is not None:
            proxy.close()
        terminate_workers(procs)


def run_sync_sockets(
    spec: FederationSpec, strategy: SyncStrategy, **kwargs
) -> RunResult:
    """Run one synchronous federation over real sockets, start to finish."""
    with socket_session(spec, strategy, mode="sync", **kwargs) as session:
        return session.run()


def run_async_sockets(
    spec: FederationSpec, strategy: AsyncStrategy, **kwargs
) -> RunResult:
    """Run one asynchronous federation over real sockets, start to finish."""
    with socket_session(spec, strategy, mode="async", **kwargs) as session:
        return session.run()
