"""Statistical analysis over federated runs.

The paper repeats every measurement ten times "to reduce randomness";
this module provides the aggregation machinery: multi-seed run
bundles, mean/std accuracy curves on a common grid, time-to-accuracy
tables, and normalised area-under-curve summaries for convergence-rate
comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.metrics import RunResult

__all__ = [
    "curve_auc",
    "interpolate_curve",
    "AggregateCurve",
    "aggregate_accuracy_curves",
    "time_to_accuracy_table",
]


def interpolate_curve(
    x: np.ndarray, y: np.ndarray, grid: np.ndarray
) -> np.ndarray:
    """Piecewise-linear resample of a curve onto ``grid``.

    Values before the first point clamp to the first value; values
    after the last clamp to the last (training curves are step-like at
    the edges).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0 or x.shape != y.shape:
        raise ValueError("x and y must be equal-length and non-empty")
    return np.interp(grid, x, y)


def curve_auc(result: RunResult, by_time: bool = False) -> float:
    """Normalised area under the accuracy curve, in [0, 1].

    A convergence-rate summary: a method that reaches high accuracy
    early scores close to its final accuracy; a slow starter scores
    lower even with the same endpoint.
    """
    x, y = result.time_accuracy_curve() if by_time else result.accuracy_curve()
    if x.size == 0:
        return float("nan")
    if x.size == 1:
        return float(y[0])
    span = x[-1] - x[0]
    if span <= 0:
        return float(y[-1])
    return float(np.trapezoid(y, x) / span)


@dataclass(frozen=True)
class AggregateCurve:
    """Mean and standard deviation of several runs' accuracy curves."""

    grid: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    num_runs: int

    def final_mean(self) -> float:
        return float(self.mean[-1]) if self.mean.size else float("nan")

    def final_std(self) -> float:
        return float(self.std[-1]) if self.std.size else float("nan")


def aggregate_accuracy_curves(
    results: list[RunResult],
    num_points: int = 20,
    by_time: bool = False,
) -> AggregateCurve:
    """Resample each run's curve onto a common grid and average.

    The grid spans the *intersection* of the runs' x-ranges so every
    run contributes real (not extrapolated) data at every grid point.
    """
    if not results:
        raise ValueError("need at least one run")
    curves = []
    for result in results:
        x, y = result.time_accuracy_curve() if by_time else result.accuracy_curve()
        if x.size == 0:
            raise ValueError(f"run {result.method!r} has no evaluated points")
        curves.append((x, y))
    lo = max(float(x[0]) for x, _ in curves)
    hi = min(float(x[-1]) for x, _ in curves)
    if hi < lo:
        raise ValueError("runs have disjoint x-ranges; cannot aggregate")
    grid = np.linspace(lo, hi, num_points)
    stacked = np.stack([interpolate_curve(x, y, grid) for x, y in curves])
    return AggregateCurve(
        grid=grid,
        mean=stacked.mean(axis=0),
        std=stacked.std(axis=0),
        num_runs=len(results),
    )


def time_to_accuracy_table(
    results_by_method: dict[str, RunResult],
    targets: tuple[float, ...] = (0.5, 0.7, 0.9),
    by_time: bool = True,
) -> list[list[str]]:
    """Rows of [method, t@target1, t@target2, ...] for reporting.

    Unreached targets render as ``"-"``.  ``by_time=False`` reports
    rounds instead of simulated seconds.
    """
    rows = []
    for method, result in results_by_method.items():
        row = [method]
        for target in targets:
            if by_time:
                value = result.time_to_accuracy(target)
                row.append("-" if value is None else f"{value:.1f}s")
            else:
                value = result.rounds_to_accuracy(target)
                row.append("-" if value is None else str(value))
        rows.append(row)
    return rows
