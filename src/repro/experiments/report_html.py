"""Static HTML report generation.

Turns archived :class:`~repro.fl.metrics.RunResult` objects and the
text artifacts under ``benchmarks/results/`` into a single
self-contained HTML page: accuracy curves as inline SVG, the
communication summary as a table, and the raw artifacts in
collapsible sections.  No external assets, no JavaScript — the file
opens anywhere, which is what you want when the "testbed" is a
headless Raspberry Pi.
"""

from __future__ import annotations

import html
from pathlib import Path

import numpy as np

from repro.fl.metrics import RunResult

__all__ = ["svg_curve", "runs_to_html", "write_report"]

_SVG_W, _SVG_H = 360, 180
_MARGIN = 30
_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def svg_curve(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    title: str = "",
    x_label: str = "round",
) -> str:
    """Render labelled (x, y) accuracy curves as an inline SVG string."""
    drawable = {k: (np.asarray(x, float), np.asarray(y, float))
                for k, (x, y) in series.items() if np.asarray(x).size > 0}
    if not drawable:
        return "<svg/>"
    x_max = max(float(x[-1]) for x, _ in drawable.values())
    x_min = min(float(x[0]) for x, _ in drawable.values())
    span = (x_max - x_min) or 1.0

    def sx(v: float) -> float:
        return _MARGIN + (v - x_min) / span * (_SVG_W - 2 * _MARGIN)

    def sy(v: float) -> float:
        return _SVG_H - _MARGIN - v * (_SVG_H - 2 * _MARGIN)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_SVG_W}" height="{_SVG_H}" '
        f'viewBox="0 0 {_SVG_W} {_SVG_H}" role="img">',
        f'<text x="{_SVG_W / 2}" y="14" text-anchor="middle" font-size="11">'
        f"{html.escape(title)}</text>",
        # Axes.
        f'<line x1="{_MARGIN}" y1="{sy(0)}" x2="{_SVG_W - _MARGIN}" y2="{sy(0)}" '
        'stroke="#999"/>',
        f'<line x1="{_MARGIN}" y1="{sy(0)}" x2="{_MARGIN}" y2="{sy(1)}" stroke="#999"/>',
        f'<text x="{_MARGIN - 4}" y="{sy(1) + 4}" text-anchor="end" font-size="9">1.0</text>',
        f'<text x="{_MARGIN - 4}" y="{sy(0) + 4}" text-anchor="end" font-size="9">0.0</text>',
        f'<text x="{_SVG_W / 2}" y="{_SVG_H - 6}" text-anchor="middle" font-size="9">'
        f"{html.escape(x_label)}</text>",
    ]
    for i, (label, (x, y)) in enumerate(drawable.items()):
        color = _COLORS[i % len(_COLORS)]
        points = " ".join(f"{sx(float(a)):.1f},{sy(float(b)):.1f}" for a, b in zip(x, y))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="1.5"/>'
        )
        parts.append(
            f'<text x="{_SVG_W - _MARGIN + 2}" y="{20 + 12 * i}" font-size="9" '
            f'fill="{color}">{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def runs_to_html(
    runs: dict[str, RunResult],
    title: str = "Federated run report",
    artifacts_dir: str | Path | None = None,
) -> str:
    """Build the full report page for a set of labelled runs."""
    if not runs:
        raise ValueError("need at least one run")
    series = {label: run.accuracy_curve() for label, run in runs.items()}
    rows = "".join(
        "<tr>"
        f"<td>{html.escape(label)}</td>"
        f"<td>{run.final_accuracy:.3f}</td>"
        f"<td>{run.total_uploads}</td>"
        f"<td>{run.total_bytes_up:,}</td>"
        f"<td>{run.total_bytes_down:,}</td>"
        f"<td>{run.total_sim_time:.2f}</td>"
        "</tr>"
        for label, run in runs.items()
    )
    artifact_sections = []
    if artifacts_dir is not None:
        for path in sorted(Path(artifacts_dir).glob("*.txt")):
            artifact_sections.append(
                f"<details><summary>{html.escape(path.stem)}</summary>"
                f"<pre>{html.escape(path.read_text())}</pre></details>"
            )
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{html.escape(title)}</title>
<style>
body {{ font-family: system-ui, sans-serif; max-width: 60rem; margin: 2rem auto; }}
table {{ border-collapse: collapse; }}
td, th {{ border: 1px solid #ccc; padding: 0.3rem 0.6rem; font-size: 0.85rem; }}
pre {{ background: #f6f6f6; padding: 0.6rem; overflow-x: auto; font-size: 0.75rem; }}
</style></head><body>
<h1>{html.escape(title)}</h1>
{svg_curve(series, title="accuracy vs round")}
<h2>Communication summary</h2>
<table><tr><th>method</th><th>final acc</th><th>updates</th>
<th>bytes up</th><th>bytes down</th><th>sim time (s)</th></tr>{rows}</table>
<h2>Measured artifacts</h2>
{"".join(artifact_sections) or "<p>(none)</p>"}
</body></html>
"""


def write_report(
    runs: dict[str, RunResult],
    path: str | Path,
    title: str = "Federated run report",
    artifacts_dir: str | Path | None = None,
) -> Path:
    """Write the report page to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(runs_to_html(runs, title=title, artifacts_dir=artifacts_dir))
    return path
