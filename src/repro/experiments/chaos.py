"""Chaos study: a fault-matrix sweep with a resilience report.

Runs the same federation through a matrix of failure scenarios —
client crashes, payload corruption (with and without server-side
validation), stale/duplicate uploads, server outages — and reports per
scenario how much work was lost (drops by reason), how much the server
refused (rejected uploads), how quickly dropped clients recovered, and
where the model landed.  The corruption pair is the paper-style
punchline: an unguarded server is NaN-poisoned by a single corrupt
upload and never recovers, while validation + trimmed-mean keeps the
run within a few points of fault-free.

Fault timescales are calibrated from a fault-free probe of the same
spec (mean time between failures of roughly a third of the run, outage
windows around a sixth), so the scenarios bite at any experiment
scale rather than only at one hand-tuned clock rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.experiments.presets import FAST, ExperimentScale
from repro.experiments.runner import FederationSpec, run_async, run_sync
from repro.fl.baselines import FedAsync, FedAvg
from repro.fl.validation import ValidationConfig
from repro.network.conditions import ClientNetwork, NetworkConditions
from repro.network.link import LinkModel
from repro.sim import (
    AGGREGATED,
    COUNTED_DROP_REASONS,
    DROPPED,
    ClientCrashModel,
    EventTrace,
    FaultPlan,
    PayloadCorruptionModel,
    REJECTED_DROP_REASONS,
    RingBufferSink,
    ServerOutageModel,
    StaleUploadModel,
)

__all__ = [
    "ChaosScenario",
    "ChaosOutcome",
    "default_scenarios",
    "run_chaos_study",
    "format_chaos_report",
]


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the fault matrix.

    ``chaos_fn`` builds a *fresh* :class:`FaultPlan` from the probe
    run's total simulated time (fault models carry bound RNG state, so
    plans are never shared between runs).
    """

    name: str
    chaos_fn: Callable[[float], FaultPlan | None]
    validation: ValidationConfig | None = None


@dataclass
class ChaosOutcome:
    """What one scenario did to the run."""

    scenario: str
    final_accuracy: float
    total_uploads: int
    rejected_uploads: int
    drops_by_reason: dict[str, int] = field(default_factory=dict)
    recovery_latency_s: float | None = None
    model_finite: bool = True


def default_scenarios() -> list[ChaosScenario]:
    """The standard fault matrix (baseline + five failure modes)."""
    guard = ValidationConfig(trimmed_mean_fallback=True)
    return [
        ChaosScenario("baseline", lambda t: None),
        ChaosScenario(
            "crash",
            lambda t: FaultPlan(
                ClientCrashModel(mtbf_s=t / 3.0, mean_downtime_s=t / 10.0)
            ),
        ),
        ChaosScenario(
            "corrupt-unguarded",
            lambda t: FaultPlan(PayloadCorruptionModel(prob=0.2, kind="nan")),
        ),
        ChaosScenario(
            "corrupt-guarded",
            lambda t: FaultPlan(PayloadCorruptionModel(prob=0.2, kind="nan")),
            validation=guard,
        ),
        ChaosScenario(
            "stale-dup",
            lambda t: FaultPlan(
                StaleUploadModel(
                    delay_prob=0.3, mean_delay_s=t / 20.0, duplicate_prob=0.3
                )
            ),
            validation=ValidationConfig(),
        ),
        ChaosScenario(
            "outage",
            lambda t: FaultPlan(
                ServerOutageModel(windows=[(0.30 * t, 0.45 * t), (0.7 * t, 0.8 * t)])
            ),
        ),
    ]


def _recovery_latency(events) -> float | None:
    """Mean seconds from a drop to that client's next accepted upload."""
    interesting = COUNTED_DROP_REASONS | REJECTED_DROP_REASONS
    drops = [
        (e.t, e.client)
        for e in events
        if e.type == DROPPED
        and e.client is not None
        and e.data.get("reason") in interesting
    ]
    participations: list[tuple[float, set[int]]] = []
    for e in events:
        if e.type != AGGREGATED:
            continue
        if "participants" in e.data:
            participations.append((e.t, {int(c) for c in e.data["participants"]}))
        elif e.client is not None:
            participations.append((e.t, {int(e.client)}))
    latencies = []
    for t, cid in drops:
        for t2, members in participations:
            if t2 > t and cid in members:
                latencies.append(t2 - t)
                break
    return float(np.mean(latencies)) if latencies else None


def _lossy_network(num_clients: int) -> NetworkConditions:
    """A mildly lossy fleet network so transport drops appear too."""
    link = LinkModel(bandwidth_mbps=8.0, latency_ms=20.0, loss_rate=0.05)
    return NetworkConditions(
        clients=[ClientNetwork(uplink=link, downlink=link) for _ in range(num_clients)]
    )


def run_chaos_study(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    engine: str = "sync",
    scenarios: list[ChaosScenario] | None = None,
    dataset: str = "mnist",
) -> list[ChaosOutcome]:
    """Run the fault matrix and collect one outcome per scenario."""
    if engine not in ("sync", "async"):
        raise ValueError("engine must be 'sync' or 'async'")
    scale = scale if scale is not None else FAST
    scenarios = scenarios if scenarios is not None else default_scenarios()
    spec = FederationSpec(
        dataset=dataset, model="mlp", scale=scale, seed=seed, participation_rate=1.0
    )
    network = _lossy_network(scale.num_clients)

    def _run(chaos, validation, trace):
        if engine == "sync":
            return run_sync(
                spec,
                FedAvg(participation_rate=1.0),
                network=network,
                chaos=chaos,
                validation=validation,
                trace=trace,
            )
        return run_async(
            spec,
            FedAsync(),
            network=network,
            max_updates=scale.num_rounds * scale.num_clients,
            chaos=chaos,
            validation=validation,
            trace=trace,
        )

    # Fault-free probe fixes the study's timescale.
    probe = _run(None, None, None)
    probe_time = max(probe.total_sim_time, 1e-9)

    outcomes: list[ChaosOutcome] = []
    for scenario in scenarios:
        sink = RingBufferSink()
        result = _run(
            scenario.chaos_fn(probe_time),
            scenario.validation,
            EventTrace([sink]),
        )
        events = sink.events()
        drops: dict[str, int] = {}
        for e in events:
            if e.type == DROPPED:
                reason = e.data.get("reason", "?")
                drops[reason] = drops.get(reason, 0) + 1
        # final_accuracy is NaN-safe only for display; keep the raw value.
        outcomes.append(
            ChaosOutcome(
                scenario=scenario.name,
                final_accuracy=result.final_accuracy,
                total_uploads=result.total_uploads,
                rejected_uploads=result.total_rejected,
                drops_by_reason=dict(sorted(drops.items())),
                recovery_latency_s=_recovery_latency(events),
                model_finite=bool(np.isfinite(result.final_accuracy)),
            )
        )
    return outcomes


def format_chaos_report(outcomes: list[ChaosOutcome]) -> str:
    """Human-readable resilience report for a chaos study."""
    lines = ["chaos resilience report", "=" * 60]
    baseline = next((o for o in outcomes if o.scenario == "baseline"), None)
    for o in outcomes:
        acc = f"{o.final_accuracy:.3f}" if np.isfinite(o.final_accuracy) else "diverged"
        lines.append(f"{o.scenario}")
        lines.append(f"  final accuracy   : {acc}")
        if baseline is not None and o is not baseline and np.isfinite(
            o.final_accuracy
        ) and np.isfinite(baseline.final_accuracy):
            delta = o.final_accuracy - baseline.final_accuracy
            lines.append(f"  vs baseline      : {delta:+.3f}")
        lines.append(f"  accepted uploads : {o.total_uploads}")
        lines.append(f"  rejected uploads : {o.rejected_uploads}")
        drops = (
            ", ".join(f"{k}={v}" for k, v in o.drops_by_reason.items())
            if o.drops_by_reason
            else "none"
        )
        lines.append(f"  drops by reason  : {drops}")
        if o.recovery_latency_s is not None:
            lines.append(f"  mean recovery    : {o.recovery_latency_s:.3f}s")
        lines.append("")
    return "\n".join(lines).rstrip()
