"""Experiment harness: one runner per paper table/figure plus ablations."""

from repro.experiments.ablation import AblationPoint, ablation_variants, run_ablation
from repro.experiments.analysis import (
    AggregateCurve,
    aggregate_accuracy_curves,
    curve_auc,
    interpolate_curve,
    time_to_accuracy_table,
)
from repro.experiments.comparison import (
    default_adafl_config,
    run_fig3,
    run_fig3_async_panel,
    run_fig3_sync_panel,
)
from repro.experiments.energy_study import EnergyStudyResult, run_energy_study
from repro.experiments.empirical import (
    STRAGGLER_FRACTIONS,
    PanelResult,
    run_fig1,
    run_fig1_async_panel,
    run_fig1_sync_panel,
)
from repro.experiments.overhead import OverheadResult, run_overhead_study
from repro.experiments.presets import BENCH, FAST, FULL, SCALES, ExperimentScale, get_scale
from repro.experiments.reporting import format_bytes, format_pct, format_series, format_table
from repro.experiments.report_html import runs_to_html, svg_curve, write_report
from repro.experiments.runner import (
    DATASET_PROFILES,
    DatasetProfile,
    Federation,
    FederationSpec,
    build_federation,
    run_async,
    run_sync,
)
from repro.experiments.scalability import DEFAULT_CLIENT_COUNTS, ScalePoint, run_scalability
from repro.experiments.sensitivity import (
    NETWORK_CONDITIONS,
    SensitivityPoint,
    run_network_sensitivity,
)
from repro.experiments.sweep import (
    FAULT_PLANS,
    NETWORK_PROFILES,
    STRATEGY_FACTORIES,
    SweepConfig,
    SweepResult,
    SweepRow,
    render_sweep,
    run_sweep,
)
from repro.experiments.tables import TableRow, render_table, run_table1, run_table2

__all__ = [
    "ExperimentScale",
    "FAST",
    "BENCH",
    "FULL",
    "SCALES",
    "get_scale",
    "FederationSpec",
    "Federation",
    "DatasetProfile",
    "DATASET_PROFILES",
    "build_federation",
    "run_sync",
    "run_async",
    "PanelResult",
    "STRAGGLER_FRACTIONS",
    "run_fig1",
    "run_fig1_sync_panel",
    "run_fig1_async_panel",
    "default_adafl_config",
    "run_fig3",
    "run_fig3_sync_panel",
    "run_fig3_async_panel",
    "TableRow",
    "run_table1",
    "run_table2",
    "render_table",
    "OverheadResult",
    "EnergyStudyResult",
    "run_energy_study",
    "run_overhead_study",
    "ScalePoint",
    "DEFAULT_CLIENT_COUNTS",
    "run_scalability",
    "AblationPoint",
    "AggregateCurve",
    "aggregate_accuracy_curves",
    "curve_auc",
    "interpolate_curve",
    "time_to_accuracy_table",
    "SensitivityPoint",
    "NETWORK_CONDITIONS",
    "run_network_sensitivity",
    "ablation_variants",
    "run_ablation",
    "SweepConfig",
    "SweepRow",
    "SweepResult",
    "STRATEGY_FACTORIES",
    "NETWORK_PROFILES",
    "FAULT_PLANS",
    "run_sweep",
    "render_sweep",
    "format_table",
    "format_series",
    "format_bytes",
    "format_pct",
    "svg_curve",
    "runs_to_html",
    "write_report",
]
