#!/usr/bin/env python
"""AdaFL under dynamic network conditions.

The paper's core critique of prior work is that static compression /
selection policies cannot follow real network dynamics.  This example
attaches time-varying bandwidth traces (Gauss-Markov fading, Markov
on/off congestion, diurnal load) to the clients and shows AdaFL's
utility scores, selections, and per-client compression ratios changing
round by round as links degrade and recover.

Run:  python examples/dynamic_network.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaFLConfig, AdaFLSync, AdaptiveCompressionPolicy
from repro.experiments import FAST, FederationSpec, build_federation
from repro.fl import FederationConfig, LocalTrainingConfig, SyncEngine
from repro.network import (
    ClientNetwork,
    NetworkConditions,
    diurnal_trace,
    gauss_markov_trace,
    link_preset,
    markov_onoff_trace,
)

NUM_CLIENTS = FAST.num_clients
NUM_ROUNDS = 12


def build_dynamic_network(rng: np.random.Generator) -> NetworkConditions:
    """A third each of fading, congested, and diurnal clients."""
    base = link_preset("wifi")
    clients = []
    for i in range(NUM_CLIENTS):
        kind = i % 3
        if kind == 0:
            trace = gauss_markov_trace(base.bandwidth_mbps, rng, step_s=5.0, volatility=0.4)
            label = "fading"
        elif kind == 1:
            trace = markov_onoff_trace(base.bandwidth_mbps, 0.5, rng, step_s=5.0)
            label = "congested"
        else:
            trace = diurnal_trace(base.bandwidth_mbps, 1.0, period_s=120.0)
            label = "diurnal"
        clients.append(
            ClientNetwork(
                uplink=base,
                downlink=base,
                uplink_trace=trace,
                downlink_trace=trace,
                label=label,
            )
        )
    return NetworkConditions(clients=clients)


def main() -> None:
    rng = np.random.default_rng(11)
    network = build_dynamic_network(rng)
    spec = FederationSpec(
        dataset="mnist", model="mnist_cnn", distribution="iid", scale=FAST, seed=2, lr=0.05
    )
    fed = build_federation(spec)

    strategy = AdaFLSync(
        AdaFLConfig(
            k_max=4,
            tau=0.6,  # relative: filter the lowest 60% of scores
            tau_mode="relative",
            score_smoothing=0.5,
            rotation_bonus=0.15,
            policy=AdaptiveCompressionPolicy(
                min_ratio=4.0, max_ratio=210.0, warmup_rounds=2, warmup_ratio=4.0
            ),
        )
    )
    config = FederationConfig(
        num_rounds=NUM_ROUNDS,
        participation_rate=1.0,
        eval_every=1,
        seed=3,
        local=LocalTrainingConfig(local_epochs=1, batch_size=20, lr=0.05),
    )
    engine = SyncEngine(fed.server, fed.clients, strategy, config, network=network)

    print(f"client link types: {[c.label for c in network.clients]}")
    print(f"{'round':>5} {'time':>8} {'acc':>6} {'selected':<18} {'mean-S':>7} {'bytes':>9}")
    # Drive the engine round by round to observe the adaptation.
    result = engine.new_result()
    for record in engine.iter_rounds():
        result.records.append(record)
        scores = strategy.last_scores
        mean_score = np.mean(list(scores.values())) if scores else float("nan")
        acc = record.accuracy if record.accuracy is not None else float("nan")
        print(
            f"{record.round_index:>5} {record.sim_time_s:>7.1f}s {acc:>6.2f} "
            f"{str(record.participants):<18} {mean_score:>7.3f} "
            f"{record.bytes_up:>8}B"
        )

    rmax, rmin = result.compression_ratio_range()
    print(f"\nachieved wire compression ratios: {rmin:.1f}x .. {rmax:.1f}x")
    print(f"total uplink: {result.total_bytes_up / 1024:.0f}KB over {result.total_uploads} updates")


if __name__ == "__main__":
    main()
