#!/usr/bin/env python
"""Trace-driven federation: ns-3-style bandwidth traces from disk.

The paper's emulation consumes ns-3 network data (ns3-fl); this
example shows the equivalent workflow here: generate per-client
bandwidth traces (stand-ins for ns-3 exports), write them to CSV, load
them back, attach them to the federation's links, and train AdaFL on
the resulting time-varying network.  Point ``TRACE_DIR`` at real ns-3
exports (rows of ``time_s,bandwidth_mbps``) to drive the simulation
with external data.

Run:  python examples/trace_driven.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from dataclasses import replace

from repro.core import AdaFLConfig, AdaFLSync, AdaptiveCompressionPolicy
from repro.experiments import FAST, FederationSpec, build_federation, format_bytes
from repro.fl import FederationConfig, LocalTrainingConfig, SyncEngine
from repro.network import (
    ClientNetwork,
    NetworkConditions,
    gauss_markov_trace,
    link_preset,
    load_trace_dir,
    markov_onoff_trace,
    save_trace_csv,
)

SCALE = replace(FAST, num_rounds=16, train_samples=700, image_size=12, cnn_hidden=48)
NUM_CLIENTS = SCALE.num_clients
TRACE_DIR = Path(tempfile.gettempdir()) / "adafl_traces"


def export_traces(directory: Path, rng: np.random.Generator) -> None:
    """Stand-in for an ns-3 run: one bandwidth CSV per client."""
    directory.mkdir(parents=True, exist_ok=True)
    for old in directory.glob("*.csv"):
        old.unlink()
    for cid in range(NUM_CLIENTS):
        if cid % 2 == 0:
            trace = gauss_markov_trace(20.0, rng, volatility=0.3, step_s=5.0)
        else:
            trace = markov_onoff_trace(20.0, 1.0, rng, step_s=5.0)
        save_trace_csv(trace, directory / f"client_{cid:02d}.csv")


def main() -> None:
    rng = np.random.default_rng(21)
    export_traces(TRACE_DIR, rng)
    print(f"wrote {NUM_CLIENTS} trace CSVs to {TRACE_DIR}")

    traces = load_trace_dir(TRACE_DIR)
    base = link_preset("wifi")
    network = NetworkConditions(
        clients=[
            ClientNetwork(
                uplink=base,
                downlink=base,
                uplink_trace=trace,
                downlink_trace=trace,
                label=f"trace{i}",
            )
            for i, trace in enumerate(traces)
        ]
    )
    print(
        "loaded traces; mean bandwidths: "
        + ", ".join(f"{t.mean_bandwidth():.1f}" for t in traces)
        + " Mbps"
    )

    spec = FederationSpec(
        dataset="mnist", model="mnist_cnn", distribution="iid", scale=SCALE, seed=4
    )
    fed = build_federation(spec)
    strategy = AdaFLSync(
        AdaFLConfig(
            k_max=4,
            tau=0.6,
            tau_mode="relative",
            score_smoothing=0.5,
            rotation_bonus=0.15,
            policy=AdaptiveCompressionPolicy(warmup_rounds=2, warmup_ratio=4.0),
        )
    )
    config = FederationConfig(
        num_rounds=SCALE.num_rounds,
        participation_rate=1.0,
        eval_every=2,
        seed=5,
        local=LocalTrainingConfig(local_epochs=1, batch_size=20, lr=0.05),
    )
    result = SyncEngine(fed.server, fed.clients, strategy, config, network=network).run()

    rounds, accs = result.accuracy_curve()
    print("accuracy:", ", ".join(f"r{r}:{a:.2f}" for r, a in zip(rounds, accs)))
    print(
        f"uplink {format_bytes(result.total_bytes_up)} across "
        f"{result.total_uploads} updates over {result.total_sim_time:.1f}s simulated"
    )


if __name__ == "__main__":
    main()
