#!/usr/bin/env python
"""Non-IID federated learning across simulated hospitals.

The paper motivates FL with privacy-sensitive domains such as
healthcare, where each site's data distribution is skewed (a cancer
centre sees different cases than a pediatric clinic).  This example
builds a Dirichlet-skewed federation ("hospitals"), shows how skewed
each site is, and compares every synchronous method — including the
strongest non-IID baseline, SCAFFOLD — against AdaFL.

Run:  python examples/noniid_hospitals.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaFLConfig, AdaFLSync, AdaptiveCompressionPolicy
from repro.data import partition_dataset, partition_stats
from repro.data.synthetic import make_image_classification
from repro.experiments import format_bytes
from repro.fl import (
    Client,
    FederationConfig,
    FedAdam,
    FedAvg,
    FedProx,
    LocalTrainingConfig,
    Scaffold,
    Server,
    SyncEngine,
)
from repro.network import NetworkConditions
from repro.nn import build_mnist_cnn

NUM_HOSPITALS = 8
NUM_ROUNDS = 15
NUM_CONDITIONS = 6  # diagnostic classes


def main() -> None:
    train, test = make_image_classification(
        n_train=720,
        n_test=240,
        num_classes=NUM_CONDITIONS,
        image_shape=(1, 12, 12),
        noise_std=1.0,
        seed=5,
        name="scans",
    )
    rng = np.random.default_rng(5)
    shards = partition_dataset(train, NUM_HOSPITALS, "dirichlet", rng, alpha=0.3)

    stats = partition_stats(shards)
    print("hospital data skew (rows = hospitals, cols = conditions):")
    for i, row in enumerate(stats.class_counts):
        print(f"  hospital {i}: {row.tolist()}  ({stats.sizes[i]} scans)")
    print(f"mean label entropy: {stats.mean_entropy:.2f} nats "
          f"(uniform would be {np.log(NUM_CONDITIONS):.2f})\n")

    def model_fn():
        return build_mnist_cnn((1, 12, 12), NUM_CONDITIONS, channels=(6, 12), hidden=32, seed=42)

    network = NetworkConditions.with_stragglers(
        NUM_HOSPITALS, 0.25, good_preset="ethernet", bad_preset="lte",
        rng=np.random.default_rng(6),
    )
    config = FederationConfig(
        num_rounds=NUM_ROUNDS,
        participation_rate=0.5,
        eval_every=3,
        seed=9,
        local=LocalTrainingConfig(local_epochs=1, batch_size=16, lr=0.02),
    )

    strategies = [
        FedAvg(participation_rate=0.5),
        FedProx(participation_rate=0.5, mu=0.01),
        FedAdam(participation_rate=0.5),
        Scaffold(participation_rate=0.5),
        AdaFLSync(
            AdaFLConfig(
                k_max=4,
                tau=0.6,  # relative: filter the lowest 60% of scores
                tau_mode="relative",
                score_smoothing=0.5,
                rotation_bonus=0.15,
                policy=AdaptiveCompressionPolicy(
                    min_ratio=4.0, max_ratio=210.0, warmup_rounds=3, warmup_ratio=4.0
                ),
            )
        ),
    ]

    print(f"{'method':<10} {'final acc':>9} {'updates':>8} {'uplink':>10}")
    for strategy in strategies:
        clients = [
            Client(i, shards[i], model_fn, seed=100 + i) for i in range(NUM_HOSPITALS)
        ]
        server = Server(model_fn, test)
        result = SyncEngine(server, clients, strategy, config, network=network).run()
        print(
            f"{strategy.name:<10} {result.final_accuracy:>9.3f} "
            f"{result.total_uploads:>8} {format_bytes(result.total_bytes_up):>10}"
        )


if __name__ == "__main__":
    main()
