#!/usr/bin/env python
"""Asynchronous FL on a heterogeneous embedded cluster.

Reproduces the paper's embedded-device scenario: a mixed fleet of
Raspberry-Pi-class devices (some 3x slower, producing stale updates)
training asynchronously over cellular-grade links.  Compares FedAsync,
FedBuff, and AdaFL-async, and prints a perf-style CPU-cycle accounting
of AdaFL's on-device overhead (the paper's Q3).

Run:  python examples/embedded_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaFLAsync, AdaFLConfig, AdaptiveCompressionPolicy
from repro.embedded import (
    CycleCounter,
    compute_rates,
    device_preset,
    dgc_compress_flops,
    make_heterogeneous_cluster,
    training_flops,
    utility_score_flops,
)
from repro.experiments import FAST, FederationSpec, build_federation, run_async
from repro.fl import FedAsync, FedBuff
from repro.network import NetworkConditions

NUM_CLIENTS = FAST.num_clients
MAX_UPDATES = 80


def main() -> None:
    spec = FederationSpec(
        dataset="mnist",
        model="mnist_cnn",
        distribution="shard",
        scale=FAST,
        seed=1,
        lr=0.05,
    )
    # Mixed Pi 4 / Pi 3 fleet; 20% of devices run 3x slower.
    cluster = make_heterogeneous_cluster(
        NUM_CLIENTS,
        presets=["pi4", "pi3"],
        rng=np.random.default_rng(3),
        slow_fraction=0.2,
        slow_factor=3.0,
    )
    rates = compute_rates(cluster)
    network = NetworkConditions.heterogeneous(NUM_CLIENTS, ["lte", "wifi"])

    print(f"cluster: {[d.name for d in cluster]}")

    strategies = [
        ("fedasync", FedAsync()),
        ("fedbuff", FedBuff(buffer_size=3)),
        (
            "adafl-async",
            AdaFLAsync(
                AdaFLConfig(
                    k_max=5,
                    tau=0.5,
                    policy=AdaptiveCompressionPolicy(
                        min_ratio=4.0, max_ratio=105.0, warmup_rounds=2, warmup_ratio=4.0
                    ),
                ),
                network=network,
            ),
        ),
    ]
    for name, strategy in strategies:
        result = run_async(
            spec, strategy, network=network, device_flops=rates, max_updates=MAX_UPDATES
        )
        print(
            f"{name:12s} acc={result.final_accuracy:.3f} "
            f"updates={result.total_uploads} "
            f"sim_time={result.total_sim_time:.2f}s "
            f"uplink={result.total_bytes_up / 1024:.0f}KB"
        )

    overhead_accounting(spec)


def overhead_accounting(spec: FederationSpec) -> None:
    """Per-component cycle accounting on one Pi 4 (the paper's Q3)."""
    fed = build_federation(spec)
    model = fed.model_fn()
    dim = model.num_params
    samples = fed.clients[0].num_samples

    counter = CycleCounter(device_preset("pi4"))
    counter.charge_flops("training", training_flops(model, samples))
    counter.charge_flops("utility", utility_score_flops(dim))
    counter.charge_flops("compression", dgc_compress_flops(dim))
    report = counter.report("training")

    print("\nper-round cycle accounting on a Pi 4 (one client):")
    print(f"  training      : {report.baseline_cycles:,.0f} cycles")
    print(
        f"  utility score : {counter.cycles('utility'):,.0f} cycles "
        f"(+{report.overhead_pct('utility'):.3f}%)"
    )
    print(
        f"  compression   : {counter.cycles('compression'):,.0f} cycles "
        f"(+{report.overhead_pct('compression'):.3f}%)"
    )


if __name__ == "__main__":
    main()
